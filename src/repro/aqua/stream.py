"""Progressive streaming answers: online aggregation over chunked scans.

:func:`stream_answers` is the driver behind
:meth:`~repro.aqua.system.AquaSystem.sql_stream`.  It lowers the query
through the same plan IR as the batch paths (so predicate pushdown and
projection pruning apply to streamed scans too), permutes the base
relation once, and folds fixed-size chunks of the permutation through
:func:`~repro.engine.stream.stream_group_partials`, yielding one
:class:`StreamingAnswer` per chunk with per-group estimates and shrinking
confidence-interval half-widths.

The emission contract (see ``docs/STREAMING.md``):

* every intermediate answer has ``provenance="stream"`` and half-widths
  from the system's bound family at its confidence level;
* the terminal answer of a run-to-completion stream is computed through
  the *batch* plan executor over the full relation -- the "exact landing"
  -- so it is bit-identical to :meth:`AquaSystem.exact` (chunk-merged
  float sums differ from whole-table sums in ULPs; re-running the batch
  plan once the prefix is the whole table removes that gap honestly) and
  carries ``provenance="exact"``, ``final=True``, zero half-widths;
* a deadline expiring mid-stream re-emits the last complete answer with
  ``provenance="partial"`` instead of raising mid-merge;
* when ``until_rel_error`` is met the stream stops early with
  ``converged=True``;
* only a run-to-completion final answer is stored in the
  :class:`~repro.aqua.cache.AnswerCache` (early-stopped and interrupted
  streams never pollute it).
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass, field, replace as dataclass_replace
from typing import Dict, Iterator, List, Optional, Tuple, Union

import numpy as np

from ..engine.aggregates import Aggregate, finalize_state, grouped_reduce
from ..engine.expressions import Lit
from ..engine.groupby import GroupByPartial, group_ids_for
from ..engine.query import Query
from ..engine.schema import Column, ColumnType, Schema
from ..engine.sql import parse_query
from ..engine.stream import (
    BOUNDED_AGGREGATES,
    StreamChunk,
    chunk_bounds,
    expansion_estimate,
    expansion_variance,
    stream_group_partials,
    stream_halfwidth,
)
from ..engine.table import Table
from ..errors import DeadlineExceeded, StreamError
from ..estimators.errors import relative_halfwidth
from ..plan import (
    canonicalize,
    canonicalize_query,
    execute_plan,
    lower_query,
    optimize as optimize_plan,
)
from ..plan.logical import Filter, GroupBy, Scan, walk
from ..serve.deadline import Deadline, current_deadline, deadline_scope

__all__ = [
    "PROVENANCE_STREAM",
    "PROVENANCE_PARTIAL",
    "PROVENANCE_FINAL",
    "StreamingAnswer",
    "stream_answers",
]

#: Provenance tags a :class:`StreamingAnswer` can carry.
PROVENANCE_STREAM = "stream"  # intermediate estimate from a prefix
PROVENANCE_PARTIAL = "partial"  # last complete answer, deadline expired
PROVENANCE_FINAL = "exact"  # ran to completion; bit-identical to exact()

DEFAULT_CHUNK_ROWS = 1024


@dataclass
class StreamingAnswer:
    """One emission of a progressive stream.

    Attributes:
        result: per-group estimates in the query's select-list shape, with
            an ``<alias>_error`` half-width column per SUM/COUNT/AVG
            aggregate (zero on the final exact emission).
        chunk_index: 0-based index of the chunk that produced this answer.
        chunks_total: chunks the full stream would take.
        rows_seen: permuted prefix rows consumed (pre-WHERE).
        rows_total: base relation rows.
        support: qualifying rows seen per group key tuple -- non-
            decreasing across emissions.
        provenance: ``"stream"`` / ``"partial"`` / ``"exact"``.
        final: the answer is bit-identical to :meth:`AquaSystem.exact`.
        converged: every group's relative half-width met
            ``until_rel_error`` at this emission.
        max_rel_halfwidth: worst finite relative half-width across groups
            and bounded aggregates (NaN when there is none to report).
        confidence: confidence level of the error columns.
        bound_method: bound family the half-widths came from.
        elapsed_seconds: wall time since the stream started.
        cache_hit: served from the answer cache without streaming.
    """

    result: Table
    chunk_index: int
    chunks_total: int
    rows_seen: int
    rows_total: int
    support: Dict[Tuple, int] = field(default_factory=dict)
    provenance: str = PROVENANCE_STREAM
    final: bool = False
    converged: bool = False
    max_rel_halfwidth: float = float("nan")
    confidence: float = 0.0
    bound_method: str = "chebyshev"
    elapsed_seconds: float = 0.0
    cache_hit: bool = False

    @property
    def fraction(self) -> float:
        """Fraction of the base relation folded into this answer."""
        return self.rows_seen / self.rows_total if self.rows_total else 1.0


@dataclass
class _StreamPlan:
    """The streamable skeleton extracted from an optimized logical plan."""

    scan: Scan
    filters: Tuple[Filter, ...]  # residual filters between scan and group-by
    group_by: GroupBy

    def apply_scan(self, chunk: Table) -> Table:
        """Run the optimized scan stage (pruning + pushdown) on one chunk."""
        if self.scan.columns is not None:
            chunk = chunk.project(list(self.scan.columns))
        if self.scan.predicate is not None:
            chunk = chunk.filter(self.scan.predicate.evaluate(chunk))
        for node in self.filters:
            chunk = chunk.filter(node.predicate.evaluate(chunk))
        return chunk


def _validate_query(query: Query) -> None:
    if isinstance(query.from_item, Query):
        raise StreamError(
            "sql_stream requires a flat aggregate query over a base table; "
            "nested FROM subqueries are not streamable"
        )
    if not query.has_aggregates():
        raise StreamError(
            "sql_stream requires at least one aggregate in the select list"
        )


def _extract_stream_plan(plan, base_name: str) -> _StreamPlan:
    """Find the Scan -> [Filter...] -> GroupBy spine of the optimized plan.

    Everything above the GroupBy (select shaping, HAVING, ORDER BY, LIMIT)
    is re-applied per emission from the query itself, because the streamed
    estimates table carries error columns the plan does not know about.
    """
    group_nodes = [n for __, n in walk(plan) if isinstance(n, GroupBy)]
    if len(group_nodes) != 1:
        raise StreamError(
            f"query lowers to {len(group_nodes)} GroupBy operators; "
            "sql_stream streams exactly one"
        )
    group = group_nodes[0]
    filters: List[Filter] = []
    node = group.child
    while isinstance(node, Filter):
        filters.append(node)
        node = node.child
    if not isinstance(node, Scan) or node.table != base_name:
        raise StreamError(
            "sql_stream requires the aggregation input to be a plain scan "
            f"of {base_name!r}; got a {type(node).__name__} node"
        )
    # Residual filters apply bottom-up (closest to the scan first).
    return _StreamPlan(node, tuple(reversed(filters)), group)


def _moment_aggregates(query: Query) -> List[Aggregate]:
    """The internal aggregates streamed per chunk.

    Bounded aggregates become ``var`` states over the same input so every
    group carries the (n, sum, sum_sq) moment triple; MIN/MAX/VAR stream
    as themselves.  COUNT streams the qualifying-row indicator.
    """
    internal = []
    for agg in query.aggregates():
        if agg.func in BOUNDED_AGGREGATES:
            expr = Lit(1) if agg.func == "count" else agg.expr
            internal.append(Aggregate("var", expr, agg.alias))
        else:
            internal.append(Aggregate(agg.func, agg.expr, agg.alias))
    return internal


def _hoeffding_ranges(
    base: Table, query: Query, aggregate: Aggregate
) -> Dict[Tuple, float]:
    """Zero-extended per-answer-group value ranges from the base relation.

    Mirrors the batch path's precomputed range hints: the WHERE predicate
    zero-extends non-qualifying rows, so ranges include zero.
    """
    if aggregate.func == "count":
        values = np.ones(base.num_rows)
    else:
        values = np.asarray(aggregate.expr.evaluate(base), dtype=np.float64)
    ids, keys, num = group_ids_for(base, list(query.group_by))
    lows = np.minimum(grouped_reduce("min", values, ids, num), 0.0)
    highs = np.maximum(grouped_reduce("max", values, ids, num), 0.0)
    return {key: float(highs[i] - lows[i]) for i, key in enumerate(keys)}


def _shape_emission(
    query: Query,
    base_schema: Schema,
    partial: GroupByPartial,
    estimates: Dict[str, np.ndarray],
    halfwidths: Dict[str, np.ndarray],
) -> Table:
    """Assemble one emission table in the batch answer's column order.

    Select-list items first (keys renamed to their aliases, aggregate
    estimates), then one ``<alias>_error`` column per bounded aggregate --
    the same shape :meth:`AquaSystem.answer` results have, so callers can
    swap a stream in for a batch answer without reshaping.
    """
    columns = {}
    schema_cols = []
    key_index = {name: i for i, name in enumerate(partial.key_columns)}
    for item in query.select:
        if isinstance(item, Aggregate):
            schema_cols.append(Column(item.alias, ColumnType.FLOAT))
            columns[item.alias] = estimates[item.alias]
        else:
            src = base_schema.column(item.expr.name)
            pos = key_index[item.expr.name]
            schema_cols.append(Column(item.alias, src.ctype))
            columns[item.alias] = src.ctype.coerce(
                [key[pos] for key in partial.group_keys]
            )
    for alias, values in halfwidths.items():
        schema_cols.append(Column(f"{alias}_error", ColumnType.FLOAT))
        columns[f"{alias}_error"] = values
    table = Table(Schema(schema_cols), columns)
    if query.having is not None:
        table = table.filter(query.having.evaluate(table))
    if query.order_by:
        table = table.sort_by(list(query.order_by))
    if query.limit is not None:
        table = table.head(query.limit)
    return table


def _max_rel_halfwidth(
    estimates: Dict[str, np.ndarray], halfwidths: Dict[str, np.ndarray]
) -> float:
    """Worst finite relative half-width across groups and bounded aliases."""
    worst = float("nan")
    for alias, widths in halfwidths.items():
        values = estimates[alias]
        for halfwidth, value in zip(widths, values):
            rel = relative_halfwidth(float(halfwidth), float(value))
            if math.isfinite(rel) and not (worst >= rel):
                worst = rel
    return worst


def _converged(
    estimates: Dict[str, np.ndarray],
    halfwidths: Dict[str, np.ndarray],
    until_rel_error: float,
) -> bool:
    """True when every (group, bounded aggregate) bound is tight enough.

    Non-finite relative half-widths (no variance estimate yet, zero
    estimates with nonzero bounds) block convergence -- an unknown bound
    is not a tight one.
    """
    if not halfwidths:
        return False
    for alias, widths in halfwidths.items():
        values = estimates[alias]
        for halfwidth, value in zip(widths, values):
            rel = relative_halfwidth(float(halfwidth), float(value))
            if not (math.isfinite(rel) and rel <= until_rel_error):
                return False
    return True


def _stream_bound_method(system) -> str:
    """Map the system's bound family onto the streaming estimator's."""
    return "hoeffding" if system._bound_method == "hoeffding" else "chebyshev"


def _chunk_estimates(
    system,
    query: Query,
    chunk: StreamChunk,
    ranges: Dict[str, Dict[Tuple, float]],
) -> Tuple[Dict[str, np.ndarray], Dict[str, np.ndarray]]:
    """Per-group estimates and half-widths for one cumulative chunk."""
    method = _stream_bound_method(system)
    confidence = system._confidence
    m, n = chunk.rows_seen, chunk.rows_total
    partial = chunk.partial
    estimates: Dict[str, np.ndarray] = {}
    halfwidths: Dict[str, np.ndarray] = {}
    for agg in query.aggregates():
        state = partial.states[agg.alias]
        if agg.func not in BOUNDED_AGGREGATES:
            estimates[agg.alias] = finalize_state(state)
            continue
        estimates[agg.alias] = expansion_estimate(agg.func, state, m, n)
        if agg.func == "avg":
            # Ratio estimator: delta-method variance from the scaled
            # numerator (sum) and denominator (count) expansions, matching
            # the batch estimator's conservative simplification.
            num_var = expansion_variance(state.total, state.total_sq, m, n)
            den_var = expansion_variance(state.count, state.count, m, n)
            den = state.count * (n / m) if m else np.zeros_like(state.count)
            value = estimates[agg.alias]
            with np.errstate(divide="ignore", invalid="ignore"):
                variance = np.where(
                    den > 0,
                    (num_var + value * value * den_var) / (den * den),
                    np.nan,
                )
            widths = np.array(
                [
                    stream_halfwidth(
                        "chebyshev", math.sqrt(v), confidence=confidence
                    )
                    if v >= 0
                    else float("nan")
                    for v in variance
                ]
            )
        elif method == "hoeffding":
            group_ranges = ranges[agg.alias]
            widths = np.array(
                [
                    stream_halfwidth(
                        "hoeffding",
                        0.0,
                        confidence=confidence,
                        value_range=group_ranges.get(key, 0.0),
                        rows_seen=m,
                        rows_total=n,
                    )
                    for key in partial.group_keys
                ]
            )
        else:
            if agg.func == "count":
                variance = expansion_variance(state.count, state.count, m, n)
            else:
                variance = expansion_variance(state.total, state.total_sq, m, n)
            widths = np.array(
                [
                    stream_halfwidth(
                        method, math.sqrt(v), confidence=confidence
                    )
                    if v >= 0
                    else float("nan")
                    for v in variance
                ]
            )
        halfwidths[agg.alias] = widths
    return estimates, halfwidths


def _support(partial: GroupByPartial) -> Dict[Tuple, int]:
    """Qualifying rows seen per group key (any state's count array)."""
    if not partial.states:
        return {}
    counts = next(iter(partial.states.values())).count
    return {
        key: int(counts[i]) for i, key in enumerate(partial.group_keys)
    }


def _stream_metrics(system, table: str):
    metrics = system.telemetry.metrics
    if not metrics.enabled:
        return None
    return {
        "queries": metrics.counter(
            "stream_queries_total",
            "Streams started by sql_stream(), per table.",
            ("table",),
        ),
        "chunks": metrics.counter(
            "stream_chunks_total",
            "Chunks folded into streaming answers, per table.",
            ("table",),
        ),
        "early_stops": metrics.counter(
            "stream_early_stops_total",
            "Streams stopped early because until_rel_error was met.",
            ("table",),
        ),
        "deadline": metrics.counter(
            "stream_deadline_total",
            "Streams interrupted by a deadline (partial terminal answer).",
            ("table",),
        ),
        "ttfa": metrics.histogram(
            "stream_time_to_first_answer_seconds",
            "Wall time from sql_stream() to the first emitted answer.",
            ("table",),
        ),
    }


def stream_answers(
    system,
    sql: Union[str, Query],
    *,
    chunk_rows: int = DEFAULT_CHUNK_ROWS,
    until_rel_error: Optional[float] = None,
    deadline: Union[Deadline, float, None] = None,
    rng: Optional[np.random.Generator] = None,
) -> Iterator[StreamingAnswer]:
    """The generator behind :meth:`AquaSystem.sql_stream` (see its docs)."""
    if chunk_rows < 1:
        raise StreamError(f"chunk_rows must be >= 1, got {chunk_rows}")
    if until_rel_error is not None and until_rel_error <= 0:
        raise StreamError(
            f"until_rel_error must be > 0, got {until_rel_error}"
        )
    started = time.perf_counter()
    query = parse_query(sql) if isinstance(sql, str) else sql
    _validate_query(query)
    base_name = query.base_table_name()
    state = system._state(base_name)
    system._flush_pending(base_name)
    base = state.table

    # The ambient (or explicit) deadline is captured once and checked
    # between chunks; deadline_scope is entered per resumption only, so the
    # generator never leaks a contextvar into its consumer across yields.
    resolved = Deadline.resolve(deadline)
    if resolved is None:
        resolved = current_deadline()

    cache_key = _stream_cache_key(system, query, base_name)
    if cache_key is not None:
        cached = system._cache.get(cache_key)
        if cached is not None:
            # An exact final answer trivially meets any relative-error
            # target, so converged tracks the *caller's* request here.
            yield dataclass_replace(
                cached,
                cache_hit=True,
                converged=until_rel_error is not None,
            )
            return

    logical = _optimized_stream_plan(system, query, base_name)
    stream_plan = _extract_stream_plan(logical, base_name)
    tracer = system.telemetry.tracer
    metrics = _stream_metrics(system, base_name)
    if metrics is not None:
        metrics["queries"].inc(table=base_name)

    ranges: Dict[str, Dict[Tuple, float]] = {}
    if _stream_bound_method(system) == "hoeffding":
        ranges = {
            agg.alias: _hoeffding_ranges(base, query, agg)
            for agg in query.aggregates()
            if agg.func in ("sum", "count")
        }

    internal = _moment_aggregates(query)
    rng = rng if rng is not None else system._rng
    chunks_total = len(chunk_bounds(base.num_rows, chunk_rows))
    last: Optional[StreamingAnswer] = None
    emitted_first = False

    def _scan_and_partial(chunk_table: Table):
        scanned = stream_plan.apply_scan(chunk_table)
        from ..engine.groupby import partial_group_by

        return partial_group_by(scanned, list(query.group_by), internal)

    # Reimplement the chunk loop here (rather than reusing
    # stream_group_partials verbatim) so the optimized scan stage runs on
    # the raw chunk before grouping, while rows_seen stays the pre-filter
    # prefix length the expansion estimator needs.
    perm = rng.permutation(base.num_rows)
    bounds = chunk_bounds(base.num_rows, chunk_rows)
    from ..engine.groupby import merge_group_partials

    cumulative = None
    for index, (start, stop) in enumerate(bounds):
        is_last = index == len(bounds) - 1
        try:
            if resolved is not None:
                resolved.check("stream_chunk")
            with deadline_scope(resolved):
                with tracer.span(
                    "stream_chunk",
                    table=base_name,
                    chunk=index,
                    rows=stop - start,
                ):
                    if is_last:
                        answer = _exact_landing(
                            system, query, logical, base_name,
                            chunks_total, base.num_rows, started,
                            until_rel_error,
                        )
                    else:
                        partial = _scan_and_partial(base.take(perm[start:stop]))
                        cumulative = (
                            partial
                            if cumulative is None
                            else merge_group_partials([cumulative, partial])
                        )
                        chunk = StreamChunk(
                            index=index,
                            chunks_total=chunks_total,
                            rows_seen=stop,
                            rows_total=base.num_rows,
                            partial=cumulative,
                        )
                        answer = _stream_emission(
                            system, query, base.schema, chunk, ranges,
                            until_rel_error, started,
                        )
        except DeadlineExceeded:
            if last is None:
                raise
            if metrics is not None:
                metrics["deadline"].inc(table=base_name)
            yield dataclass_replace(
                last,
                provenance=PROVENANCE_PARTIAL,
                final=False,
                elapsed_seconds=time.perf_counter() - started,
            )
            return
        if metrics is not None:
            metrics["chunks"].inc(table=base_name)
            if not emitted_first:
                metrics["ttfa"].observe(
                    time.perf_counter() - started, table=base_name
                )
                emitted_first = True
        last = answer
        yield answer
        if answer.final:
            if cache_key is not None:
                system._cache.put(
                    _stream_cache_key(system, query, base_name), answer
                )
            return
        if answer.converged:
            if metrics is not None:
                metrics["early_stops"].inc(table=base_name)
            return


def _stream_emission(
    system,
    query: Query,
    base_schema: Schema,
    chunk: StreamChunk,
    ranges: Dict[str, Dict[Tuple, float]],
    until_rel_error: Optional[float],
    started: float,
) -> StreamingAnswer:
    estimates, halfwidths = _chunk_estimates(system, query, chunk, ranges)
    result = _shape_emission(
        query, base_schema, chunk.partial, estimates, halfwidths
    )
    converged = (
        until_rel_error is not None
        and _converged(estimates, halfwidths, until_rel_error)
    )
    return StreamingAnswer(
        result=result,
        chunk_index=chunk.index,
        chunks_total=chunk.chunks_total,
        rows_seen=chunk.rows_seen,
        rows_total=chunk.rows_total,
        support=_support(chunk.partial),
        provenance=PROVENANCE_STREAM,
        final=False,
        converged=converged,
        max_rel_halfwidth=_max_rel_halfwidth(estimates, halfwidths),
        confidence=system._confidence,
        bound_method=_stream_bound_method(system),
        elapsed_seconds=time.perf_counter() - started,
    )


def _exact_landing(
    system,
    query: Query,
    logical,
    base_name: str,
    chunks_total: int,
    rows_total: int,
    started: float,
    until_rel_error: Optional[float],
) -> StreamingAnswer:
    """The terminal emission: run the batch plan over the full relation.

    Bit-identical to :meth:`AquaSystem.exact` by construction -- same
    optimized logical plan, same executor -- with zero half-widths
    appended per bounded aggregate.
    """
    result = execute_plan(
        logical,
        system.catalog,
        parallel=system._executor,
        tracer=system.telemetry.tracer,
    )
    support: Dict[Tuple, int] = {}
    for agg in query.aggregates():
        if agg.func == "count":
            keys = [
                tuple(
                    v.item() if hasattr(v, "item") else v
                    for v in (result.column(k)[i] for k in query.group_by)
                )
                for i in range(result.num_rows)
            ]
            counts = result.column(agg.alias)
            support = {
                key: int(counts[i]) for i, key in enumerate(keys)
            }
            break
    for agg in query.aggregates():
        if agg.func in BOUNDED_AGGREGATES:
            result = result.with_column(
                Column(f"{agg.alias}_error", ColumnType.FLOAT),
                np.zeros(result.num_rows),
            )
    return StreamingAnswer(
        result=result,
        chunk_index=chunks_total - 1,
        chunks_total=chunks_total,
        rows_seen=rows_total,
        rows_total=rows_total,
        support=support,
        provenance=PROVENANCE_FINAL,
        final=True,
        converged=until_rel_error is not None,
        max_rel_halfwidth=0.0,
        confidence=system._confidence,
        bound_method=_stream_bound_method(system),
        elapsed_seconds=time.perf_counter() - started,
    )


def _stream_cache_key(system, query: Query, base_name: str):
    """Answer-cache key for a completed stream (None = caching disabled).

    ``"stream"`` marks the entry so batch answers and streams never alias;
    otherwise the key mirrors the batch one: data version, the query's
    *structural* canonical fingerprint (alias-sensitive, group order
    preserved -- a cached stream's result table bakes in the output
    schema, so alias-insensitive matching would serve wrongly-named
    columns), confidence, bound family.  Streaming answers never populate
    the semantic reuse tiers: a stream's terminal emission is an *exact*
    answer, not a synopsis scan, so there is no snapshot to roll up.
    """
    if system._cache is None:
        return None
    return (
        base_name,
        system._state(base_name).version,
        "stream",
        canonicalize_query(query).structural,
        system._confidence,
        system._bound_method,
    )


def _optimized_stream_plan(system, query: Query, base_name: str):
    """Lower + optimize the base-table query, memoized under ``"stream"``.

    The same plan :meth:`AquaSystem.exact` would build, cached in the
    :class:`~repro.plan.PlanCache` under a stream-specific strategy tag so
    rewritten synopsis plans never collide with streamed base scans.
    """
    lowered = lower_query(query, system.catalog)
    if system._plan_cache is None:
        return optimize_plan(lowered)
    lowered, fingerprint = canonicalize(lowered)
    key = system._plan_key(base_name, "stream", "", fingerprint)
    cached = system._plan_cache.get(key)
    if cached is not None:
        return cached
    logical = optimize_plan(lowered)
    system._plan_cache.put(key, logical)
    return logical
