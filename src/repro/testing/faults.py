"""Deterministic fault injection for Aqua synopses.

The guarded answer path (:mod:`repro.aqua.guard`) promises that a damaged
synopsis never surfaces as ``NaN`` aggregates or a bare crash -- every fault
either degrades to a valid guarded answer (with honest per-group provenance)
or raises a typed :class:`~repro.errors.AquaError`.  This module manufactures
the damage, deterministically, so the promise can be tested:

* **drop_stratum** -- a stratum vanishes wholesale (as if its sample
  relation partition were lost); detected by the base-coverage check.
* **corrupt_scale_factor** -- a stratum's population is zeroed while its
  sampled rows remain, driving the scale factor to zero (the classic
  "stale statistics" corruption); caught by structural validation.
* **truncate_sample** -- a stratum is cut to a handful of rows but keeps
  its population, starving one group of support; caught by the per-group
  support threshold and repaired from the base table.
* **empty_allocation** -- a stratum keeps its population but loses every
  sample row, making its group invisible to the synopsis; caught by
  missing-group detection and repaired.
* **corrupt_row_indices** -- sample row indices point outside the base
  table (torn metadata); caught by structural validation.
* **stale** -- inserts accumulate without a refresh; caught by the
  staleness limit / drift tracking.

Faults are injected through :meth:`AquaSystem._install` where the mutated
sample can still be materialized, so the synopsis relations in the catalog
really reflect the damage; unmaterializable faults (out-of-bounds indices)
are patched directly onto the installed :class:`~repro.aqua.synopsis.Synopsis`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

import numpy as np

from ..aqua.system import AquaSystem
from ..errors import AquaError
from ..sampling.groups import GroupKey
from ..sampling.stratified import StratifiedSample, Stratum

__all__ = ["FAULT_KINDS", "FaultInjector", "InjectedFault", "inject"]

#: Every fault kind :func:`inject` understands, for parametrized tests.
FAULT_KINDS = (
    "drop_stratum",
    "corrupt_scale_factor",
    "truncate_sample",
    "empty_allocation",
    "corrupt_row_indices",
    "stale",
)


@dataclass(frozen=True)
class InjectedFault:
    """A record of one injected fault, for test assertions and logging."""

    kind: str
    table: str
    key: Optional[GroupKey]
    detail: str


class FaultInjector:
    """Deterministically damage an :class:`AquaSystem`'s synopses."""

    def __init__(self, system: AquaSystem):
        self.system = system

    # -- fault constructors --------------------------------------------------

    def drop_stratum(
        self, name: str, key: Optional[GroupKey] = None
    ) -> InjectedFault:
        """Remove one stratum from the synopsis entirely."""
        sample = self.system.synopsis(name).sample
        key = self._target_key(sample, key)
        strata = sample.strata
        del strata[key]
        self._reinstall(name, sample, strata)
        return InjectedFault(
            "drop_stratum", name, key, f"stratum {key} removed"
        )

    def corrupt_scale_factor(
        self, name: str, key: Optional[GroupKey] = None, population: int = 0
    ) -> InjectedFault:
        """Zero (or otherwise corrupt) one stratum's population.

        The scale factor is population / sample size, so a zeroed population
        with surviving sample rows yields a zero scale factor -- every
        estimate touching the stratum silently shrinks unless caught.
        """
        sample = self.system.synopsis(name).sample
        key = self._target_key(sample, key)
        strata = sample.strata
        old = strata[key]
        strata[key] = Stratum(key, population, old.row_indices)
        self._reinstall(name, sample, strata)
        return InjectedFault(
            "corrupt_scale_factor",
            name,
            key,
            f"population {old.population} -> {population} with "
            f"{old.sample_size} sampled rows",
        )

    def truncate_sample(
        self, name: str, key: Optional[GroupKey] = None, keep: int = 1
    ) -> InjectedFault:
        """Cut one stratum's sample to ``keep`` rows, keeping its population."""
        sample = self.system.synopsis(name).sample
        key = self._target_key(sample, key)
        strata = sample.strata
        old = strata[key]
        strata[key] = Stratum(key, old.population, old.row_indices[:keep])
        self._reinstall(name, sample, strata)
        return InjectedFault(
            "truncate_sample",
            name,
            key,
            f"sample cut from {old.sample_size} to "
            f"{min(keep, old.sample_size)} rows",
        )

    def empty_allocation(
        self, name: str, key: Optional[GroupKey] = None
    ) -> InjectedFault:
        """Strip every sample row from one stratum, keeping its population."""
        sample = self.system.synopsis(name).sample
        key = self._target_key(sample, key)
        strata = sample.strata
        old = strata[key]
        strata[key] = Stratum(
            key, old.population, np.empty(0, dtype=np.int64)
        )
        self._reinstall(name, sample, strata)
        return InjectedFault(
            "empty_allocation",
            name,
            key,
            f"all {old.sample_size} sampled rows removed "
            f"(population {old.population} kept)",
        )

    def corrupt_row_indices(
        self, name: str, key: Optional[GroupKey] = None
    ) -> InjectedFault:
        """Point one stratum's sample rows outside the base table."""
        sample = self.system.synopsis(name).sample
        key = self._target_key(sample, key)
        strata = sample.strata
        old = strata[key]
        num_base = sample.base_table.num_rows
        strata[key] = Stratum(
            key, old.population, old.row_indices + num_base
        )
        self._reinstall(name, sample, strata)
        return InjectedFault(
            "corrupt_row_indices",
            name,
            key,
            f"row indices shifted past the {num_base}-row base table",
        )

    def make_stale(self, name: str, rows: int = 25) -> InjectedFault:
        """Insert ``rows`` duplicates of the first base row, no refresh."""
        state = self.system._state(name)
        first = next(iter(state.table.iter_rows()))
        for __ in range(rows):
            self.system.insert(name, first)
        return InjectedFault(
            "stale", name, None, f"{rows} inserts buffered without refresh"
        )

    # -- plumbing ------------------------------------------------------------

    def _target_key(
        self, sample: StratifiedSample, key: Optional[GroupKey]
    ) -> GroupKey:
        """Resolve the target stratum: explicit, else first sampled in order."""
        if key is not None:
            if key not in sample.strata:
                raise AquaError(f"no stratum {key!r} to inject a fault into")
            return key
        for candidate, stratum in sorted(sample.strata.items()):
            if stratum.sample_size > 0:
                return candidate
        raise AquaError("sample has no nonempty stratum to inject a fault into")

    def _reinstall(
        self,
        name: str,
        sample: StratifiedSample,
        strata: Dict[GroupKey, Stratum],
    ) -> None:
        """Install the mutated sample, materializing it when possible.

        Faults that cannot be materialized (e.g. out-of-bounds row indices
        make ``base.take`` fail) are instead patched onto the installed
        synopsis object -- the damage then lives in the synopsis metadata,
        which is exactly where validation must catch it.
        """
        mutated = StratifiedSample(
            sample.base_table, sample.grouping_columns, strata
        )
        try:
            self.system._install(name, mutated)
        except Exception:
            self.system.synopsis(name).sample = mutated


def inject(system: AquaSystem, kind: str, table: str) -> InjectedFault:
    """Inject one fault by kind name (see :data:`FAULT_KINDS`)."""
    injector = FaultInjector(system)
    if kind == "drop_stratum":
        return injector.drop_stratum(table)
    if kind == "corrupt_scale_factor":
        return injector.corrupt_scale_factor(table)
    if kind == "truncate_sample":
        return injector.truncate_sample(table)
    if kind == "empty_allocation":
        return injector.empty_allocation(table)
    if kind == "corrupt_row_indices":
        return injector.corrupt_row_indices(table)
    if kind == "stale":
        return injector.make_stale(table)
    raise AquaError(
        f"unknown fault kind {kind!r}; expected one of {FAULT_KINDS}"
    )
