"""Deterministic fault injection for Aqua synopses.

The guarded answer path (:mod:`repro.aqua.guard`) promises that a damaged
synopsis never surfaces as ``NaN`` aggregates or a bare crash -- every fault
either degrades to a valid guarded answer (with honest per-group provenance)
or raises a typed :class:`~repro.errors.AquaError`.  This module manufactures
the damage, deterministically, so the promise can be tested:

* **drop_stratum** -- a stratum vanishes wholesale (as if its sample
  relation partition were lost); detected by the base-coverage check.
* **corrupt_scale_factor** -- a stratum's population is zeroed while its
  sampled rows remain, driving the scale factor to zero (the classic
  "stale statistics" corruption); caught by structural validation.
* **truncate_sample** -- a stratum is cut to a handful of rows but keeps
  its population, starving one group of support; caught by the per-group
  support threshold and repaired from the base table.
* **empty_allocation** -- a stratum keeps its population but loses every
  sample row, making its group invisible to the synopsis; caught by
  missing-group detection and repaired.
* **corrupt_row_indices** -- sample row indices point outside the base
  table (torn metadata); caught by structural validation.
* **stale** -- inserts accumulate without a refresh; caught by the
  staleness limit / drift tracking.

Faults are injected through :meth:`AquaSystem._install` where the mutated
sample can still be materialized, so the synopsis relations in the catalog
really reflect the damage; unmaterializable faults (out-of-bounds indices)
are patched directly onto the installed :class:`~repro.aqua.synopsis.Synopsis`.

The second injector, :class:`ServiceFaultInjector`, targets the *serving*
path (:mod:`repro.serve`) rather than synopsis contents.  Its faults are
deterministic by construction -- no wall-clock sleeps, no randomness:

* **gate_queries** -- every ``answer()`` call blocks on a
  :class:`threading.Event` until the test releases it, polling the active
  serve deadline while parked.  This saturates a worker pool on demand,
  making admission-control rejections reproducible.
* **error_burst** -- the next *N* ``answer()`` calls raise a
  :class:`~repro.errors.TransientError` (or a caller-supplied exception),
  exercising the retry policy and circuit breaker with an exact failure
  count.
* **slow_scan** -- the synopsis sample relation is replaced with a
  :class:`SlowScanTable` that charges a :class:`ManualClock` per column
  read and honors the active deadline, so "this scan takes 50 ms" is a
  statement about the manual clock, not the machine.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Callable, Dict, Optional

import numpy as np

from ..aqua.system import AquaSystem
from ..engine.table import Table
from ..errors import AquaError, TransientError
from ..sampling.groups import GroupKey
from ..sampling.stratified import StratifiedSample, Stratum
from ..serve.deadline import ManualClock, check_deadline

__all__ = [
    "FAULT_KINDS",
    "AnswerTamper",
    "FaultInjector",
    "InjectedFault",
    "ManualClock",
    "ServiceFaultInjector",
    "SlowScanTable",
    "inject",
]

#: Every fault kind :func:`inject` understands, for parametrized tests.
FAULT_KINDS = (
    "drop_stratum",
    "corrupt_scale_factor",
    "truncate_sample",
    "empty_allocation",
    "corrupt_row_indices",
    "stale",
)


@dataclass(frozen=True)
class InjectedFault:
    """A record of one injected fault, for test assertions and logging."""

    kind: str
    table: str
    key: Optional[GroupKey]
    detail: str


class FaultInjector:
    """Deterministically damage an :class:`AquaSystem`'s synopses."""

    def __init__(self, system: AquaSystem):
        self.system = system

    # -- fault constructors --------------------------------------------------

    def drop_stratum(
        self, name: str, key: Optional[GroupKey] = None
    ) -> InjectedFault:
        """Remove one stratum from the synopsis entirely."""
        sample = self.system.synopsis(name).sample
        key = self._target_key(sample, key)
        strata = sample.strata
        del strata[key]
        self._reinstall(name, sample, strata)
        return InjectedFault(
            "drop_stratum", name, key, f"stratum {key} removed"
        )

    def corrupt_scale_factor(
        self, name: str, key: Optional[GroupKey] = None, population: int = 0
    ) -> InjectedFault:
        """Zero (or otherwise corrupt) one stratum's population.

        The scale factor is population / sample size, so a zeroed population
        with surviving sample rows yields a zero scale factor -- every
        estimate touching the stratum silently shrinks unless caught.
        """
        sample = self.system.synopsis(name).sample
        key = self._target_key(sample, key)
        strata = sample.strata
        old = strata[key]
        strata[key] = Stratum(key, population, old.row_indices)
        self._reinstall(name, sample, strata)
        return InjectedFault(
            "corrupt_scale_factor",
            name,
            key,
            f"population {old.population} -> {population} with "
            f"{old.sample_size} sampled rows",
        )

    def truncate_sample(
        self, name: str, key: Optional[GroupKey] = None, keep: int = 1
    ) -> InjectedFault:
        """Cut one stratum's sample to ``keep`` rows, keeping its population."""
        sample = self.system.synopsis(name).sample
        key = self._target_key(sample, key)
        strata = sample.strata
        old = strata[key]
        strata[key] = Stratum(key, old.population, old.row_indices[:keep])
        self._reinstall(name, sample, strata)
        return InjectedFault(
            "truncate_sample",
            name,
            key,
            f"sample cut from {old.sample_size} to "
            f"{min(keep, old.sample_size)} rows",
        )

    def empty_allocation(
        self, name: str, key: Optional[GroupKey] = None
    ) -> InjectedFault:
        """Strip every sample row from one stratum, keeping its population."""
        sample = self.system.synopsis(name).sample
        key = self._target_key(sample, key)
        strata = sample.strata
        old = strata[key]
        strata[key] = Stratum(
            key, old.population, np.empty(0, dtype=np.int64)
        )
        self._reinstall(name, sample, strata)
        return InjectedFault(
            "empty_allocation",
            name,
            key,
            f"all {old.sample_size} sampled rows removed "
            f"(population {old.population} kept)",
        )

    def corrupt_row_indices(
        self, name: str, key: Optional[GroupKey] = None
    ) -> InjectedFault:
        """Point one stratum's sample rows outside the base table."""
        sample = self.system.synopsis(name).sample
        key = self._target_key(sample, key)
        strata = sample.strata
        old = strata[key]
        num_base = sample.base_table.num_rows
        strata[key] = Stratum(
            key, old.population, old.row_indices + num_base
        )
        self._reinstall(name, sample, strata)
        return InjectedFault(
            "corrupt_row_indices",
            name,
            key,
            f"row indices shifted past the {num_base}-row base table",
        )

    def make_stale(self, name: str, rows: int = 25) -> InjectedFault:
        """Insert ``rows`` duplicates of the first base row, no refresh."""
        state = self.system._state(name)
        first = next(iter(state.table.iter_rows()))
        for __ in range(rows):
            self.system.insert(name, first)
        return InjectedFault(
            "stale", name, None, f"{rows} inserts buffered without refresh"
        )

    # -- plumbing ------------------------------------------------------------

    def _target_key(
        self, sample: StratifiedSample, key: Optional[GroupKey]
    ) -> GroupKey:
        """Resolve the target stratum: explicit, else first sampled in order."""
        if key is not None:
            if key not in sample.strata:
                raise AquaError(f"no stratum {key!r} to inject a fault into")
            return key
        for candidate, stratum in sorted(sample.strata.items()):
            if stratum.sample_size > 0:
                return candidate
        raise AquaError("sample has no nonempty stratum to inject a fault into")

    def _reinstall(
        self,
        name: str,
        sample: StratifiedSample,
        strata: Dict[GroupKey, Stratum],
    ) -> None:
        """Install the mutated sample, materializing it when possible.

        Faults that cannot be materialized (e.g. out-of-bounds row indices
        make ``base.take`` fail) are instead patched onto the installed
        synopsis object -- the damage then lives in the synopsis metadata,
        which is exactly where validation must catch it.
        """
        mutated = StratifiedSample(
            sample.base_table, sample.grouping_columns, strata
        )
        try:
            self.system._install(name, mutated)
        except Exception:
            self.system.synopsis(name).sample = mutated


class _SlowScanState:
    """Shared toll meter for a :class:`SlowScanTable` and its derivatives."""

    __slots__ = ("clock", "cost", "stage", "reads")

    def __init__(self, clock: ManualClock, cost: float, stage: str):
        self.clock = clock
        self.cost = cost
        self.stage = stage
        self.reads = 0

    def toll(self) -> None:
        self.reads += 1
        self.clock.advance(self.cost)
        check_deadline(self.stage)


class SlowScanTable(Table):
    """A table whose reads cost manual-clock time and honor deadlines.

    Each read -- a :meth:`column` access, or the :meth:`project` /
    :meth:`filter` a :class:`~repro.plan.logical.Scan` applies -- advances
    ``clock`` by ``cost_seconds`` and then checks the active serve
    deadline, so a scan's duration (and whether it dies mid-way) is fully
    determined by the test, not by machine speed.  ``project``/``filter``
    results stay slow and share one toll meter, so downstream GROUP BY
    column reads keep charging the same clock.
    """

    def __init__(
        self,
        table: Table,
        clock: Optional[ManualClock] = None,
        cost_seconds: float = 0.0,
        stage: str = "scan",
        _state: Optional[_SlowScanState] = None,
    ):
        super().__init__(table.schema, table.columns())
        if _state is None:
            if clock is None:
                raise ValueError("SlowScanTable needs a clock or shared state")
            _state = _SlowScanState(clock, float(cost_seconds), stage)
        self._slow = _state

    @property
    def reads(self) -> int:
        return self._slow.reads

    def column(self, name: str) -> np.ndarray:
        self._slow.toll()
        return super().column(name)

    def take(self, indices) -> "SlowScanTable":
        # Chunked streaming cuts its per-chunk row subsets with take(), so
        # a streamed scan of a slow table must charge the clock per chunk.
        self._slow.toll()
        return SlowScanTable(super().take(indices), _state=self._slow)

    def project(self, names) -> "SlowScanTable":
        self._slow.toll()
        return SlowScanTable(super().project(names), _state=self._slow)

    def filter(self, mask) -> "SlowScanTable":
        self._slow.toll()
        return SlowScanTable(super().filter(mask), _state=self._slow)


class ServiceFaultInjector:
    """Deterministic serving-path faults: gates, error bursts, slow scans.

    Usable as a context manager; :meth:`restore` (or ``__exit__``) releases
    any gate, clears pending error bursts, and puts original sample
    relations back in the catalog.
    """

    def __init__(self, system: AquaSystem):
        self.system = system
        self._lock = threading.Lock()
        self._original_answer: Optional[Callable] = None
        self._gate: Optional[threading.Event] = None
        self._burst_remaining = 0
        self._burst_factory: Callable[[], Exception] = lambda: TransientError(
            "injected transient fault"
        )
        self._slow_tables: Dict[str, Table] = {}
        self._slow_bases: Dict[str, Table] = {}

    # -- fault constructors --------------------------------------------------

    def gate_queries(self) -> threading.Event:
        """Block every ``answer()`` call until the returned event is set.

        Parked calls poll the event in short waits and check the active
        serve deadline between polls, so a gated query under a deadline
        dies with a typed :class:`~repro.errors.DeadlineExceeded` (stage
        ``"gated"``) instead of hanging the worker forever.
        """
        gate = threading.Event()
        self._gate = gate
        self._wrap_answer()
        return gate

    def release(self) -> None:
        """Open the gate (if any), letting parked queries proceed."""
        if self._gate is not None:
            self._gate.set()

    def error_burst(
        self, count: int = 1, factory: Optional[Callable[[], Exception]] = None
    ) -> None:
        """Make the next ``count`` ``answer()`` calls raise.

        The default exception is a retryable
        :class:`~repro.errors.TransientError`; pass ``factory`` to raise
        something else (e.g. a non-retryable error to trip the breaker).
        """
        with self._lock:
            self._burst_remaining += count
            if factory is not None:
                self._burst_factory = factory
        self._wrap_answer()

    def slow_scan(
        self,
        name: str,
        cost_seconds: float,
        clock: ManualClock,
        stage: str = "scan",
    ) -> SlowScanTable:
        """Replace ``name``'s sample relation with a :class:`SlowScanTable`.

        Every column read during a synopsis scan then advances ``clock`` by
        ``cost_seconds`` and checks the active deadline.  Returns the
        instrumented table (its ``reads`` counter is useful in assertions).
        """
        synopsis = self.system.synopsis(name)
        sample_name = synopsis.installed.sample_name
        original = self.system.catalog.get(sample_name)
        slow = SlowScanTable(original, clock, cost_seconds, stage)
        self.system.catalog.register(sample_name, slow, replace=True)
        self._slow_tables.setdefault(sample_name, original)
        return slow

    def slow_base_scan(
        self,
        name: str,
        cost_seconds: float,
        clock: ManualClock,
        stage: str = "scan",
    ) -> SlowScanTable:
        """Replace ``name``'s *base* relation with a :class:`SlowScanTable`.

        The streaming path (:meth:`AquaSystem.sql_stream`) scans the base
        relation, not the synopsis sample, so mid-stream deadline tests
        slow the base: each chunk cut then advances ``clock`` by
        ``cost_seconds`` and checks the active deadline.
        """
        state = self.system._state(name)
        original = state.table
        slow = SlowScanTable(original, clock, cost_seconds, stage)
        state.table = slow
        self.system.catalog.register(name, slow, replace=True)
        self._slow_bases.setdefault(name, original)
        return slow

    # -- teardown ------------------------------------------------------------

    def restore(self) -> None:
        """Undo every injected fault and release any parked queries."""
        if self._original_answer is not None:
            self.system.__dict__.pop("answer", None)
            self._original_answer = None
        if self._gate is not None:
            self._gate.set()
            self._gate = None
        with self._lock:
            self._burst_remaining = 0
        for sample_name, original in self._slow_tables.items():
            self.system.catalog.register(sample_name, original, replace=True)
        self._slow_tables.clear()
        for name, original in self._slow_bases.items():
            self.system._state(name).table = original
            self.system.catalog.register(name, original, replace=True)
        self._slow_bases.clear()

    def __enter__(self) -> "ServiceFaultInjector":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.restore()
        return False

    # -- plumbing ------------------------------------------------------------

    def _wrap_answer(self) -> None:
        """Shadow ``system.answer`` with the gate/burst front door (once)."""
        if self._original_answer is not None:
            return
        original = self.system.answer
        self._original_answer = original
        injector = self

        def answer(*args, **kwargs):
            gate = injector._gate
            if gate is not None:
                while not gate.wait(0.005):
                    check_deadline("gated")
            with injector._lock:
                if injector._burst_remaining > 0:
                    injector._burst_remaining -= 1
                    raise injector._burst_factory()
            return original(*args, **kwargs)

        self.system.answer = answer


class AnswerTamper:
    """Silently scale every bounded aggregate *after* bounds are attached.

    The serving-path twin of the calibration harness's ``tamper_scale``
    negative control: estimates are multiplied by ``scale`` while their
    ``<alias>_error`` half-widths (computed from the untampered estimates)
    are left alone, so the answer silently breaks its own promise.  The
    guard does not notice -- a scaled estimate makes the *relative*
    half-width look better, not worse -- which is exactly the failure mode
    only the accuracy auditor can catch.

    Usable as a context manager; :meth:`restore` (or ``__exit__``) removes
    the shadow.  Note the answer cache: answers cached before the tamper
    was installed are served untampered (tests should use fresh queries or
    a cache-disabled system when that matters).
    """

    def __init__(self, system: AquaSystem, scale: float = 1.1):
        self.system = system
        self.scale = float(scale)
        self._installed = False
        self.tampered = 0

    def install(self) -> "AnswerTamper":
        if self._installed:
            return self
        original = self.system._attach_error_bounds
        tamper = self

        def _attach_error_bounds(query, synopsis, result):
            out = original(query, synopsis, result)
            columns = dict(out.columns())
            touched = False
            for name in list(columns):
                if name.endswith("_error"):
                    continue
                if f"{name}_error" not in out.schema:
                    continue
                columns[name] = np.asarray(columns[name]) * tamper.scale
                touched = True
            if not touched:
                return out
            tamper.tampered += 1
            return Table(out.schema, columns)

        self.system._attach_error_bounds = _attach_error_bounds
        self._installed = True
        return self

    def restore(self) -> None:
        if self._installed:
            self.system.__dict__.pop("_attach_error_bounds", None)
            self._installed = False

    def __enter__(self) -> "AnswerTamper":
        return self.install()

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.restore()
        return False


def inject(system: AquaSystem, kind: str, table: str) -> InjectedFault:
    """Inject one fault by kind name (see :data:`FAULT_KINDS`)."""
    injector = FaultInjector(system)
    if kind == "drop_stratum":
        return injector.drop_stratum(table)
    if kind == "corrupt_scale_factor":
        return injector.corrupt_scale_factor(table)
    if kind == "truncate_sample":
        return injector.truncate_sample(table)
    if kind == "empty_allocation":
        return injector.empty_allocation(table)
    if kind == "corrupt_row_indices":
        return injector.corrupt_row_indices(table)
    if kind == "stale":
        return injector.make_stale(table)
    raise AquaError(
        f"unknown fault kind {kind!r}; expected one of {FAULT_KINDS}"
    )
