"""Deterministic fault injection for exercising the guarded answer path."""

from .faults import FAULT_KINDS, FaultInjector, InjectedFault, inject

__all__ = ["FAULT_KINDS", "FaultInjector", "InjectedFault", "inject"]
