"""Workload-adaptive allocation (Section 4.7).

When relative preferences between groupings and/or between groups are known
(e.g. mined from a query log), each group ``h`` under each grouping ``T``
carries a preference weight ``r_h``, and the per-finest-group target becomes::

    SampleSize(g) = max_{h in T ⊆ G : g subgroup of h}  X * r_h * n_g / n_h

scaled down so the total is ``X``.  With all ``r_h = 1/m_T`` this reduces to
plain Congress.
"""

from __future__ import annotations

from typing import Dict, Mapping, Optional, Sequence, Tuple

from ..sampling.groups import GroupKey, all_groupings, project_key, projected_counts
from .allocation import Allocation, _validate

__all__ = ["GroupPreferences", "WorkloadCongress"]


class GroupPreferences:
    """Relative preference weights ``r_h`` per (grouping, group).

    Weights within a grouping need not sum to one; they are relative shares
    of the budget for that grouping.  Unspecified groups default to a
    uniform ``1/m_T`` share (i.e. plain Senate treatment).
    """

    def __init__(self) -> None:
        self._weights: Dict[Tuple[Tuple[str, ...], GroupKey], float] = {}
        self._boosts: Dict[Tuple[Tuple[str, ...], GroupKey], float] = {}
        self._groupings: Dict[Tuple[str, ...], bool] = {}

    def set(
        self, grouping: Sequence[str], group: GroupKey, weight: float
    ) -> "GroupPreferences":
        """Set the preference weight for ``group`` under ``grouping``."""
        if weight < 0:
            raise ValueError(f"preference weight must be >= 0, got {weight}")
        key = (tuple(grouping), tuple(group))
        self._weights[key] = float(weight)
        self._groupings[tuple(grouping)] = True
        return self

    def set_grouping_weight(
        self, grouping: Sequence[str], weight: float
    ) -> "GroupPreferences":
        """Boost every group of ``grouping`` by the same factor.

        Recorded as a marker; applied multiplicatively during allocation.
        """
        if weight < 0:
            raise ValueError(f"grouping weight must be >= 0, got {weight}")
        self._weights[(tuple(grouping), ("*",))] = float(weight)
        self._groupings[tuple(grouping)] = True
        return self

    def set_boost(
        self, grouping: Sequence[str], group: GroupKey, factor: float
    ) -> "GroupPreferences":
        """Boost one group *relative to its default share*.

        Unlike :meth:`set`, which fixes the absolute weight ``r_h``, a
        boost multiplies whatever the group's weight would otherwise be
        (the uniform ``1/m_T`` unless :meth:`set` overrode it).  This is
        the natural shape for workload mining, where we know "this group is
        pinned 2x as often" without knowing ``m_T`` up front.
        """
        if factor < 0:
            raise ValueError(f"boost factor must be >= 0, got {factor}")
        key = (tuple(grouping), tuple(group))
        self._boosts[key] = self._boosts.get(key, 1.0) * float(factor)
        self._groupings[tuple(grouping)] = True
        return self

    def weight(
        self, grouping: Tuple[str, ...], group: GroupKey, default: float
    ) -> float:
        base = self._weights.get((grouping, tuple(group)), default)
        boost = self._weights.get((grouping, ("*",)), 1.0)
        boost *= self._boosts.get((grouping, tuple(group)), 1.0)
        return base * boost

    def touched_groupings(self) -> Sequence[Tuple[str, ...]]:
        return list(self._groupings)


class WorkloadCongress:
    """Congress with per-group preference weights (Section 4.7)."""

    def __init__(
        self,
        preferences: GroupPreferences,
        groupings: Optional[Sequence[Sequence[str]]] = None,
    ):
        self._preferences = preferences
        self._groupings = (
            [tuple(t) for t in groupings] if groupings is not None else None
        )

    name = "workload_congress"

    def allocate(
        self,
        counts: Mapping[GroupKey, int],
        grouping_columns: Sequence[str],
        budget: float,
    ) -> Allocation:
        _validate(counts, budget)
        groupings = (
            self._groupings
            if self._groupings is not None
            else all_groupings(grouping_columns)
        )
        pre_scaling: Dict[GroupKey, float] = {key: 0.0 for key in counts}
        for target in groupings:
            by_group = projected_counts(counts, grouping_columns, target)
            m_t = len(by_group)
            default_weight = 1.0 / m_t
            for key, n_g in counts.items():
                h = project_key(key, grouping_columns, target)
                r_h = self._preferences.weight(tuple(target), h, default_weight)
                share = budget * r_h * n_g / by_group[h]
                if share > pre_scaling[key]:
                    pre_scaling[key] = share
        total = sum(pre_scaling.values())
        factor = budget / total if total > 0 else 0.0
        fractional = {key: value * factor for key, value in pre_scaling.items()}
        return Allocation(
            strategy=self.name,
            grouping_columns=tuple(grouping_columns),
            budget=budget,
            fractional=fractional,
            populations=dict(counts),
            pre_scaling=pre_scaling,
        )
