"""Senate allocation: equal space per group of one chosen grouping.

Section 4.4 of the paper.  For a grouping ``T`` defining ``m_T`` non-empty
groups, each group receives ``X / m_T`` tuples, sampled uniformly within the
group.  Expressed per finest group ``g`` (a subgroup of ``h`` under ``T``)::

    s_{g,T} = (X / m_T) * (n_g / n_h)        (Equation 4)

With ``T = G`` (the default, and what the paper's experiments use) every
finest group gets the same expected size ``X / |𝒢|``.

A Senate sample for ``T`` also serves any grouping ``T' ⊆ T`` at least as
well, since groups under ``T'`` are unions of groups under ``T``.
"""

from __future__ import annotations

from typing import Mapping, Optional, Sequence, Tuple

from ..sampling.groups import GroupKey, project_key, projected_counts
from .allocation import Allocation, _validate

__all__ = ["Senate", "senate_share"]


def senate_share(
    counts: Mapping[GroupKey, int],
    grouping_columns: Sequence[str],
    target: Sequence[str],
    budget: float,
) -> dict:
    """Per-finest-group expected sizes ``s_{g,T}`` for grouping ``target``.

    This is Equation 4, reused by Basic Congress and Congress.
    """
    by_group = projected_counts(counts, grouping_columns, target)
    m_t = len(by_group)
    share = budget / m_t
    out = {}
    for key, n_g in counts.items():
        h = project_key(key, grouping_columns, target)
        out[key] = share * n_g / by_group[h]
    return out


class Senate:
    """Equal-per-group allocation -- the paper's *Senate*.

    Args:
        target: the grouping ``T`` to equalize over; ``None`` means the full
            set of grouping columns (the finest partitioning), which is how
            the paper's experiments configure Senate.
    """

    def __init__(self, target: Optional[Sequence[str]] = None):
        self._target: Optional[Tuple[str, ...]] = (
            tuple(target) if target is not None else None
        )

    @property
    def name(self) -> str:
        if self._target is None:
            return "senate"
        return "senate[" + ",".join(self._target) + "]"

    def allocate(
        self,
        counts: Mapping[GroupKey, int],
        grouping_columns: Sequence[str],
        budget: float,
    ) -> Allocation:
        _validate(counts, budget)
        target = (
            tuple(grouping_columns) if self._target is None else self._target
        )
        unknown = set(target) - set(grouping_columns)
        if unknown:
            raise ValueError(
                f"senate target columns {sorted(unknown)} not in grouping "
                f"columns {list(grouping_columns)}"
            )
        fractional = senate_share(counts, grouping_columns, target, budget)
        return Allocation(
            strategy=self.name,
            grouping_columns=tuple(grouping_columns),
            budget=budget,
            fractional=fractional,
            populations=dict(counts),
            pre_scaling=dict(fractional),
        )
