"""Allocation quality analysis: the congressional guarantee, quantified.

Section 4's objective is to maximize ``α`` -- the minimum *expected number
of sample tuples satisfying a predicate* over all answer groups (Eq. 3).
For a fixed grouping ``T`` the S1-optimal design samples each group ``h``
uniformly at rate ``(X / m_T) / n_h``; a predicate of selectivity ``q``
within ``h`` then catches ``q * X / m_T`` sample tuples in expectation.

A *biased* allocation samples each finest subgroup ``g ⊆ h`` at its own
rate ``r_g``.  An adversarial predicate concentrates on the lowest-rate
subgroup, so the worst-case expected catch (as ``q -> 0``) is governed by
``min_{g ⊆ h} r_g``.  We therefore score each (grouping, group) pair by::

    ratio(T, h) = min_{g ⊆ h} r_g  /  min(1, (X / m_T) / n_h)

-- the fraction of the S1-optimal worst-case catch the allocation actually
guarantees (the optimal rate is capped at 1: nobody can sample more than
everything).

This reproduces the paper's qualitative story *numerically*:

* Congress's overall worst ratio is >= its scale-down factor ``f``
  (Equation 5 guarantees ``r_g >= f * (X/m_T)/n_h`` for every ``T``);
* House collapses on small groups at fine groupings;
* Senate collapses on large groups at coarse groupings (its big-group
  rate is far below the uniform rate the no-group-by query wants).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

from ..sampling.groups import GroupKey, all_groupings, project_key
from .allocation import Allocation

__all__ = ["GroupingGuarantee", "GuaranteeReport", "guarantee_report"]


@dataclass(frozen=True)
class GroupingGuarantee:
    """Worst-case-predicate guarantee for one grouping ``T``."""

    grouping: Tuple[str, ...]
    num_groups: int
    worst_group: GroupKey
    optimal_rate: float   # min(1, (X/m_T) / n_h) for the worst group
    achieved_rate: float  # min subgroup sampling rate within that group
    worst_ratio: float    # achieved / optimal

    def describe(self) -> str:
        label = ",".join(self.grouping) or "(none)"
        return (
            f"T={label:24s} m_T={self.num_groups:6d} "
            f"optimal_rate={self.optimal_rate:8.5f} "
            f"achieved={self.achieved_rate:8.5f} "
            f"ratio={self.worst_ratio:.3f}"
        )


@dataclass(frozen=True)
class GuaranteeReport:
    """Per-grouping guarantees plus the overall minimum."""

    strategy: str
    per_grouping: Tuple[GroupingGuarantee, ...]

    @property
    def worst_ratio(self) -> float:
        """The allocation's effective guarantee over all groupings."""
        if not self.per_grouping:
            return 1.0
        return min(g.worst_ratio for g in self.per_grouping)

    def describe(self) -> str:
        lines = [f"guarantee report for {self.strategy}:"]
        lines.extend(g.describe() for g in self.per_grouping)
        lines.append(f"overall worst ratio: {self.worst_ratio:.3f}")
        return "\n".join(lines)


def guarantee_report(allocation: Allocation) -> GuaranteeReport:
    """Score an allocation's worst-case-predicate guarantee per grouping."""
    counts = allocation.populations
    grouping_columns = allocation.grouping_columns
    budget = allocation.budget

    # Per-finest-group sampling rates (capped at 1 -- the materialized
    # sample cannot take more than the population).
    rates: Dict[GroupKey, float] = {
        key: min(1.0, allocation.fractional.get(key, 0.0) / counts[key])
        for key in counts
    }

    guarantees = []
    for target in all_groupings(grouping_columns):
        group_pops: Dict[GroupKey, int] = {}
        group_min_rate: Dict[GroupKey, float] = {}
        for key, population in counts.items():
            coarse = project_key(key, grouping_columns, target)
            group_pops[coarse] = group_pops.get(coarse, 0) + population
            rate = rates[key]
            if coarse not in group_min_rate or rate < group_min_rate[coarse]:
                group_min_rate[coarse] = rate
        m_t = len(group_pops)

        worst_key: GroupKey = ()
        worst_ratio = float("inf")
        worst_optimal = 0.0
        worst_achieved = 0.0
        for coarse, population in group_pops.items():
            optimal_rate = min(1.0, (budget / m_t) / population)
            if optimal_rate <= 0:
                continue
            achieved = group_min_rate[coarse]
            ratio = min(achieved / optimal_rate, 1.0)
            if ratio < worst_ratio:
                worst_ratio = ratio
                worst_key = coarse
                worst_optimal = optimal_rate
                worst_achieved = achieved
        guarantees.append(
            GroupingGuarantee(
                grouping=tuple(target),
                num_groups=m_t,
                worst_group=worst_key,
                optimal_rate=worst_optimal,
                achieved_rate=worst_achieved,
                worst_ratio=worst_ratio if worst_ratio != float("inf") else 1.0,
            )
        )
    return GuaranteeReport(
        strategy=allocation.strategy, per_grouping=tuple(guarantees)
    )
