"""Basic Congress: the House/Senate hybrid of Section 4.5.

For each finest group ``g`` take the larger of its House and Senate
allocations, then scale the whole vector down so the total is the budget::

    c_g = X * max(n_g/|R|, 1/m_T) / sum_j max(n_j/|R|, 1/m_T)

where ``T`` is the Senate grouping (the full set ``G`` by default) and
``m_T`` its group count.  Basic Congress fixes both failure modes -- House
starves small groups, Senate starves large ones -- but only for the two
extreme groupings ``∅`` and ``T``; intermediate groupings are the reason for
full Congress.
"""

from __future__ import annotations

from typing import Mapping, Optional, Sequence, Tuple

from ..sampling.groups import GroupKey
from .allocation import Allocation, _validate
from .house import House
from .senate import Senate

__all__ = ["BasicCongress"]


class BasicCongress:
    """max(House, Senate) rescaled to the budget -- *Basic Congress*."""

    def __init__(self, target: Optional[Sequence[str]] = None):
        self._target: Optional[Tuple[str, ...]] = (
            tuple(target) if target is not None else None
        )

    @property
    def name(self) -> str:
        if self._target is None:
            return "basic_congress"
        return "basic_congress[" + ",".join(self._target) + "]"

    def allocate(
        self,
        counts: Mapping[GroupKey, int],
        grouping_columns: Sequence[str],
        budget: float,
    ) -> Allocation:
        _validate(counts, budget)
        house = House().allocate(counts, grouping_columns, budget)
        senate = Senate(self._target).allocate(counts, grouping_columns, budget)
        pre_scaling = {
            key: max(house.fractional[key], senate.fractional[key])
            for key in counts
        }
        total = sum(pre_scaling.values())
        factor = budget / total if total > 0 else 0.0
        fractional = {key: value * factor for key, value in pre_scaling.items()}
        return Allocation(
            strategy=self.name,
            grouping_columns=tuple(grouping_columns),
            budget=budget,
            fractional=fractional,
            populations=dict(counts),
            pre_scaling=pre_scaling,
        )
