"""Scale-down factor analysis (Section 4.6).

The Congress scale-down factor ``f`` (Equation 6) satisfies
``2^-|G| < f <= 1``:

* ``f = 1`` when tuples are uniformly distributed across the full cross
  product of grouping values (every grouping's S1 share coincides).
* ``f -> 2^-|G|`` under the paper's pathological distribution (Equation 7),
  in which for every grouping ``T`` the groups avoiding value 1 are utterly
  dominated by the single subgroup whose remaining attributes all equal 1.

This module builds that pathological distribution and computes ``f``
analytically from counts, so the bound can be checked empirically
(``benchmarks/bench_scaledown.py`` sweeps ``n`` and ``m``).
"""

from __future__ import annotations

from itertools import product
from typing import Dict, Mapping, Sequence

from ..sampling.groups import GroupKey
from .congress import Congress

__all__ = [
    "pathological_counts",
    "scale_down_factor",
    "scale_down_lower_bound",
    "uniform_cross_product_counts",
]


def pathological_counts(n: int, m: int) -> Dict[GroupKey, int]:
    """The Equation 7 distribution on ``n`` attributes with domain size ``m``.

    ``|(v_1, ..., v_n)| = (2m)^(2n * alpha)`` where ``alpha`` counts the
    attributes equal to 1.  All ``m^n`` groups are non-empty.

    Counts grow as ``(2m)^(2n^2)``; Python integers handle this exactly, but
    keep ``n`` and ``m`` small (the bound already shows at n=2, m=4).
    """
    if n < 1 or m < 2:
        raise ValueError(f"need n >= 1 and m >= 2, got n={n} m={m}")
    base = 2 * m
    counts: Dict[GroupKey, int] = {}
    for values in product(range(1, m + 1), repeat=n):
        alpha = sum(1 for v in values if v == 1)
        counts[values] = base ** (2 * n * alpha)
    return counts


def uniform_cross_product_counts(
    domain_sizes: Sequence[int], per_group: int = 100
) -> Dict[GroupKey, int]:
    """Every cross-product group has the same count -> ``f = 1``."""
    if any(size < 1 for size in domain_sizes):
        raise ValueError(f"domain sizes must be >= 1: {list(domain_sizes)}")
    counts: Dict[GroupKey, int] = {}
    for values in product(*(range(size) for size in domain_sizes)):
        counts[values] = per_group
    return counts


def scale_down_factor(
    counts: Mapping[GroupKey, int],
    grouping_columns: Sequence[str],
    budget: float = 1.0,
) -> float:
    """Compute Congress's ``f`` (Equation 6) for the given distribution.

    ``f`` is budget-invariant (both numerator and denominator scale with X),
    so the default budget of 1.0 is fine.
    """
    allocation = Congress().allocate(counts, grouping_columns, budget)
    return allocation.scale_down_factor


def scale_down_lower_bound(num_grouping_columns: int) -> float:
    """The asymptotic worst case ``2^-|G|``."""
    if num_grouping_columns < 0:
        raise ValueError("number of grouping columns must be >= 0")
    return 2.0 ** (-num_grouping_columns)


def pathological_factor_bound(n: int, m: int) -> float:
    """The paper's closed-form bound for the pathological distribution.

    ``f < (1 + (2m)^-n) * (2 - 1/m)^-n`` -- approaches ``2^-n`` as
    ``m -> ∞``.
    """
    return (1.0 + (2 * m) ** (-n)) * (2.0 - 1.0 / m) ** (-n)
