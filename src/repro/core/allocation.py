"""Allocation framework shared by House / Senate / Basic Congress / Congress.

An *allocation strategy* maps the finest-partition group counts ``n_g`` of a
relation and a space budget ``X`` (in tuples) to a fractional expected sample
size per finest group (Section 4 of the paper).  The fractional allocation is
wrapped in an :class:`Allocation`, which knows how to round itself to
integers and report its scale-down factor.

Strategies operate on plain count dictionaries so that the same code path
serves (a) direct construction from a table, (b) construction from a count
data cube, and (c) re-allocation during incremental maintenance.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Mapping, Optional, Protocol, Sequence, Tuple

from ..engine.table import Table
from ..sampling.groups import GroupKey, group_counts
from ..sampling.rounding import largest_remainder_round
from ..sampling.stratified import StratifiedSample

import numpy as np

__all__ = ["Allocation", "AllocationStrategy", "allocate_from_table", "build_sample"]


@dataclass(frozen=True)
class Allocation:
    """The result of running an allocation strategy.

    Attributes:
        strategy: name of the strategy that produced it.
        grouping_columns: the stratification columns ``G``.
        budget: the space budget ``X`` in tuples.
        fractional: expected sample size per finest group (sums to ~``X``
            unless the budget exceeds the population).
        populations: tuple count ``n_g`` per finest group.
        pre_scaling: the per-group targets *before* scaling down to ``X``
            (the "before scaling" columns of Figure 5); equals ``fractional``
            for strategies that need no scaling.
    """

    strategy: str
    grouping_columns: Tuple[str, ...]
    budget: float
    fractional: Dict[GroupKey, float]
    populations: Dict[GroupKey, int]
    pre_scaling: Dict[GroupKey, float] = field(default_factory=dict)

    def __post_init__(self) -> None:
        missing = set(self.fractional) - set(self.populations)
        if missing:
            raise ValueError(f"allocation for unknown groups: {sorted(missing)}")

    @property
    def total_fractional(self) -> float:
        return float(sum(self.fractional.values()))

    @property
    def scale_down_factor(self) -> float:
        """The ``f`` of Equation 6: budget over pre-scaling total (<= 1)."""
        pre = self.pre_scaling or self.fractional
        total = float(sum(pre.values()))
        if total == 0:
            return 1.0
        return min(1.0, self.budget / total)

    def rounded(self) -> Dict[GroupKey, int]:
        """Integer per-group sizes: largest-remainder, capped at ``n_g``.

        The integer total equals ``min(round(budget), total population)``.
        """
        target = min(int(round(self.budget)), sum(self.populations.values()))
        capped = {
            key: min(value, float(self.populations[key]))
            for key, value in self.fractional.items()
        }
        return largest_remainder_round(capped, total=target, caps=self.populations)

    def expected_size(self, key: GroupKey) -> float:
        return self.fractional.get(key, 0.0)


class AllocationStrategy(Protocol):
    """Protocol implemented by House, Senate, Basic Congress, Congress."""

    name: str

    def allocate(
        self,
        counts: Mapping[GroupKey, int],
        grouping_columns: Sequence[str],
        budget: float,
    ) -> Allocation:
        """Compute the fractional allocation for the given group counts."""
        ...


def _validate(counts: Mapping[GroupKey, int], budget: float) -> None:
    if budget < 0:
        raise ValueError(f"budget must be >= 0, got {budget}")
    if not counts:
        raise ValueError("cannot allocate over zero groups")
    negatives = [k for k, v in counts.items() if v < 0]
    if negatives:
        raise ValueError(f"negative group counts: {negatives}")
    zeros = [k for k, v in counts.items() if v == 0]
    if zeros:
        raise ValueError(
            f"empty groups are not part of the finest partition: {zeros}"
        )


def allocate_from_table(
    strategy: AllocationStrategy,
    table: Table,
    grouping_columns: Sequence[str],
    budget: float,
    scan=None,
) -> Allocation:
    """Convenience: compute group counts from ``table`` and allocate.

    ``scan`` optionally runs the counting pass partition-parallel (see
    :func:`repro.sampling.groups.group_counts`); the allocation itself is
    identical either way since merged integer counts are exact.
    """
    counts = group_counts(table, grouping_columns, scan=scan)
    return strategy.allocate(counts, grouping_columns, budget)


def build_sample(
    strategy: AllocationStrategy,
    table: Table,
    grouping_columns: Sequence[str],
    budget: float,
    rng: Optional[np.random.Generator] = None,
) -> StratifiedSample:
    """End-to-end: allocate and draw the stratified sample from ``table``."""
    allocation = allocate_from_table(strategy, table, grouping_columns, budget)
    return StratifiedSample.build(
        table, grouping_columns, allocation.rounded(), rng=rng
    )
