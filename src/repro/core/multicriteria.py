"""The multi-criteria weight-vector framework of Section 8.

Figure 19 of the paper shows the generalization of the Figure 5 allocation
table: each *criterion* contributes a **weight vector** -- one non-negative
weight per finest group -- describing how that criterion would like the
budget split.  The final allocation takes the per-group maximum across all
weight vectors and scales down to the budget, exactly as Congress does with
its per-grouping ``s_{g,T}`` columns.

Provided criteria:

* :class:`GroupingCriterion` -- wraps one grouping ``T`` (the columns of
  Figure 5); House is ``GroupingCriterion(())``, Senate on ``G`` is
  ``GroupingCriterion(G)``.
* :class:`VarianceCriterion` -- allocates proportionally to per-group
  ``n_g * S_g`` (population times standard deviation of an aggregate
  column), the Neyman-style refinement the paper sketches ("the use of the
  variance of values within the group can be expected to further improve
  the sample accuracy").
* :class:`RangeBiasCriterion` -- the "recent data matters more" extension:
  weights groups by a user function of a (typically temporal) column's group
  value, e.g. exponential decay with age.

All criteria emit plain weight vectors, so applications can add their own.
"""

from __future__ import annotations

from typing import Callable, Dict, Mapping, Sequence

import numpy as np

from ..engine.table import Table
from ..sampling.groups import GroupKey, finest_group_ids, project_key
from .allocation import Allocation, _validate
from .senate import senate_share

__all__ = [
    "WeightVector",
    "Criterion",
    "GroupingCriterion",
    "VarianceCriterion",
    "RangeBiasCriterion",
    "MultiCriteriaCongress",
]

# A weight vector assigns each finest group a non-negative share of the
# budget; shares are normalized internally so only ratios matter.
WeightVector = Dict[GroupKey, float]


class Criterion:
    """Base: produce a weight vector for the finest groups."""

    name = "criterion"

    def weight_vector(
        self,
        counts: Mapping[GroupKey, int],
        grouping_columns: Sequence[str],
        budget: float,
    ) -> WeightVector:
        raise NotImplementedError


class GroupingCriterion(Criterion):
    """The S1 share of one grouping ``T`` -- a column of Figure 5."""

    def __init__(self, target: Sequence[str]):
        self._target = tuple(target)
        self.name = "grouping[" + (",".join(self._target) or "-") + "]"

    def weight_vector(
        self,
        counts: Mapping[GroupKey, int],
        grouping_columns: Sequence[str],
        budget: float,
    ) -> WeightVector:
        return senate_share(counts, grouping_columns, self._target, budget)


class VarianceCriterion(Criterion):
    """Allocate ∝ ``n_g * S_g`` (Neyman allocation) for an aggregate column.

    Groups with higher within-group variance receive more space; uniform
    groups need less (the paper's example of two same-size groups with very
    different spreads).  Requires the base table to compute ``S_g``.
    """

    def __init__(self, table: Table, aggregate_column: str):
        self._table = table
        self._column = aggregate_column
        self.name = f"variance[{aggregate_column}]"

    def weight_vector(
        self,
        counts: Mapping[GroupKey, int],
        grouping_columns: Sequence[str],
        budget: float,
    ) -> WeightVector:
        ids, keys = finest_group_ids(self._table, grouping_columns)
        values = np.asarray(self._table.column(self._column), dtype=np.float64)
        num_groups = len(keys)
        count = np.bincount(ids, minlength=num_groups).astype(np.float64)
        sums = np.bincount(ids, weights=values, minlength=num_groups)
        sumsq = np.bincount(ids, weights=values * values, minlength=num_groups)
        means = np.where(count > 0, sums / np.maximum(count, 1.0), 0.0)
        variance = np.zeros(num_groups)
        multi = count > 1
        variance[multi] = np.maximum(
            sumsq[multi] - count[multi] * means[multi] ** 2, 0.0
        ) / (count[multi] - 1.0)
        stddev = np.sqrt(variance)
        neyman = count * stddev
        total = float(neyman.sum())
        if total <= 0:
            # Degenerate: all groups constant; fall back to uniform shares.
            return {key: budget / num_groups for key in keys}
        vector: WeightVector = {}
        for gid, key in enumerate(keys):
            if key not in counts:
                continue
            vector[key] = budget * float(neyman[gid]) / total
        # Groups present in counts but absent from the table get no weight
        # from this criterion (another criterion must cover them).
        for key in counts:
            vector.setdefault(key, 0.0)
        return vector


class RangeBiasCriterion(Criterion):
    """Weight groups by a function of one grouping column's value.

    The Section 8 "recency" example: replace grouping values by ranges and
    weight recent ranges higher.  ``weight_fn`` maps the group's value of
    ``column`` to a non-negative weight; within equal-weight groups space is
    proportional to population.
    """

    def __init__(self, column: str, weight_fn: Callable[[object], float]):
        self._column = column
        self._weight_fn = weight_fn
        self.name = f"range_bias[{column}]"

    def weight_vector(
        self,
        counts: Mapping[GroupKey, int],
        grouping_columns: Sequence[str],
        budget: float,
    ) -> WeightVector:
        if self._column not in grouping_columns:
            raise ValueError(
                f"{self._column!r} is not a grouping column "
                f"({list(grouping_columns)})"
            )
        raw: Dict[GroupKey, float] = {}
        for key, n_g in counts.items():
            (value,) = project_key(key, grouping_columns, [self._column])
            weight = float(self._weight_fn(value))
            if weight < 0:
                raise ValueError(
                    f"weight_fn returned negative weight {weight} for {value!r}"
                )
            raw[key] = weight * n_g
        total = sum(raw.values())
        if total <= 0:
            return {key: 0.0 for key in counts}
        return {key: budget * value / total for key, value in raw.items()}


class MultiCriteriaCongress:
    """Max over arbitrary weight vectors, rescaled to the budget.

    This is the Figure 19 framework: Congress itself is the special case
    whose criteria are ``GroupingCriterion(T)`` for all ``T ⊆ G``.
    """

    def __init__(self, criteria: Sequence[Criterion]):
        if not criteria:
            raise ValueError("at least one criterion is required")
        self._criteria = list(criteria)

    @property
    def name(self) -> str:
        return "multi[" + ";".join(c.name for c in self._criteria) + "]"

    def weight_table(
        self,
        counts: Mapping[GroupKey, int],
        grouping_columns: Sequence[str],
        budget: float,
    ) -> Dict[str, WeightVector]:
        """All weight vectors, keyed by criterion name (Figure 19's columns)."""
        return {
            criterion.name: criterion.weight_vector(
                counts, grouping_columns, budget
            )
            for criterion in self._criteria
        }

    def allocate(
        self,
        counts: Mapping[GroupKey, int],
        grouping_columns: Sequence[str],
        budget: float,
    ) -> Allocation:
        _validate(counts, budget)
        table = self.weight_table(counts, grouping_columns, budget)
        pre_scaling = {
            key: max(vector.get(key, 0.0) for vector in table.values())
            for key in counts
        }
        total = sum(pre_scaling.values())
        factor = budget / total if total > 0 else 0.0
        fractional = {key: value * factor for key, value in pre_scaling.items()}
        return Allocation(
            strategy=self.name,
            grouping_columns=tuple(grouping_columns),
            budget=budget,
            fractional=fractional,
            populations=dict(counts),
            pre_scaling=pre_scaling,
        )
