"""Congress allocation: Equations 4-6 of the paper (Section 4.6).

Congress considers *every* grouping ``T ⊆ G``.  For each grouping it
computes the per-finest-group share ``s_{g,T}`` that strategy S1 would
assign (Equation 4), takes the per-group maximum over all groupings, and
scales the result down to the budget::

    SampleSize(g) = X * max_{T ⊆ G} s_{g,T} / sum_{j ∈ 𝒢} max_{T ⊆ G} s_{j,T}

The scale-down factor ``f = X / sum_j max_T s_{j,T}`` (Equation 6) lies in
``(2^-|G|, 1]`` and guarantees every group, under every grouping, receives at
least ``f`` times its S1-optimal share.

The intermediate ``s_{g,T}`` table (Figure 5 of the paper) is exposed via
:meth:`Congress.share_table` -- it is also the "weight vector" input of the
multi-criteria extension (Section 8, see :mod:`repro.core.multicriteria`).
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from ..sampling.groups import GroupKey, all_groupings
from .allocation import Allocation, _validate
from .senate import senate_share

__all__ = ["Congress", "congress_share_table"]


def congress_share_table(
    counts: Mapping[GroupKey, int],
    grouping_columns: Sequence[str],
    budget: float,
    groupings: Optional[Sequence[Tuple[str, ...]]] = None,
) -> Dict[Tuple[str, ...], Dict[GroupKey, float]]:
    """The full ``s_{g,T}`` table: grouping -> finest group -> share.

    Args:
        counts: finest-partition group counts ``n_g``.
        grouping_columns: the full grouping set ``G``.
        budget: space budget ``X``.
        groupings: which groupings ``T`` to include; defaults to the entire
            power set of ``G`` (full Congress).  Passing a subset yields the
            "specialized" congressional samples of Section 4.7's framework
            (e.g. ``[(), G]`` reproduces Basic Congress's inputs).
    """
    if groupings is None:
        groupings = all_groupings(grouping_columns)
    table: Dict[Tuple[str, ...], Dict[GroupKey, float]] = {}
    for target in groupings:
        table[tuple(target)] = senate_share(
            counts, grouping_columns, target, budget
        )
    return table


class Congress:
    """Max-over-all-groupings allocation -- the paper's *Congress*.

    Args:
        groupings: optional restriction of the groupings considered (all
            subsets of ``G`` by default).  The paper's Congress uses the full
            power set; restricted variants let applications that only ever
            group by certain column subsets reclaim space.
    """

    def __init__(self, groupings: Optional[Sequence[Sequence[str]]] = None):
        self._groupings: Optional[List[Tuple[str, ...]]] = (
            [tuple(t) for t in groupings] if groupings is not None else None
        )

    @property
    def name(self) -> str:
        if self._groupings is None:
            return "congress"
        inner = ";".join(",".join(t) or "-" for t in self._groupings)
        return f"congress[{inner}]"

    def share_table(
        self,
        counts: Mapping[GroupKey, int],
        grouping_columns: Sequence[str],
        budget: float,
    ) -> Dict[Tuple[str, ...], Dict[GroupKey, float]]:
        """Expose the ``s_{g,T}`` table for inspection (Figure 5)."""
        return congress_share_table(
            counts, grouping_columns, budget, self._groupings
        )

    def allocate(
        self,
        counts: Mapping[GroupKey, int],
        grouping_columns: Sequence[str],
        budget: float,
    ) -> Allocation:
        _validate(counts, budget)
        if self._groupings is not None:
            unknown = {
                column
                for target in self._groupings
                for column in target
                if column not in grouping_columns
            }
            if unknown:
                raise ValueError(
                    f"grouping columns {sorted(unknown)} not in "
                    f"{list(grouping_columns)}"
                )
        shares = self.share_table(counts, grouping_columns, budget)
        pre_scaling = {
            key: max(shares[target][key] for target in shares)
            for key in counts
        }
        total = sum(pre_scaling.values())
        factor = budget / total if total > 0 else 0.0
        fractional = {key: value * factor for key, value in pre_scaling.items()}
        return Allocation(
            strategy=self.name,
            grouping_columns=tuple(grouping_columns),
            budget=budget,
            fractional=fractional,
            populations=dict(counts),
            pre_scaling=pre_scaling,
        )
