"""House allocation: a uniform random sample of the whole relation.

Section 4.3 of the paper.  Applying strategy S1 to the class of queries with
*no* group-bys yields a single group -- the entire relation -- so the optimal
precomputed sample is the classic uniform random sample of size ``X``.
Expressed per finest group ``g``, the expected sample size is proportional to
the group's population::

    s_{g,∅} = X * n_g / |R|

House is the baseline that congressional samples generalize: excellent for
highly-selective-free aggregate queries over the whole table, poor for small
groups in skewed group-by queries.
"""

from __future__ import annotations

from typing import Mapping, Sequence

from ..sampling.groups import GroupKey
from .allocation import Allocation, _validate

__all__ = ["House"]


class House:
    """Uniform (proportional) allocation -- the paper's *House*."""

    name = "house"

    def allocate(
        self,
        counts: Mapping[GroupKey, int],
        grouping_columns: Sequence[str],
        budget: float,
    ) -> Allocation:
        _validate(counts, budget)
        total = sum(counts.values())
        fractional = {
            key: budget * n_g / total for key, n_g in counts.items()
        }
        return Allocation(
            strategy=self.name,
            grouping_columns=tuple(grouping_columns),
            budget=budget,
            fractional=fractional,
            populations=dict(counts),
            pre_scaling=dict(fractional),
        )
