"""The paper's primary contribution: sample allocation strategies.

``House`` (uniform), ``Senate`` (equal per group), ``BasicCongress``
(max of the two, rescaled), ``Congress`` (max over all groupings,
Equations 4-6), plus the workload-weighted (Section 4.7) and multi-criteria
(Section 8) generalizations.
"""

from .analysis import GroupingGuarantee, GuaranteeReport, guarantee_report
from .allocation import (
    Allocation,
    AllocationStrategy,
    allocate_from_table,
    build_sample,
)
from .basic_congress import BasicCongress
from .congress import Congress, congress_share_table
from .house import House
from .multicriteria import (
    Criterion,
    GroupingCriterion,
    MultiCriteriaCongress,
    RangeBiasCriterion,
    VarianceCriterion,
    WeightVector,
)
from .scaledown import (
    pathological_counts,
    pathological_factor_bound,
    scale_down_factor,
    scale_down_lower_bound,
    uniform_cross_product_counts,
)
from .senate import Senate, senate_share
from .workload import GroupPreferences, WorkloadCongress

__all__ = [
    "Allocation",
    "AllocationStrategy",
    "BasicCongress",
    "Congress",
    "Criterion",
    "GroupPreferences",
    "GroupingCriterion",
    "GroupingGuarantee",
    "GuaranteeReport",
    "House",
    "MultiCriteriaCongress",
    "RangeBiasCriterion",
    "Senate",
    "VarianceCriterion",
    "WeightVector",
    "WorkloadCongress",
    "allocate_from_table",
    "build_sample",
    "congress_share_table",
    "guarantee_report",
    "pathological_counts",
    "pathological_factor_bound",
    "scale_down_factor",
    "scale_down_lower_bound",
    "senate_share",
    "uniform_cross_product_counts",
]
