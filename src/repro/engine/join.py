"""Hash equi-join.

The engine needs joins for two reasons from the paper: the *Normalized* and
*Key-normalized* rewriting strategies join the sample relation with the
auxiliary scale-factor relation (Section 5.2, Figures 9-10), and join
synopses conceptually join the fact table with its dimension tables
(Section 2).
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

import numpy as np

from .schema import Column, Schema, SchemaError
from .table import Table

__all__ = ["hash_join"]


def _key_tuples(table: Table, columns: Sequence[str]) -> List[Tuple]:
    arrays = [table.column(name) for name in columns]
    return list(zip(*(arr.tolist() for arr in arrays))) if arrays else []


def hash_join(
    left: Table,
    right: Table,
    left_on: Sequence[str],
    right_on: Sequence[str],
    suffix: str = "_r",
) -> Table:
    """Inner hash join of ``left`` and ``right`` on equality of key columns.

    Builds a hash table on the smaller input.  Right-side columns whose names
    collide with left-side names are renamed with ``suffix`` (the join keys
    from the right side are dropped, since they equal the left keys).

    Returns a table containing all left columns plus non-key right columns.
    """
    if len(left_on) != len(right_on) or not left_on:
        raise SchemaError(
            f"join keys mismatch: left_on={list(left_on)} right_on={list(right_on)}"
        )
    for name in left_on:
        left.schema.column(name)
    for name in right_on:
        right.schema.column(name)

    # Build side: index right rows by key tuple.
    index: Dict[Tuple, List[int]] = {}
    for i, key in enumerate(_key_tuples(right, right_on)):
        index.setdefault(key, []).append(i)

    left_idx: List[int] = []
    right_idx: List[int] = []
    for i, key in enumerate(_key_tuples(left, left_on)):
        matches = index.get(key)
        if matches:
            left_idx.extend([i] * len(matches))
            right_idx.extend(matches)

    left_take = left.take(np.asarray(left_idx, dtype=np.int64))
    right_take = right.take(np.asarray(right_idx, dtype=np.int64))

    out_columns = dict(left_take.columns())
    out_schema_cols = list(left_take.schema.columns)
    right_key_set = set(right_on)
    left_names = set(left.schema.names)
    for column in right_take.schema:
        if column.name in right_key_set:
            continue
        out_name = column.name
        if out_name in left_names:
            out_name = out_name + suffix
            if out_name in left_names:
                raise SchemaError(
                    f"suffixed column {out_name!r} still collides with left schema"
                )
        out_schema_cols.append(Column(out_name, column.ctype, column.role))
        out_columns[out_name] = right_take.column(column.name)

    return Table(Schema(out_schema_cols), out_columns)
