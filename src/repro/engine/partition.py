"""Table partitioning for parallel scans.

A :class:`Partitioner` splits a :class:`~repro.engine.table.Table` into K
disjoint partitions whose union is the input.  Two modes:

* ``"range"`` (default): contiguous row ranges.  Zero-copy -- each partition
  is a numpy *view* of the parent columns (see :meth:`Table.slice`) -- and
  order-preserving, which the parallel sample-construction path relies on to
  reproduce the serial scan bit-for-bit.
* ``"hash"``: rows are routed by a hash of the given columns, so every
  group's rows land in exactly one partition.  Costs one pass of hashing and
  a copy per partition; useful when downstream work is per-group.

Partition-parallel execution over these splits is performed by
:class:`~repro.engine.executor.ParallelExecutor`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from .table import Table

__all__ = ["Partition", "Partitioner"]


@dataclass(frozen=True)
class Partition:
    """One split of a table: the rows plus where they came from.

    Attributes:
        table: the partition's rows.
        index: position of this partition in the split (``0..k-1``).
        row_offset: for range partitions, the parent-table index of the
            partition's first row (``-1`` for hash partitions, whose rows
            are not contiguous in the parent).
    """

    table: Table
    index: int
    row_offset: int = -1

    @property
    def num_rows(self) -> int:
        return self.table.num_rows


class Partitioner:
    """Splits tables into K disjoint, exhaustive partitions.

    Args:
        mode: ``"range"`` (contiguous row ranges, zero-copy) or ``"hash"``
            (hash routing on ``hash_columns``).
        hash_columns: required for ``"hash"`` mode; ignored otherwise.
    """

    def __init__(
        self,
        mode: str = "range",
        hash_columns: Optional[Sequence[str]] = None,
    ):
        if mode not in ("range", "hash"):
            raise ValueError(f"partition mode must be range or hash, got {mode!r}")
        if mode == "hash" and not hash_columns:
            raise ValueError("hash partitioning requires hash_columns")
        self.mode = mode
        self.hash_columns = tuple(hash_columns or ())

    def split(self, table: Table, k: int) -> List[Partition]:
        """Split ``table`` into at most ``k`` non-empty partitions.

        Fewer than ``k`` partitions are returned when the table has fewer
        than ``k`` rows (range mode never emits an empty partition; hash
        mode drops empty buckets).  An empty table yields a single empty
        range partition so callers always have something to scan.
        """
        if k < 1:
            raise ValueError(f"partition count must be >= 1, got {k}")
        if self.mode == "hash":
            return self._split_hash(table, k)
        return self._split_range(table, k)

    def _split_range(self, table: Table, k: int) -> List[Partition]:
        rows = table.num_rows
        if rows == 0:
            return [Partition(table, 0, 0)]
        k = min(k, rows)
        # Even split: the first (rows % k) partitions get one extra row.
        bounds = np.linspace(0, rows, k + 1).astype(np.int64)
        return [
            Partition(table.slice(int(start), int(stop)), i, int(start))
            for i, (start, stop) in enumerate(zip(bounds[:-1], bounds[1:]))
        ]

    def _split_hash(self, table: Table, k: int) -> List[Partition]:
        if table.num_rows == 0:
            return [Partition(table, 0, 0)]
        buckets = np.zeros(table.num_rows, dtype=np.int64)
        for name in self.hash_columns:
            values = table.column(name)
            # Stable per-column hashing: factorize to dense codes first so
            # string columns hash cheaply and reproducibly.
            _, codes = np.unique(values, return_inverse=True)
            buckets = buckets * 1000003 + codes
        buckets = buckets % k
        out = []
        for i in range(k):
            mask = buckets == i
            if not mask.any():
                continue
            out.append(Partition(table.filter(mask), len(out)))
        return out
