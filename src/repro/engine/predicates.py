"""Boolean predicate AST with vectorized numpy evaluation.

Predicates evaluate against a table to a boolean mask.  They model the WHERE
clauses of the paper's workloads: range predicates on ``l_id`` (query set
``Q_g0``), date cutoffs (TPC-D Q1), and conjunctions thereof.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Sequence, Tuple, Union

import numpy as np

from .expressions import Expression, ExpressionLike, _wrap
from .table import Table

__all__ = [
    "Predicate",
    "Comparison",
    "Between",
    "InList",
    "And",
    "Or",
    "Not",
    "TruePredicate",
]


class Predicate:
    """Base class for boolean row predicates."""

    def evaluate(self, table: Table) -> np.ndarray:
        """Return a boolean mask with one entry per row."""
        raise NotImplementedError

    def referenced_columns(self) -> Tuple[str, ...]:
        raise NotImplementedError

    def __and__(self, other: "Predicate") -> "And":
        return And(self, other)

    def __or__(self, other: "Predicate") -> "Or":
        return Or(self, other)

    def __invert__(self) -> "Not":
        return Not(self)


_COMPARATORS: Dict[str, Callable[[np.ndarray, np.ndarray], np.ndarray]] = {
    "=": np.equal,
    "!=": np.not_equal,
    "<": np.less,
    "<=": np.less_equal,
    ">": np.greater,
    ">=": np.greater_equal,
}


@dataclass(frozen=True)
class Comparison(Predicate):
    """``left <op> right`` for op in =, !=, <, <=, >, >=."""

    op: str
    left: Expression
    right: Expression

    def __post_init__(self) -> None:
        if self.op not in _COMPARATORS:
            raise ValueError(f"unsupported comparator {self.op!r}")

    @classmethod
    def of(cls, left: ExpressionLike, op: str, right: ExpressionLike) -> "Comparison":
        return cls(op, _wrap(left), _wrap(right))

    def evaluate(self, table: Table) -> np.ndarray:
        return _COMPARATORS[self.op](
            self.left.evaluate(table), self.right.evaluate(table)
        )

    def referenced_columns(self) -> Tuple[str, ...]:
        return _merge(self.left.referenced_columns(), self.right.referenced_columns())

    def __repr__(self) -> str:
        return f"({self.left!r} {self.op} {self.right!r})"


@dataclass(frozen=True)
class Between(Predicate):
    """``low <= expr <= high`` (SQL BETWEEN semantics, inclusive)."""

    expr: Expression
    low: Expression
    high: Expression

    @classmethod
    def of(
        cls, expr: ExpressionLike, low: ExpressionLike, high: ExpressionLike
    ) -> "Between":
        return cls(_wrap(expr), _wrap(low), _wrap(high))

    def evaluate(self, table: Table) -> np.ndarray:
        values = self.expr.evaluate(table)
        return (values >= self.low.evaluate(table)) & (
            values <= self.high.evaluate(table)
        )

    def referenced_columns(self) -> Tuple[str, ...]:
        return _merge(
            self.expr.referenced_columns(),
            self.low.referenced_columns(),
            self.high.referenced_columns(),
        )


@dataclass(frozen=True)
class InList(Predicate):
    """``expr IN (v1, v2, ...)``."""

    expr: Expression
    values: Tuple[Union[int, float, str], ...]

    @classmethod
    def of(cls, expr: ExpressionLike, values: Sequence) -> "InList":
        return cls(_wrap(expr), tuple(values))

    def evaluate(self, table: Table) -> np.ndarray:
        column = self.expr.evaluate(table)
        return np.isin(column, np.asarray(self.values))

    def referenced_columns(self) -> Tuple[str, ...]:
        return self.expr.referenced_columns()


@dataclass(frozen=True)
class And(Predicate):
    left: Predicate
    right: Predicate

    def evaluate(self, table: Table) -> np.ndarray:
        return self.left.evaluate(table) & self.right.evaluate(table)

    def referenced_columns(self) -> Tuple[str, ...]:
        return _merge(self.left.referenced_columns(), self.right.referenced_columns())

    def __repr__(self) -> str:
        return f"({self.left!r} AND {self.right!r})"


@dataclass(frozen=True)
class Or(Predicate):
    left: Predicate
    right: Predicate

    def evaluate(self, table: Table) -> np.ndarray:
        return self.left.evaluate(table) | self.right.evaluate(table)

    def referenced_columns(self) -> Tuple[str, ...]:
        return _merge(self.left.referenced_columns(), self.right.referenced_columns())

    def __repr__(self) -> str:
        return f"({self.left!r} OR {self.right!r})"


@dataclass(frozen=True)
class Not(Predicate):
    operand: Predicate

    def evaluate(self, table: Table) -> np.ndarray:
        return ~self.operand.evaluate(table)

    def referenced_columns(self) -> Tuple[str, ...]:
        return self.operand.referenced_columns()


@dataclass(frozen=True)
class TruePredicate(Predicate):
    """Matches every row; the implicit WHERE clause of a query without one."""

    def evaluate(self, table: Table) -> np.ndarray:
        return np.ones(table.num_rows, dtype=bool)

    def referenced_columns(self) -> Tuple[str, ...]:
        return ()


def _merge(*groups: Tuple[str, ...]) -> Tuple[str, ...]:
    seen = []
    for group in groups:
        for name in group:
            if name not in seen:
                seen.append(name)
    return tuple(seen)
