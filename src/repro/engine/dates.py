"""Date literal parsing for DATE columns.

DATE columns store day ordinals (days since 1970-01-01).  The paper's
queries compare dates against literals like ``'01-SEP-98'`` (TPC-D /
Oracle style) -- the ``date(...)`` scalar function turns such literals
into ordinals so they compare correctly against DATE columns::

    SELECT ... FROM lineitem WHERE l_shipdate <= date('01-SEP-98')

Accepted formats: ISO (``1998-09-01``) and Oracle-style ``DD-MON-YY`` /
``DD-MON-YYYY`` (``01-SEP-98``), case-insensitive.  Two-digit years map to
1970-2069, matching TPC-D's 1990s data.
"""

from __future__ import annotations

import datetime as _dt
import re
from typing import Union

import numpy as np

__all__ = ["parse_date", "date_to_ordinal", "ordinal_to_date", "format_date"]

_EPOCH = _dt.date(1970, 1, 1)

_MONTHS = {
    "JAN": 1, "FEB": 2, "MAR": 3, "APR": 4, "MAY": 5, "JUN": 6,
    "JUL": 7, "AUG": 8, "SEP": 9, "OCT": 10, "NOV": 11, "DEC": 12,
}

_ISO_RE = re.compile(r"^(\d{4})-(\d{1,2})-(\d{1,2})$")
_ORACLE_RE = re.compile(r"^(\d{1,2})-([A-Za-z]{3})-(\d{2}|\d{4})$")


def parse_date(text: str) -> _dt.date:
    """Parse an ISO or Oracle-style date literal."""
    match = _ISO_RE.match(text.strip())
    if match:
        year, month, day = (int(g) for g in match.groups())
        return _dt.date(year, month, day)
    match = _ORACLE_RE.match(text.strip())
    if match:
        day = int(match.group(1))
        month_name = match.group(2).upper()
        if month_name not in _MONTHS:
            raise ValueError(f"unknown month {month_name!r} in date {text!r}")
        year = int(match.group(3))
        if year < 100:
            year += 1900 if year >= 70 else 2000
        return _dt.date(year, _MONTHS[month_name], day)
    raise ValueError(
        f"cannot parse date {text!r}; use 'YYYY-MM-DD' or 'DD-MON-YY'"
    )


def date_to_ordinal(value: Union[str, _dt.date]) -> int:
    """Convert a date (or date literal) to days since 1970-01-01."""
    if isinstance(value, str):
        value = parse_date(value)
    return (value - _EPOCH).days


def ordinal_to_date(ordinal: int) -> _dt.date:
    """Inverse of :func:`date_to_ordinal`."""
    return _EPOCH + _dt.timedelta(days=int(ordinal))


def format_date(ordinal: int) -> str:
    """Render a day ordinal as ISO text."""
    return ordinal_to_date(ordinal).isoformat()


def date_function(values: np.ndarray) -> np.ndarray:
    """Vectorized ``date(...)`` scalar function for the expression engine.

    String inputs are parsed as date literals; numeric inputs pass through
    (already ordinals).
    """
    arr = np.asarray(values)
    if arr.dtype.kind in ("i", "u", "f"):
        return arr.astype(np.int64)
    flat = [date_to_ordinal(str(v)) for v in arr.ravel()]
    return np.array(flat, dtype=np.int64).reshape(arr.shape)
