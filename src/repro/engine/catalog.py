"""Named-table registry.

The catalog plays the role of the back-end DBMS's table namespace in the
Aqua architecture (Figure 1 of the paper): base relations and synopsis
relations (``bs_lineitem`` etc.) live side by side and queries resolve table
names against it.
"""

from __future__ import annotations

from typing import Dict, Iterator, List

from .table import Table

__all__ = ["Catalog", "CatalogError"]


class CatalogError(KeyError):
    """Raised when a table name cannot be resolved or is already taken."""


class Catalog:
    """A mutable mapping of table names to :class:`Table` objects."""

    def __init__(self) -> None:
        self._tables: Dict[str, Table] = {}

    def register(self, name: str, table: Table, replace: bool = False) -> None:
        """Register ``table`` under ``name``.

        Args:
            name: table name; must be new unless ``replace`` is set.
            table: the table to register.
            replace: allow overwriting an existing entry (used by synopsis
                maintenance, which re-materializes sample relations).
        """
        if not replace and name in self._tables:
            raise CatalogError(f"table {name!r} already registered")
        self._tables[name] = table

    def drop(self, name: str) -> None:
        """Remove a table; raises :class:`CatalogError` if absent."""
        if name not in self._tables:
            raise CatalogError(f"table {name!r} not registered")
        del self._tables[name]

    def get(self, name: str) -> Table:
        """Look up a table by name."""
        try:
            return self._tables[name]
        except KeyError:
            raise CatalogError(
                f"unknown table {name!r}; registered: {sorted(self._tables)}"
            ) from None

    def __contains__(self, name: object) -> bool:
        return name in self._tables

    def __iter__(self) -> Iterator[str]:
        return iter(self._tables)

    def names(self) -> List[str]:
        return sorted(self._tables)
