"""Typed schema metadata for the column-store engine.

A :class:`Schema` is an ordered collection of :class:`Column` definitions.
Column types are deliberately minimal -- the engine only needs to know how to
coerce Python/numpy values into a homogeneous numpy array and whether a column
may be used for grouping, aggregation, or both.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Iterable, Iterator, List, Optional, Sequence, Tuple

import numpy as np

__all__ = ["ColumnType", "Column", "Schema", "SchemaError"]


class SchemaError(ValueError):
    """Raised for schema violations: unknown columns, duplicates, bad types."""


class ColumnType(enum.Enum):
    """Logical column types supported by the engine.

    The mapping to numpy dtypes is:

    * ``INT``    -> ``int64``
    * ``FLOAT``  -> ``float64``
    * ``STR``    -> numpy unicode (``<U``), width chosen at build time
    * ``DATE``   -> ``int64`` day ordinal (stored as days since epoch)
    """

    INT = "int"
    FLOAT = "float"
    STR = "str"
    DATE = "date"

    @property
    def numpy_dtype(self) -> np.dtype:
        """Return the canonical numpy dtype used to store this type."""
        if self in (ColumnType.INT, ColumnType.DATE):
            return np.dtype(np.int64)
        if self is ColumnType.FLOAT:
            return np.dtype(np.float64)
        return np.dtype("U")

    @property
    def is_numeric(self) -> bool:
        """Whether values of this type can be aggregated arithmetically."""
        return self in (ColumnType.INT, ColumnType.FLOAT, ColumnType.DATE)

    def coerce(self, values: Sequence) -> np.ndarray:
        """Coerce ``values`` into a numpy array of this type.

        Raises :class:`SchemaError` if the coercion is not possible.
        """
        try:
            if self in (ColumnType.INT, ColumnType.DATE):
                arr = np.asarray(values)
                if arr.dtype.kind == "f":
                    rounded = np.rint(arr)
                    if not np.allclose(arr, rounded, atol=1e-9, equal_nan=False):
                        raise SchemaError(
                            f"cannot coerce non-integral floats to {self.value}"
                        )
                    arr = rounded
                return arr.astype(np.int64)
            if self is ColumnType.FLOAT:
                return np.asarray(values, dtype=np.float64)
            return np.asarray(values, dtype=np.str_)
        except (TypeError, ValueError) as exc:
            raise SchemaError(f"cannot coerce values to {self.value}: {exc}") from exc


@dataclass(frozen=True)
class Column:
    """A named, typed column definition.

    Attributes:
        name: column name; must be a valid identifier-ish string.
        ctype: logical :class:`ColumnType`.
        role: optional informational role -- ``"key"``, ``"grouping"``,
            or ``"aggregate"``.  The engine does not enforce roles; they
            document intent (the paper's *dimensional* vs. *measured*
            attributes) and are consulted by the Aqua layer when it decides
            which columns participate in congressional stratification.
    """

    name: str
    ctype: ColumnType
    role: Optional[str] = None

    def __post_init__(self) -> None:
        if not self.name or not isinstance(self.name, str):
            raise SchemaError(f"invalid column name: {self.name!r}")
        if self.role is not None and self.role not in ("key", "grouping", "aggregate"):
            raise SchemaError(f"invalid column role: {self.role!r}")


class Schema:
    """An ordered, immutable collection of :class:`Column` objects."""

    def __init__(self, columns: Iterable[Column]):
        cols = list(columns)
        names = [c.name for c in cols]
        if len(set(names)) != len(names):
            dupes = sorted({n for n in names if names.count(n) > 1})
            raise SchemaError(f"duplicate column names: {dupes}")
        self._columns: Tuple[Column, ...] = tuple(cols)
        self._index = {c.name: i for i, c in enumerate(cols)}

    @classmethod
    def of(cls, *pairs: Tuple[str, ColumnType]) -> "Schema":
        """Build a schema from ``(name, type)`` pairs.

        >>> Schema.of(("a", ColumnType.INT), ("b", ColumnType.FLOAT)).names
        ['a', 'b']
        """
        return cls(Column(name, ctype) for name, ctype in pairs)

    @property
    def columns(self) -> Tuple[Column, ...]:
        return self._columns

    @property
    def names(self) -> List[str]:
        return [c.name for c in self._columns]

    def __len__(self) -> int:
        return len(self._columns)

    def __iter__(self) -> Iterator[Column]:
        return iter(self._columns)

    def __contains__(self, name: object) -> bool:
        return name in self._index

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Schema):
            return NotImplemented
        return self._columns == other._columns

    def __hash__(self) -> int:
        return hash(self._columns)

    def __repr__(self) -> str:
        inner = ", ".join(f"{c.name}:{c.ctype.value}" for c in self._columns)
        return f"Schema({inner})"

    def column(self, name: str) -> Column:
        """Return the column definition for ``name``.

        Raises :class:`SchemaError` for unknown names.
        """
        try:
            return self._columns[self._index[name]]
        except KeyError:
            raise SchemaError(
                f"unknown column {name!r}; schema has {self.names}"
            ) from None

    def position(self, name: str) -> int:
        """Return the ordinal position of ``name`` in the schema."""
        self.column(name)
        return self._index[name]

    def grouping_columns(self) -> List[str]:
        """Names of columns annotated with the ``grouping`` role."""
        return [c.name for c in self._columns if c.role == "grouping"]

    def aggregate_columns(self) -> List[str]:
        """Names of columns annotated with the ``aggregate`` role."""
        return [c.name for c in self._columns if c.role == "aggregate"]

    def project(self, names: Sequence[str]) -> "Schema":
        """Return a new schema restricted to ``names``, in the given order."""
        return Schema(self.column(n) for n in names)

    def extend(self, *columns: Column) -> "Schema":
        """Return a new schema with ``columns`` appended."""
        return Schema(self._columns + tuple(columns))

    def rename(self, mapping: dict) -> "Schema":
        """Return a new schema with columns renamed per ``mapping``."""
        return Schema(
            Column(mapping.get(c.name, c.name), c.ctype, c.role)
            for c in self._columns
        )
