"""In-memory column-store relational engine.

This package is the "back-end DBMS" substrate of the reproduction: the Aqua
middleware (:mod:`repro.aqua`) registers base relations and sample relations
here, and the rewriting strategies (:mod:`repro.rewrite`) produce logical
queries that this engine executes.
"""

from .aggregates import (
    Aggregate,
    AggregateFunction,
    AggregateState,
    finalize_state,
    grouped_reduce,
    merge_states,
    partial_reduce,
)
from .catalog import Catalog, CatalogError
from .dates import date_to_ordinal, format_date, ordinal_to_date, parse_date
from .executor import ParallelConfig, ParallelExecutor, execute, execute_on_table
from .expressions import BinaryOp, Col, Expression, Func, Lit, UnaryOp, col, lit
from .groupby import (
    GroupByPartial,
    distinct,
    finalize_group_by,
    group_by,
    group_ids_for,
    merge_group_partials,
    partial_group_by,
)
from .partition import Partition, Partitioner
from .io import infer_schema, read_csv, write_csv
from .join import hash_join
from .predicates import (
    And,
    Between,
    Comparison,
    InList,
    Not,
    Or,
    Predicate,
    TruePredicate,
)
from .query import Projection, Query, QueryError
from .render import render_expression, render_predicate, render_query
from .schema import Column, ColumnType, Schema, SchemaError
from .sql import SqlError, parse_query
from .stream import (
    BOUNDED_AGGREGATES,
    STREAM_BOUND_METHODS,
    StreamChunk,
    chunk_bounds,
    expansion_estimate,
    expansion_variance,
    stream_group_partials,
    stream_halfwidth,
)
from .table import Table, TableBuilder

__all__ = [
    "Aggregate",
    "AggregateFunction",
    "AggregateState",
    "And",
    "BOUNDED_AGGREGATES",
    "Between",
    "BinaryOp",
    "Catalog",
    "CatalogError",
    "Col",
    "Column",
    "ColumnType",
    "Comparison",
    "Expression",
    "Func",
    "GroupByPartial",
    "InList",
    "Lit",
    "Not",
    "Or",
    "ParallelConfig",
    "ParallelExecutor",
    "Partition",
    "Partitioner",
    "Predicate",
    "Projection",
    "Query",
    "QueryError",
    "Schema",
    "STREAM_BOUND_METHODS",
    "SchemaError",
    "SqlError",
    "StreamChunk",
    "Table",
    "TableBuilder",
    "TruePredicate",
    "UnaryOp",
    "chunk_bounds",
    "col",
    "date_to_ordinal",
    "distinct",
    "execute",
    "execute_on_table",
    "expansion_estimate",
    "expansion_variance",
    "finalize_group_by",
    "finalize_state",
    "format_date",
    "group_by",
    "group_ids_for",
    "grouped_reduce",
    "merge_group_partials",
    "merge_states",
    "partial_group_by",
    "partial_reduce",
    "hash_join",
    "infer_schema",
    "lit",
    "ordinal_to_date",
    "parse_date",
    "parse_query",
    "read_csv",
    "render_expression",
    "render_predicate",
    "render_query",
    "stream_group_partials",
    "stream_halfwidth",
    "write_csv",
]
