"""Chunked online aggregation over randomized partition partials.

The streaming layer's engine half: permute a table's rows once, cut the
permutation into fixed-size chunks, and fold each chunk's
:func:`~repro.engine.groupby.partial_group_by` into a running
:class:`~repro.engine.groupby.GroupByPartial` with
:func:`~repro.engine.groupby.merge_group_partials`.  Because the row order
is a uniform random permutation, the first ``m`` rows of the stream are a
simple random sample without replacement of size ``m`` -- exactly the
sampling model the estimator and bound formulas below assume (Hellerstein-
style online aggregation, built from the PR 3 mergeable states).

Every bounded aggregate (SUM / COUNT / AVG) is streamed internally as a
``var`` state so each group carries the full ``(n, sum(x), sum(x^2))``
moment triple: enough for both the scaled point estimate and its variance,
without a second pass.  MIN/MAX/VAR stream as themselves (running extremes
and moments); they get no error column.

The estimator is the zero-extended expansion estimator of
:mod:`repro.estimators.point` specialized to a single stratum: rows that
fail the WHERE predicate or belong to another group contribute ``y' = 0``,
so with ``m`` of ``N`` rows seen and per-group moments ``s = sum(y')``,
``ss = sum(y'^2)``::

    SUM_est  = (N / m) * s
    s'^2     = (ss - s^2 / m) / (m - 1)          # variance of the y'
    Var(SUM) = N^2 * (1 - m/N) * s'^2 / m        # with the FPC

COUNT is SUM of the qualifying indicator; AVG is the ratio ``s / n`` with
the same first-order delta-method variance the batch estimator uses.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Optional, Sequence, Tuple

import numpy as np

from .aggregates import Aggregate, AggregateState
from .groupby import GroupByPartial, merge_group_partials, partial_group_by
from .table import Table

__all__ = [
    "BOUNDED_AGGREGATES",
    "STREAM_BOUND_METHODS",
    "StreamChunk",
    "chunk_bounds",
    "expansion_estimate",
    "expansion_variance",
    "stream_group_partials",
    "stream_halfwidth",
]

#: Aggregates that scale with the fraction of data seen and carry an
#: ``<alias>_error`` column while streaming.
BOUNDED_AGGREGATES = ("sum", "count", "avg")

#: Bound families a streaming halfwidth can be computed from.
STREAM_BOUND_METHODS = ("normal", "chebyshev", "hoeffding")


def chunk_bounds(num_rows: int, chunk_rows: int) -> List[Tuple[int, int]]:
    """Half-open ``[start, stop)`` offsets cutting ``num_rows`` into chunks.

    The last chunk absorbs the remainder, so every row lands in exactly one
    chunk and no chunk is empty (except for an empty table, which yields a
    single empty chunk so the stream still emits a final answer).
    """
    if chunk_rows < 1:
        raise ValueError(f"chunk_rows must be >= 1, got {chunk_rows}")
    if num_rows <= 0:
        return [(0, 0)]
    starts = list(range(0, num_rows, chunk_rows))
    return [(start, min(start + chunk_rows, num_rows)) for start in starts]


@dataclass
class StreamChunk:
    """One cumulative step of a chunked group-by stream.

    Attributes:
        index: 0-based chunk index.
        chunks_total: total number of chunks in the stream.
        rows_seen: rows of the (pre-filter) permuted prefix consumed so
            far -- the ``m`` of the expansion estimator.
        rows_total: the table's total row count ``N``.
        partial: the merged :class:`GroupByPartial` over the whole prefix.
    """

    index: int
    chunks_total: int
    rows_seen: int
    rows_total: int
    partial: GroupByPartial

    @property
    def fraction(self) -> float:
        return self.rows_seen / self.rows_total if self.rows_total else 1.0


def stream_group_partials(
    table: Table,
    key_columns: Sequence[str],
    aggregates: Sequence[Aggregate],
    chunk_rows: int,
    rng: Optional[np.random.Generator] = None,
) -> Iterator[StreamChunk]:
    """Yield cumulative prefix partials over a random permutation of rows.

    Each yielded :class:`StreamChunk` carries the merge of every chunk's
    :func:`partial_group_by` so far; by associativity of the state merge,
    chunk ``k``'s partial equals ``partial_group_by`` over the concatenated
    first ``k + 1`` chunks (bit-identically for exactly-representable
    inputs -- the property suite pins this).
    """
    rng = rng if rng is not None else np.random.default_rng()
    perm = rng.permutation(table.num_rows)
    bounds = chunk_bounds(table.num_rows, chunk_rows)
    cumulative: Optional[GroupByPartial] = None
    for index, (start, stop) in enumerate(bounds):
        chunk = table.take(perm[start:stop])
        partial = partial_group_by(chunk, key_columns, aggregates)
        cumulative = (
            partial
            if cumulative is None
            else merge_group_partials([cumulative, partial])
        )
        yield StreamChunk(
            index=index,
            chunks_total=len(bounds),
            rows_seen=stop,
            rows_total=table.num_rows,
            partial=cumulative,
        )


def expansion_estimate(
    func: str, state: AggregateState, rows_seen: int, rows_total: int
) -> np.ndarray:
    """Per-group point estimate from a streamed ``var`` moment state.

    ``state`` must carry the zero-extended moments of a bounded aggregate's
    input (``func="var"`` internally: count, total, total_sq per group);
    ``func`` names the *user's* aggregate.  SUM and COUNT scale by
    ``N / m``; AVG is the within-sample ratio (unbiased for SRSWOR without
    any scaling, since the scale factors cancel).
    """
    if func not in BOUNDED_AGGREGATES:
        raise ValueError(f"no streaming estimator for {func!r}")
    counts = state.count
    if rows_seen <= 0:
        return np.full(len(counts), np.nan)
    scale = rows_total / rows_seen
    if func == "count":
        return counts * scale
    if func == "sum":
        return state.total * scale
    with np.errstate(divide="ignore", invalid="ignore"):
        return np.where(counts > 0, state.total / counts, np.nan)


def expansion_variance(
    totals: np.ndarray,
    totals_sq: np.ndarray,
    rows_seen: int,
    rows_total: int,
) -> np.ndarray:
    """Variance of the zero-extended expansion SUM estimate, per group.

    ``totals`` / ``totals_sq`` are ``sum(y')`` / ``sum(y'^2)`` over the
    qualifying rows of each group among ``rows_seen`` sampled rows of a
    ``rows_total``-row population (non-qualifying rows contribute zero to
    both, so the group arrays already ARE the zero-extended moments).
    Returns NaN until two rows have been seen; zero once the sample is the
    whole population (the FPC vanishes).
    """
    m, n = rows_seen, rows_total
    totals = np.asarray(totals, dtype=np.float64)
    totals_sq = np.asarray(totals_sq, dtype=np.float64)
    if m < 2 or n <= 0:
        return np.full(totals.shape, np.nan)
    sample_var = np.maximum(totals_sq - totals * totals / m, 0.0) / (m - 1)
    fpc = max(1.0 - m / n, 0.0)
    return (n * n) * fpc * sample_var / m


def stream_halfwidth(
    method: str,
    std_error: float,
    *,
    confidence: Optional[float] = None,
    value_range: float = 0.0,
    rows_seen: int = 0,
    rows_total: int = 0,
) -> float:
    """One group's CI half-width under the chosen bound family.

    ``normal`` and ``chebyshev`` need only the estimator's standard error;
    ``hoeffding`` is distribution-free and instead needs the group's
    zero-extended value range plus the ``m`` of ``N`` sample counts.  All
    three are non-increasing in the rows seen for fixed moments, which the
    property suite verifies.  ``confidence`` defaults to the estimator
    package's ``DEFAULT_CONFIDENCE``.
    """
    # Imported lazily: estimators sits above engine in the layering, and
    # this is the one spot the streaming engine reaches up into it.
    from ..estimators.errors import (
        DEFAULT_CONFIDENCE,
        chebyshev_halfwidth,
        hoeffding_halfwidth_sum,
        normal_halfwidth,
    )

    if confidence is None:
        confidence = DEFAULT_CONFIDENCE
    if method == "normal":
        return normal_halfwidth(std_error, confidence)
    if method == "chebyshev":
        return chebyshev_halfwidth(std_error, confidence)
    if method == "hoeffding":
        return hoeffding_halfwidth_sum(
            value_range, rows_seen, rows_total, confidence
        )
    raise ValueError(
        f"unknown stream bound method {method!r}; "
        f"expected one of {STREAM_BOUND_METHODS}"
    )
