"""Query executor: runs a logical :class:`Query` against a :class:`Catalog`.

Execution pipeline (matching how a DBMS would execute the rewritten queries
of Section 5):

1. resolve FROM (base table lookup, or recursive execution of a subquery);
2. apply the WHERE predicate as a vectorized filter;
3. if the query aggregates, hash group-by on the GROUP BY columns;
   otherwise project the select expressions;
4. order the output if ORDER BY was given.
"""

from __future__ import annotations

from typing import Union

import numpy as np

from .catalog import Catalog
from .expressions import Col
from .groupby import group_by
from .query import Projection, Query, QueryError
from .schema import Column, ColumnType, Schema
from .table import Table

__all__ = ["execute", "execute_on_table"]


def execute(query: Query, catalog: Catalog) -> Table:
    """Execute ``query``, resolving table names against ``catalog``."""
    source = query.from_item
    if isinstance(source, Query):
        input_table = execute(source, catalog)
    else:
        input_table = catalog.get(source)
    return _run(query, input_table)


def execute_on_table(query: Query, table: Table) -> Table:
    """Execute ``query`` directly against ``table``, ignoring the FROM name.

    The FROM item must be a plain name (not a subquery); this entry point is
    used by estimator code that already holds the resolved sample relation.
    """
    if isinstance(query.from_item, Query):
        raise QueryError("execute_on_table does not support nested subqueries")
    return _run(query, table)


def _run(query: Query, input_table: Table) -> Table:
    if query.where is not None:
        mask = query.where.evaluate(input_table)
        input_table = input_table.filter(mask)

    if query.has_aggregates() or query.group_by:
        result = group_by(input_table, list(query.group_by), query.aggregates())
        # group_by() emits keys-then-aggregates; restore select-list order and
        # apply aliases for the key columns.
        out_names = []
        renames = {}
        for item in query.select:
            if isinstance(item, Projection):
                assert isinstance(item.expr, Col)  # enforced by Query
                out_names.append(item.expr.name)
                if item.alias != item.expr.name:
                    renames[item.expr.name] = item.alias
            else:
                out_names.append(item.alias)
        result = result.project(out_names)
        if renames:
            result = result.rename(renames)
        if query.having is not None:
            result = result.filter(query.having.evaluate(result))
    else:
        columns = {}
        schema_cols = []
        for item in query.select:
            values = item.expr.evaluate(input_table)
            ctype = _infer_type(values, item.expr, input_table)
            schema_cols.append(Column(item.alias, ctype))
            columns[item.alias] = ctype.coerce(values)
        result = Table(Schema(schema_cols), columns)

    if query.order_by:
        result = result.sort_by(list(query.order_by))
    if query.limit is not None:
        result = result.head(query.limit)
    return result


def _infer_type(values: np.ndarray, expr, table: Table) -> ColumnType:
    """Infer the output type of a projected expression."""
    if isinstance(expr, Col):
        return table.schema.column(expr.name).ctype
    kind = np.asarray(values).dtype.kind
    if kind in ("i", "u"):
        return ColumnType.INT
    if kind == "f":
        return ColumnType.FLOAT
    return ColumnType.STR
