"""Query executor: runs a logical :class:`Query` against a :class:`Catalog`.

Execution pipeline (matching how a DBMS would execute the rewritten queries
of Section 5):

1. resolve FROM (base table lookup, or recursive execution of a subquery);
2. apply the WHERE predicate as a vectorized filter;
3. if the query aggregates, hash group-by on the GROUP BY columns;
   otherwise project the select expressions;
4. order the output if ORDER BY was given.

Aggregate queries can additionally run *partition-parallel*: a
:class:`ParallelExecutor` splits the input into K partitions
(:mod:`repro.engine.partition`), runs filter + partial group-by per
partition on a worker pool, and merges the partitions' mergeable aggregate
states (:mod:`repro.engine.aggregates`) before finalizing -- the classic
BlinkDB/VerdictDB scan shape.  The serial path is the degenerate K=1 case
of the same partial/merge/finalize arithmetic, so both paths agree exactly.
Small inputs and non-aggregate plans fall back to the serial path.
"""

from __future__ import annotations

import os
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from time import perf_counter
from typing import Callable, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from ..obs import Telemetry
from ..serve.deadline import current_deadline
from .catalog import Catalog
from .expressions import Col
from .groupby import (
    GroupByPartial,
    finalize_group_by,
    group_by,
    merge_group_partials,
    partial_group_by,
)
from .partition import Partition, Partitioner
from .query import Projection, Query, QueryError
from .schema import Column, ColumnType, Schema
from .table import Table

__all__ = [
    "execute",
    "execute_on_table",
    "infer_expression_type",
    "ParallelConfig",
    "ParallelExecutor",
]


def execute(
    query: Query,
    catalog: Catalog,
    parallel: Optional["ParallelExecutor"] = None,
) -> Table:
    """Execute ``query``, resolving table names against ``catalog``.

    When ``parallel`` is given, eligible aggregate scans (including those of
    nested subqueries) run partitioned on its worker pool.
    """
    source = query.from_item
    if isinstance(source, Query):
        input_table = execute(source, catalog, parallel=parallel)
    else:
        input_table = catalog.get(source)
    return _run(query, input_table, parallel=parallel)


def execute_on_table(
    query: Query,
    table: Table,
    parallel: Optional["ParallelExecutor"] = None,
) -> Table:
    """Execute ``query`` directly against ``table``, ignoring the FROM name.

    The FROM item must be a plain name (not a subquery); this entry point is
    used by estimator code that already holds the resolved sample relation.
    """
    if isinstance(query.from_item, Query):
        raise QueryError("execute_on_table does not support nested subqueries")
    return _run(query, table, parallel=parallel)


@dataclass(frozen=True)
class ParallelConfig:
    """Tuning knobs for partition-parallel aggregate execution.

    Attributes:
        max_workers: worker threads (0 = one per CPU core).
        backend: ``"threads"`` (default -- the hot loops are numpy, which
            releases the GIL) or ``"serial"`` (run partitions in-loop on the
            calling thread; useful for debugging and deterministic tests of
            the partition/merge machinery).
        min_partition_rows: serial fallback threshold.  The input is split
            into at most ``rows // min_partition_rows`` partitions, so any
            input smaller than ``2 * min_partition_rows`` runs serially.
            ``0`` forces partitioning regardless of size (what the
            ``REPRO_PARALLEL_WORKERS`` CI leg uses so small test tables
            still exercise the parallel path).
        partition_mode: ``"range"`` (contiguous zero-copy row ranges) or
            ``"hash"`` (route rows by group-by columns so each group lands
            in one partition; falls back to range for no-group-by queries).
    """

    max_workers: int = 0
    backend: str = "threads"
    min_partition_rows: int = 50_000
    partition_mode: str = "range"

    def __post_init__(self) -> None:
        if self.backend not in ("threads", "serial"):
            raise ValueError(
                f"backend must be threads or serial, got {self.backend!r}"
            )
        if self.partition_mode not in ("range", "hash"):
            raise ValueError(
                f"partition_mode must be range or hash, "
                f"got {self.partition_mode!r}"
            )
        if self.max_workers < 0:
            raise ValueError(
                f"max_workers must be >= 0, got {self.max_workers}"
            )
        if self.min_partition_rows < 0:
            raise ValueError(
                f"min_partition_rows must be >= 0, "
                f"got {self.min_partition_rows}"
            )

    @property
    def workers(self) -> int:
        """The resolved worker count (``max_workers`` or the CPU count)."""
        if self.max_workers > 0:
            return self.max_workers
        return os.cpu_count() or 1

    @classmethod
    def from_env(
        cls, env: Optional[Mapping[str, str]] = None
    ) -> Optional["ParallelConfig"]:
        """Build a config from ``REPRO_PARALLEL_*`` environment variables.

        Returns None unless ``REPRO_PARALLEL_WORKERS`` is set to a positive
        integer.  ``REPRO_PARALLEL_MIN_ROWS`` (default 0: always partition)
        and ``REPRO_PARALLEL_BACKEND`` refine the config.  Setting the env
        var is an explicit opt-in, so the fallback threshold defaults to 0
        to force every eligible scan through the parallel path -- this is
        how CI runs the whole test suite against the parallel executor.
        """
        env = os.environ if env is None else env
        raw = str(env.get("REPRO_PARALLEL_WORKERS", "")).strip()
        if not raw:
            return None
        try:
            workers = int(raw)
        except ValueError:
            return None
        if workers <= 0:
            return None
        min_rows = int(env.get("REPRO_PARALLEL_MIN_ROWS", "0"))
        backend = str(env.get("REPRO_PARALLEL_BACKEND", "threads"))
        return cls(
            max_workers=workers,
            backend=backend,
            min_partition_rows=min_rows,
        )


class ParallelExecutor:
    """Partition-parallel scan executor for aggregate queries.

    Splits the input table, runs WHERE + partial group-by per partition on a
    thread pool, merges the partitions' aggregate states, and finalizes.
    The result is group-for-group identical to the serial executor: AVG and
    VAR come from merged ``(n, sum, sum_sq)`` moments, MIN/MAX from merged
    extrema, and the merged group order matches the serial sorted order.

    Also provides :meth:`map_partitions`, the generic fan-out used for
    parallel synopsis construction and exact-fallback scans in
    :mod:`repro.aqua.system`.
    """

    def __init__(
        self,
        config: Optional[ParallelConfig] = None,
        telemetry: Optional[Telemetry] = None,
    ):
        self.config = config if config is not None else ParallelConfig()
        self.telemetry = (
            telemetry if telemetry is not None else Telemetry.disabled()
        )

    # -- plumbing ------------------------------------------------------------

    def execute(self, query: Query, catalog: Catalog) -> Table:
        return execute(query, catalog, parallel=self)

    def execute_on_table(self, query: Query, table: Table) -> Table:
        return execute_on_table(query, table, parallel=self)

    def partition_count(self, rows: int) -> int:
        """How many partitions an input of ``rows`` rows would be split into."""
        workers = self.config.workers
        if workers <= 1 or rows == 0:
            return 1
        if self.config.min_partition_rows > 0:
            workers = min(workers, rows // self.config.min_partition_rows)
        return max(workers, 1)

    def should_parallelize(self, query: Query, table: Table) -> bool:
        """True when the plan is supported and the input is big enough.

        Supported plans are aggregate/GROUP BY queries (every engine
        aggregate has a mergeable state; HAVING/ORDER BY/LIMIT apply after
        the merge).  Non-aggregate projections stay serial -- they are
        memory-bound single passes with nothing to merge.
        """
        if not (query.has_aggregates() or query.group_by):
            return False
        return self.partition_count(table.num_rows) >= 2

    def _map(self, fn: Callable, parts: Sequence[Partition]) -> List:
        if self.config.backend == "serial" or len(parts) == 1:
            return [fn(part) for part in parts]
        workers = min(self.config.workers, len(parts))
        with ThreadPoolExecutor(max_workers=workers) as pool:
            return list(pool.map(fn, parts))

    def map_partitions(
        self, table: Table, fn: Callable[[Partition], object]
    ) -> List:
        """Apply ``fn`` to each range partition of ``table`` concurrently.

        Returns the per-partition results in partition (row) order.  With
        one partition (small input, or one worker) ``fn`` runs inline.
        """
        k = self.partition_count(table.num_rows)
        parts = Partitioner("range").split(table, k)
        # Pool threads do not inherit the submitting thread's context, so
        # the ambient deadline is captured here and closed over explicitly.
        deadline = current_deadline()
        if deadline is not None:
            inner = fn

            def fn(part):
                deadline.check("partition_scan")
                return inner(part)

        return self._map(fn, parts)

    # -- the partitioned aggregate scan --------------------------------------

    def aggregate_partitioned(self, query: Query, table: Table) -> Table:
        """Filter + group + aggregate ``table`` across partitions.

        Returns the same keys-then-aggregates table :func:`group_by`
        produces; the caller applies select-list shaping, HAVING, ORDER BY
        and LIMIT exactly as in the serial path.
        """
        return self.aggregate_table(
            table, list(query.group_by), query.aggregates(), where=query.where
        )

    def aggregate_table(
        self,
        table: Table,
        key_columns: Sequence[str],
        aggregates: Sequence,
        where=None,
    ) -> Table:
        """The Query-free partitioned aggregation core.

        Splits ``table``, optionally filters each partition by ``where``
        (fused into the per-partition scan), runs a partial group-by per
        partition, merges, and finalizes.  This is the entry point the plan
        executor's GroupBy operator binds to -- predicates there have
        already been pushed into the Scan, so it passes ``where=None``.
        """
        key_columns = list(key_columns)
        aggregates = list(aggregates)
        k = self.partition_count(table.num_rows)
        if self.config.partition_mode == "hash" and key_columns:
            partitioner = Partitioner("hash", hash_columns=key_columns)
        else:
            partitioner = Partitioner("range")
        parts = partitioner.split(table, k)
        # Captured on the coordinator thread: the scan closure runs on pool
        # threads, which do not inherit contextvars, so the ambient deadline
        # must travel into the closure explicitly.
        deadline = current_deadline()

        def scan(part: Partition) -> Tuple[GroupByPartial, float, int, int]:
            if deadline is not None:
                deadline.check("partition_scan")
            start = perf_counter()
            rows = part.table
            if where is not None:
                rows = rows.filter(where.evaluate(rows))
            partial = partial_group_by(rows, key_columns, aggregates)
            return partial, perf_counter() - start, part.num_rows, rows.num_rows

        tracer = self.telemetry.tracer
        with tracer.span(
            "parallel_scan",
            partitions=len(parts),
            workers=min(self.config.workers, len(parts)),
            backend=self.config.backend,
        ) as span:
            scans = self._map(scan, parts)
            merged = merge_group_partials([partial for partial, *_ in scans])
            result = finalize_group_by(merged, table.schema, aggregates)
            span.set(groups=merged.num_groups)
            for part, (_, seconds, rows_in, rows_kept) in zip(parts, scans):
                span.add_child_timing(
                    "partition_scan",
                    seconds,
                    partition=part.index,
                    rows=rows_in,
                    kept=rows_kept,
                )
        self._observe_scan(parts, scans)
        return result

    # -- metrics -------------------------------------------------------------

    def _observe_scan(self, parts, scans) -> None:
        metrics = self.telemetry.metrics
        if not metrics.enabled:
            return
        metrics.counter(
            "engine_parallel_scans_total",
            "Aggregate scans executed partition-parallel, by backend.",
            ("backend",),
        ).inc(backend=self.config.backend)
        metrics.counter(
            "engine_partitions_scanned_total",
            "Partitions scanned by the parallel executor.",
        ).inc(len(parts))
        partition_seconds = metrics.histogram(
            "engine_partition_scan_seconds",
            "Per-partition filter + partial-aggregate wall time.",
        )
        for _, seconds, *_ in scans:
            partition_seconds.observe(seconds)

    def note_serial_fallback(self, query: Query, table: Table) -> None:
        """Record that an aggregate plan ran serially despite this executor."""
        reason = (
            "unsupported_plan"
            if not (query.has_aggregates() or query.group_by)
            else "small_input"
        )
        self.note_plan_serial_fallback(reason)

    def note_plan_serial_fallback(self, reason: str = "small_input") -> None:
        """Record a serial fallback without a Query (the plan executor's
        GroupBy operator only knows the input was too small to split)."""
        metrics = self.telemetry.metrics
        if not metrics.enabled:
            return
        metrics.counter(
            "engine_parallel_fallbacks_total",
            "Aggregate scans that fell back to the serial executor.",
            ("reason",),
        ).inc(reason=reason)


def _run(
    query: Query,
    input_table: Table,
    parallel: Optional[ParallelExecutor] = None,
) -> Table:
    aggregating = query.has_aggregates() or bool(query.group_by)

    if aggregating:
        if parallel is not None and parallel.should_parallelize(
            query, input_table
        ):
            result = parallel.aggregate_partitioned(query, input_table)
        else:
            if parallel is not None:
                parallel.note_serial_fallback(query, input_table)
            filtered = _apply_where(query, input_table)
            result = group_by(
                filtered, list(query.group_by), query.aggregates()
            )
        # group_by() emits keys-then-aggregates; restore select-list order and
        # apply aliases for the key columns.
        out_names = []
        renames = {}
        for item in query.select:
            if isinstance(item, Projection):
                assert isinstance(item.expr, Col)  # enforced by Query
                out_names.append(item.expr.name)
                if item.alias != item.expr.name:
                    renames[item.expr.name] = item.alias
            else:
                out_names.append(item.alias)
        result = result.project(out_names)
        if renames:
            result = result.rename(renames)
        if query.having is not None:
            result = result.filter(query.having.evaluate(result))
    else:
        if parallel is not None:
            parallel.note_serial_fallback(query, input_table)
        filtered = _apply_where(query, input_table)
        columns = {}
        schema_cols = []
        for item in query.select:
            values = item.expr.evaluate(filtered)
            ctype = _infer_type(values, item.expr, filtered)
            schema_cols.append(Column(item.alias, ctype))
            columns[item.alias] = ctype.coerce(values)
        result = Table(Schema(schema_cols), columns)

    if query.order_by:
        result = result.sort_by(list(query.order_by))
    if query.limit is not None:
        result = result.head(query.limit)
    return result


def _apply_where(query: Query, input_table: Table) -> Table:
    if query.where is None:
        return input_table
    return input_table.filter(query.where.evaluate(input_table))


def infer_expression_type(values: np.ndarray, expr, table: Table) -> ColumnType:
    """Infer the output type of a projected expression.

    Shared by the serial executor and the plan executor's compute-mode
    Project so both type projected columns identically.
    """
    if isinstance(expr, Col):
        return table.schema.column(expr.name).ctype
    kind = np.asarray(values).dtype.kind
    if kind in ("i", "u"):
        return ColumnType.INT
    return ColumnType.FLOAT if kind == "f" else ColumnType.STR


_infer_type = infer_expression_type
