"""CSV import/export for engine tables.

A thin adoption convenience: load a warehouse extract into a
:class:`Table` (with explicit schema, or schema inference) and write
answer tables back out.  Uses only the standard library ``csv`` module.
"""

from __future__ import annotations

import csv
from pathlib import Path
from typing import List, Optional, Sequence, Union

from .schema import Column, ColumnType, Schema, SchemaError
from .table import Table

__all__ = ["read_csv", "write_csv", "infer_schema"]

PathLike = Union[str, Path]


def _looks_int(value: str) -> bool:
    try:
        int(value)
        return True
    except ValueError:
        return False


def _looks_float(value: str) -> bool:
    try:
        float(value)
        return True
    except ValueError:
        return False


def infer_schema(
    header: Sequence[str], rows: Sequence[Sequence[str]]
) -> Schema:
    """Infer a schema from string rows: INT ⊂ FLOAT ⊂ STR, per column."""
    columns: List[Column] = []
    for position, name in enumerate(header):
        values = [row[position] for row in rows if position < len(row)]
        non_empty = [v for v in values if v != ""]
        if non_empty and all(_looks_int(v) for v in non_empty):
            ctype = ColumnType.INT
        elif non_empty and all(_looks_float(v) for v in non_empty):
            ctype = ColumnType.FLOAT
        else:
            ctype = ColumnType.STR
        columns.append(Column(name, ctype))
    return Schema(columns)


def read_csv(
    path: PathLike,
    schema: Optional[Schema] = None,
    delimiter: str = ",",
) -> Table:
    """Load a CSV file (with header row) into a :class:`Table`.

    Args:
        path: file to read.
        schema: expected schema; when omitted, types are inferred
            (INT ⊂ FLOAT ⊂ STR).  When given, the header must match the
            schema's column names exactly.
        delimiter: field separator.

    Raises:
        SchemaError: header/schema mismatch, or uncoercible values.
    """
    with open(path, newline="") as handle:
        reader = csv.reader(handle, delimiter=delimiter)
        try:
            header = next(reader)
        except StopIteration:
            raise SchemaError(f"{path}: empty file, no header row") from None
        rows = list(reader)

    if schema is None:
        schema = infer_schema(header, rows)
    elif list(header) != schema.names:
        raise SchemaError(
            f"{path}: header {header} does not match schema {schema.names}"
        )

    typed_rows = []
    for row in rows:
        if len(row) != len(schema):
            raise SchemaError(
                f"{path}: row arity {len(row)} != schema arity {len(schema)}"
            )
        typed = []
        for value, column in zip(row, schema):
            if column.ctype in (ColumnType.INT, ColumnType.DATE):
                typed.append(int(value))
            elif column.ctype is ColumnType.FLOAT:
                typed.append(float(value))
            else:
                typed.append(value)
        typed_rows.append(tuple(typed))
    return Table.from_rows(schema, typed_rows)


def write_csv(table: Table, path: PathLike, delimiter: str = ",") -> None:
    """Write a table to CSV with a header row."""
    with open(path, "w", newline="") as handle:
        writer = csv.writer(handle, delimiter=delimiter)
        writer.writerow(table.schema.names)
        for row in table.iter_rows():
            writer.writerow(row)
