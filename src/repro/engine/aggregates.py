"""Aggregate function specifications and vectorized grouped reduction.

Supported aggregates: COUNT, SUM, AVG, MIN, MAX, VAR (population variance with
``ddof=1``, matching the ``S`` of Eq. 2 in the paper).  Reduction is performed
per group id using ``np.bincount`` for the additive aggregates and
sort-partition for MIN/MAX.

Every aggregate also has a *mergeable partial state*
(:class:`AggregateState`): per-group ``(n, sum, sum_sq, min, max)`` moments
with an associative merge, so a scan can be split across partitions and the
states combined afterwards (:mod:`repro.engine.executor`'s parallel path).
AVG and VAR are finalized from the merged moments -- never by averaging
per-partition averages, which is wrong whenever partitions differ in size.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from .expressions import Expression, Lit
from .table import Table

__all__ = [
    "AggregateFunction",
    "Aggregate",
    "AggregateState",
    "grouped_reduce",
    "partial_reduce",
    "merge_states",
    "rollup_state",
    "finalize_state",
]


_SUPPORTED = ("count", "sum", "avg", "min", "max", "var")


class AggregateFunction:
    """Enumeration-lite of aggregate function names with validation."""

    def __init__(self, name: str):
        lowered = name.lower()
        if lowered not in _SUPPORTED:
            raise ValueError(
                f"unsupported aggregate {name!r}; supported: {_SUPPORTED}"
            )
        self.name = lowered

    def __eq__(self, other: object) -> bool:
        if isinstance(other, AggregateFunction):
            return self.name == other.name
        if isinstance(other, str):
            return self.name == other.lower()
        return NotImplemented

    def __hash__(self) -> int:
        return hash(self.name)

    def __repr__(self) -> str:
        return f"AggregateFunction({self.name})"


@dataclass(frozen=True)
class Aggregate:
    """One aggregate in a select list: ``func(expr) AS alias``.

    ``COUNT(*)`` is modelled with ``expr = Lit(1)``.
    """

    func: str
    expr: Expression
    alias: str

    def __post_init__(self) -> None:
        AggregateFunction(self.func)

    @classmethod
    def count_star(cls, alias: str = "count") -> "Aggregate":
        return cls("count", Lit(1), alias)

    def evaluate_input(self, table: Table) -> np.ndarray:
        """Evaluate the aggregate's input expression over ``table``."""
        return self.expr.evaluate(table)


def grouped_reduce(
    func: str,
    values: np.ndarray,
    group_ids: np.ndarray,
    num_groups: int,
) -> np.ndarray:
    """Reduce ``values`` per group.

    Args:
        func: one of count/sum/avg/min/max/var.
        values: per-row input values (ignored for count).
        group_ids: int array mapping each row to ``[0, num_groups)``.
        num_groups: number of groups.

    Returns:
        Array of length ``num_groups`` with the per-group aggregate.  Groups
        with no rows receive 0 for COUNT/SUM, NaN for AVG/MIN/MAX/VAR.
    """
    return finalize_state(partial_reduce(func, values, group_ids, num_groups))


def _extreme_reduce(
    func: str, values: np.ndarray, group_ids: np.ndarray, num_groups: int
) -> np.ndarray:
    """Per-group MIN/MAX via sort-partition: sort rows by group id, then
    reduce contiguous runs with np.minimum/maximum.reduceat.  NaN inputs
    propagate to their group (matching full-column numpy semantics)."""
    out = np.full(num_groups, np.nan)
    if len(values) == 0:
        return out
    order = np.argsort(group_ids, kind="stable")
    sorted_ids = group_ids[order]
    sorted_values = values[order]
    run_starts = np.flatnonzero(
        np.concatenate(([True], sorted_ids[1:] != sorted_ids[:-1]))
    )
    run_groups = sorted_ids[run_starts]
    reducer = np.minimum if func == "min" else np.maximum
    out[run_groups] = reducer.reduceat(sorted_values, run_starts)
    return out


@dataclass
class AggregateState:
    """Mergeable per-group partial state for one aggregate.

    Carries only the moments its function needs: ``count`` always; ``total``
    for SUM/AVG/VAR; ``total_sq`` for VAR; ``low``/``high`` for MIN/MAX.
    All arrays are aligned: element ``i`` belongs to group ``i`` of whatever
    group space the state was reduced over.

    States over the *same* group space merge with :meth:`merge` (associative
    and commutative); partition-local states over different group spaces are
    combined with :func:`merge_states` via index maps.
    """

    func: str
    count: np.ndarray
    total: Optional[np.ndarray] = None
    total_sq: Optional[np.ndarray] = None
    low: Optional[np.ndarray] = None
    high: Optional[np.ndarray] = None

    @property
    def num_groups(self) -> int:
        return len(self.count)

    def merge(self, other: "AggregateState") -> "AggregateState":
        """Merge with a state over the same group space."""
        if other.func != self.func or other.num_groups != self.num_groups:
            raise ValueError(
                f"cannot merge {self.func}/{self.num_groups} state with "
                f"{other.func}/{other.num_groups}"
            )
        identity = np.arange(self.num_groups, dtype=np.int64)
        return merge_states([self, other], [identity, identity], self.num_groups)


def partial_reduce(
    func: str,
    values: np.ndarray,
    group_ids: np.ndarray,
    num_groups: int,
) -> AggregateState:
    """Reduce ``values`` per group into a mergeable :class:`AggregateState`.

    Same contract as :func:`grouped_reduce` (which is now just
    ``finalize_state(partial_reduce(...))``), but the result can be merged
    with states from other partitions before finalizing.
    """
    func = AggregateFunction(func).name
    if num_groups == 0:
        empty = np.empty(0, dtype=np.float64)
        return AggregateState(func, empty)
    counts = np.bincount(group_ids, minlength=num_groups).astype(np.float64)
    state = AggregateState(func, counts)
    if func == "count":
        return state
    values = np.asarray(values, dtype=np.float64)
    if func in ("sum", "avg", "var"):
        state.total = np.bincount(
            group_ids, weights=values, minlength=num_groups
        )
        if func == "var":
            state.total_sq = np.bincount(
                group_ids, weights=values * values, minlength=num_groups
            )
    elif func == "min":
        state.low = _extreme_reduce("min", values, group_ids, num_groups)
    else:  # max
        state.high = _extreme_reduce("max", values, group_ids, num_groups)
    return state


def _merge_extremes(
    acc: np.ndarray,
    seen: np.ndarray,
    values: np.ndarray,
    occupied: np.ndarray,
    targets: np.ndarray,
    reducer,
) -> None:
    """Fold one partial's per-group extrema into the accumulator.

    Only groups the partial actually scanned rows for (``occupied``)
    contribute -- an empty group must not inject its NaN placeholder -- but
    a genuine NaN *value* in an occupied group propagates, matching the
    serial reduction.
    """
    targets = targets[occupied]
    values = values[occupied]
    first = ~seen[targets]
    acc[targets[first]] = values[first]
    rest = ~first
    acc[targets[rest]] = reducer(acc[targets[rest]], values[rest])
    seen[targets] = True


def merge_states(
    partials: Sequence[AggregateState],
    index_maps: Sequence[np.ndarray],
    num_groups: int,
) -> AggregateState:
    """Merge partition-local states into one state over a merged group space.

    Args:
        partials: one state per partition, all for the same function.
        index_maps: ``index_maps[p][i]`` is the merged group index of
            partition ``p``'s local group ``i``.  Indices must be unique
            within one map (local groups are distinct keys).
        num_groups: size of the merged group space.

    Moments are summed; extrema are combined with np.minimum/np.maximum,
    skipping groups a partition never scanned (so empty partitions and
    absent groups cannot poison the merge with NaN), while NaN values that
    a partition really observed still propagate.
    """
    if not partials:
        raise ValueError("merge_states needs at least one partial state")
    func = partials[0].func
    counts = np.zeros(num_groups, dtype=np.float64)
    needs_total = func in ("sum", "avg", "var")
    total = np.zeros(num_groups, dtype=np.float64) if needs_total else None
    total_sq = np.zeros(num_groups, dtype=np.float64) if func == "var" else None
    low = np.full(num_groups, np.nan) if func == "min" else None
    high = np.full(num_groups, np.nan) if func == "max" else None
    seen = (
        np.zeros(num_groups, dtype=bool) if func in ("min", "max") else None
    )
    for state, targets in zip(partials, index_maps):
        if state.func != func:
            raise ValueError(
                f"cannot merge {state.func!r} state into {func!r} merge"
            )
        if state.num_groups == 0:
            continue
        targets = np.asarray(targets, dtype=np.int64)
        counts[targets] += state.count
        if total is not None:
            total[targets] += state.total
        if total_sq is not None:
            total_sq[targets] += state.total_sq
        occupied = state.count > 0
        if low is not None:
            _merge_extremes(low, seen, state.low, occupied, targets, np.minimum)
        if high is not None:
            _merge_extremes(
                high, seen, state.high, occupied, targets, np.maximum
            )
    return AggregateState(func, counts, total, total_sq, low, high)


def rollup_state(
    state: AggregateState,
    targets: np.ndarray,
    num_groups: int,
) -> AggregateState:
    """Merge a fine-grained state into coarser groups (many-to-one).

    The congressional datacube (paper Section 6) builds coarse group-by
    summaries by *merging* finer strata; this is that merge as a state
    operation, used by the semantic cache's roll-up tier to answer
    ``GROUP BY nation`` from a cached ``GROUP BY nation, year`` state.

    Unlike :func:`merge_states`, ``targets`` may repeat: several fine
    groups land in the same coarse group.  Moments are summed with
    ``np.bincount`` (deterministic index-order accumulation, so two
    roll-ups of the same state are bit-identical); extrema combine with
    ``np.minimum.at``/``np.maximum.at``, skipping fine groups that never
    scanned a row while still propagating genuinely observed NaNs.

    Args:
        state: fine-grained state, one entry per fine group.
        targets: ``targets[i]`` is the coarse group of fine group ``i``.
        num_groups: size of the coarse group space.
    """
    targets = np.asarray(targets, dtype=np.int64)
    if len(targets) != state.num_groups:
        raise ValueError(
            f"targets has {len(targets)} entries for a state with "
            f"{state.num_groups} groups"
        )
    counts = np.bincount(targets, weights=state.count, minlength=num_groups)
    total = (
        np.bincount(targets, weights=state.total, minlength=num_groups)
        if state.total is not None
        else None
    )
    total_sq = (
        np.bincount(targets, weights=state.total_sq, minlength=num_groups)
        if state.total_sq is not None
        else None
    )
    low = high = None
    if state.low is not None or state.high is not None:
        occupied = state.count > 0
        seen = np.zeros(num_groups, dtype=bool)
        seen[targets[occupied]] = True
        if state.low is not None:
            low = np.full(num_groups, np.inf)
            np.minimum.at(low, targets[occupied], state.low[occupied])
            low[~seen] = np.nan
        if state.high is not None:
            high = np.full(num_groups, -np.inf)
            np.maximum.at(high, targets[occupied], state.high[occupied])
            high[~seen] = np.nan
    return AggregateState(state.func, counts, total, total_sq, low, high)


def finalize_state(state: AggregateState) -> np.ndarray:
    """Compute the final per-group aggregate from a (merged) state.

    AVG and VAR are derived from the merged moments -- identical formulas
    to the serial reduction, so a single-partition round trip is bit-exact.
    Empty groups finalize to 0 for COUNT/SUM and NaN for AVG/MIN/MAX/VAR;
    single-row groups have variance 0, never NaN/inf.
    """
    func = state.func
    counts = state.count
    num_groups = len(counts)
    if num_groups == 0:
        return np.empty(0, dtype=np.float64)
    if func == "count":
        return counts
    if func == "sum":
        return state.total
    if func == "avg":
        with np.errstate(divide="ignore", invalid="ignore"):
            return np.where(counts > 0, state.total / counts, np.nan)
    if func == "var":
        out = np.full(num_groups, np.nan)
        multi = counts > 1
        with np.errstate(divide="ignore", invalid="ignore"):
            # Unbiased sample variance: (sum(x^2) - n*mean^2) / (n - 1).
            means = np.where(
                counts > 0, state.total / np.maximum(counts, 1), 0.0
            )
            numer = state.total_sq - counts * means * means
            out[multi] = np.maximum(numer[multi], 0.0) / (counts[multi] - 1.0)
        out[counts == 1] = 0.0
        return out
    return state.low if func == "min" else state.high
