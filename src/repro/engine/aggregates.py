"""Aggregate function specifications and vectorized grouped reduction.

Supported aggregates: COUNT, SUM, AVG, MIN, MAX, VAR (population variance with
``ddof=1``, matching the ``S`` of Eq. 2 in the paper).  Reduction is performed
per group id using ``np.bincount`` for the additive aggregates and
sort-partition for MIN/MAX.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from .expressions import Expression, Lit
from .table import Table

__all__ = ["AggregateFunction", "Aggregate", "grouped_reduce"]


_SUPPORTED = ("count", "sum", "avg", "min", "max", "var")


class AggregateFunction:
    """Enumeration-lite of aggregate function names with validation."""

    def __init__(self, name: str):
        lowered = name.lower()
        if lowered not in _SUPPORTED:
            raise ValueError(
                f"unsupported aggregate {name!r}; supported: {_SUPPORTED}"
            )
        self.name = lowered

    def __eq__(self, other: object) -> bool:
        if isinstance(other, AggregateFunction):
            return self.name == other.name
        if isinstance(other, str):
            return self.name == other.lower()
        return NotImplemented

    def __hash__(self) -> int:
        return hash(self.name)

    def __repr__(self) -> str:
        return f"AggregateFunction({self.name})"


@dataclass(frozen=True)
class Aggregate:
    """One aggregate in a select list: ``func(expr) AS alias``.

    ``COUNT(*)`` is modelled with ``expr = Lit(1)``.
    """

    func: str
    expr: Expression
    alias: str

    def __post_init__(self) -> None:
        AggregateFunction(self.func)

    @classmethod
    def count_star(cls, alias: str = "count") -> "Aggregate":
        return cls("count", Lit(1), alias)

    def evaluate_input(self, table: Table) -> np.ndarray:
        """Evaluate the aggregate's input expression over ``table``."""
        return self.expr.evaluate(table)


def grouped_reduce(
    func: str,
    values: np.ndarray,
    group_ids: np.ndarray,
    num_groups: int,
) -> np.ndarray:
    """Reduce ``values`` per group.

    Args:
        func: one of count/sum/avg/min/max/var.
        values: per-row input values (ignored for count).
        group_ids: int array mapping each row to ``[0, num_groups)``.
        num_groups: number of groups.

    Returns:
        Array of length ``num_groups`` with the per-group aggregate.  Groups
        with no rows receive 0 for COUNT/SUM, NaN for AVG/MIN/MAX/VAR.
    """
    func = AggregateFunction(func).name
    if num_groups == 0:
        return np.empty(0, dtype=np.float64)

    counts = np.bincount(group_ids, minlength=num_groups).astype(np.float64)

    if func == "count":
        return counts

    values = np.asarray(values, dtype=np.float64)

    if func == "sum":
        return np.bincount(group_ids, weights=values, minlength=num_groups)

    if func == "avg":
        sums = np.bincount(group_ids, weights=values, minlength=num_groups)
        with np.errstate(divide="ignore", invalid="ignore"):
            return np.where(counts > 0, sums / counts, np.nan)

    if func == "var":
        sums = np.bincount(group_ids, weights=values, minlength=num_groups)
        sumsq = np.bincount(
            group_ids, weights=values * values, minlength=num_groups
        )
        out = np.full(num_groups, np.nan)
        multi = counts > 1
        with np.errstate(divide="ignore", invalid="ignore"):
            # Unbiased sample variance: (sum(x^2) - n*mean^2) / (n - 1).
            means = np.where(counts > 0, sums / np.maximum(counts, 1), 0.0)
            numer = sumsq - counts * means * means
            out[multi] = np.maximum(numer[multi], 0.0) / (counts[multi] - 1.0)
        out[counts == 1] = 0.0
        return out

    # MIN / MAX via sort-partition: sort rows by group id, then reduce
    # contiguous runs with np.minimum/maximum.reduceat.
    out = np.full(num_groups, np.nan)
    if len(values) == 0:
        return out
    order = np.argsort(group_ids, kind="stable")
    sorted_ids = group_ids[order]
    sorted_values = values[order]
    run_starts = np.flatnonzero(
        np.concatenate(([True], sorted_ids[1:] != sorted_ids[:-1]))
    )
    run_groups = sorted_ids[run_starts]
    reducer = np.minimum if func == "min" else np.maximum
    out[run_groups] = reducer.reduceat(sorted_values, run_starts)
    return out
