"""Logical query representation.

A :class:`Query` is the engine's logical plan: a select list of plain
projections and aggregates, a FROM item (base table name or nested subquery),
an optional WHERE predicate, and GROUP BY / ORDER BY column lists.  Queries
are produced either programmatically or by the SQL parser
(:mod:`repro.engine.sql`) and executed by :mod:`repro.engine.executor`.

The *Nested-integrated* rewriting strategy (Figure 11 of the paper) relies on
nested FROM subqueries, which is why ``from_item`` may itself be a query.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import List, Optional, Tuple, Union

from .aggregates import Aggregate
from .expressions import Col, Expression
from .predicates import Predicate

__all__ = ["Projection", "Query", "QueryError"]


class QueryError(ValueError):
    """Raised for malformed logical queries."""


@dataclass(frozen=True)
class Projection:
    """A non-aggregate select item: ``expr AS alias``."""

    expr: Expression
    alias: str


@dataclass(frozen=True)
class Query:
    """A logical SELECT query.

    Attributes:
        select: select-list items in output order.
        from_item: base table name, or a nested :class:`Query`.
        where: optional row predicate.
        group_by: grouping column names (empty = no GROUP BY).
        having: optional predicate over the *output aliases* (keys and
            aggregate results), applied after aggregation -- SQL HAVING.
        order_by: output ordering column names (empty = unspecified).
        limit: optional cap on the number of output rows (SQL LIMIT).
    """

    select: Tuple[Union[Projection, Aggregate], ...]
    from_item: Union[str, "Query"]
    where: Optional[Predicate] = None
    group_by: Tuple[str, ...] = ()
    having: Optional[Predicate] = None
    order_by: Tuple[str, ...] = ()
    limit: Optional[int] = None

    def __post_init__(self) -> None:
        if not self.select:
            raise QueryError("select list must not be empty")
        aliases = [item.alias for item in self.select]
        if len(set(aliases)) != len(aliases):
            raise QueryError(f"duplicate output aliases: {aliases}")
        if self.having is not None and not (
            self.has_aggregates() or self.group_by
        ):
            raise QueryError("HAVING requires aggregation or GROUP BY")
        if self.limit is not None and self.limit < 0:
            raise QueryError(f"LIMIT must be >= 0, got {self.limit}")
        if self.has_aggregates():
            for item in self.projections():
                if not isinstance(item.expr, Col):
                    raise QueryError(
                        "non-aggregate select items must be bare columns when "
                        f"aggregating; got {item.expr!r}"
                    )
                if item.expr.name not in self.group_by:
                    raise QueryError(
                        f"column {item.expr.name!r} in select list is not in "
                        f"GROUP BY {list(self.group_by)}"
                    )

    # -- introspection -----------------------------------------------------

    def projections(self) -> List[Projection]:
        return [item for item in self.select if isinstance(item, Projection)]

    def aggregates(self) -> List[Aggregate]:
        return [item for item in self.select if isinstance(item, Aggregate)]

    def has_aggregates(self) -> bool:
        return any(isinstance(item, Aggregate) for item in self.select)

    def output_aliases(self) -> List[str]:
        return [item.alias for item in self.select]

    def base_table_name(self) -> str:
        """The name of the innermost base table."""
        item = self.from_item
        while isinstance(item, Query):
            item = item.from_item
        return item

    # -- transformation helpers (used by the rewriter) ----------------------

    def with_from(self, from_item: Union[str, "Query"]) -> "Query":
        return replace(self, from_item=from_item)

    def with_select(
        self, select: Tuple[Union[Projection, Aggregate], ...]
    ) -> "Query":
        return replace(self, select=select)

    def with_group_by(self, group_by: Tuple[str, ...]) -> "Query":
        return replace(self, group_by=group_by)
