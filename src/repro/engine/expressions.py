"""Scalar expression AST with vectorized numpy evaluation.

Expressions evaluate against a :class:`~repro.engine.table.Table` and return a
numpy array of one value per row.  This is the machinery behind rewritten
query select-lists such as ``sum(Q * SF)`` (Section 5 of the paper): the
``Q * SF`` part is a :class:`BinaryOp` expression evaluated per tuple before
aggregation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Tuple, Union

import numpy as np

from .table import Table

__all__ = ["Expression", "Col", "Lit", "BinaryOp", "UnaryOp", "Func", "col", "lit"]


class Expression:
    """Base class for scalar expressions."""

    def evaluate(self, table: Table) -> np.ndarray:
        """Return one value per row of ``table``."""
        raise NotImplementedError

    def referenced_columns(self) -> Tuple[str, ...]:
        """Column names this expression reads, in first-use order."""
        raise NotImplementedError

    # Operator sugar so callers can write ``col("q") * col("sf")``.
    def __add__(self, other: "ExpressionLike") -> "BinaryOp":
        return BinaryOp("+", self, _wrap(other))

    def __radd__(self, other: "ExpressionLike") -> "BinaryOp":
        return BinaryOp("+", _wrap(other), self)

    def __sub__(self, other: "ExpressionLike") -> "BinaryOp":
        return BinaryOp("-", self, _wrap(other))

    def __rsub__(self, other: "ExpressionLike") -> "BinaryOp":
        return BinaryOp("-", _wrap(other), self)

    def __mul__(self, other: "ExpressionLike") -> "BinaryOp":
        return BinaryOp("*", self, _wrap(other))

    def __rmul__(self, other: "ExpressionLike") -> "BinaryOp":
        return BinaryOp("*", _wrap(other), self)

    def __truediv__(self, other: "ExpressionLike") -> "BinaryOp":
        return BinaryOp("/", self, _wrap(other))

    def __rtruediv__(self, other: "ExpressionLike") -> "BinaryOp":
        return BinaryOp("/", _wrap(other), self)

    def __neg__(self) -> "UnaryOp":
        return UnaryOp("-", self)


ExpressionLike = Union[Expression, int, float, str]


def _wrap(value: ExpressionLike) -> Expression:
    if isinstance(value, Expression):
        return value
    return Lit(value)


@dataclass(frozen=True)
class Col(Expression):
    """A reference to a named column."""

    name: str

    def evaluate(self, table: Table) -> np.ndarray:
        return table.column(self.name)

    def referenced_columns(self) -> Tuple[str, ...]:
        return (self.name,)

    def __repr__(self) -> str:
        return f"Col({self.name})"


@dataclass(frozen=True)
class Lit(Expression):
    """A literal constant broadcast to every row."""

    value: Union[int, float, str]

    def evaluate(self, table: Table) -> np.ndarray:
        return np.full(table.num_rows, self.value)

    def referenced_columns(self) -> Tuple[str, ...]:
        return ()

    def __repr__(self) -> str:
        return f"Lit({self.value!r})"


_BINARY_OPS: Dict[str, Callable[[np.ndarray, np.ndarray], np.ndarray]] = {
    "+": np.add,
    "-": np.subtract,
    "*": np.multiply,
    "/": np.divide,
}


@dataclass(frozen=True)
class BinaryOp(Expression):
    """Arithmetic on two sub-expressions: ``+``, ``-``, ``*``, ``/``."""

    op: str
    left: Expression
    right: Expression

    def __post_init__(self) -> None:
        if self.op not in _BINARY_OPS:
            raise ValueError(f"unsupported binary operator {self.op!r}")

    def evaluate(self, table: Table) -> np.ndarray:
        lhs = self.left.evaluate(table)
        rhs = self.right.evaluate(table)
        if self.op == "/":
            lhs = np.asarray(lhs, dtype=np.float64)
            with np.errstate(divide="ignore", invalid="ignore"):
                out = np.divide(lhs, rhs)
            return out
        return _BINARY_OPS[self.op](lhs, rhs)

    def referenced_columns(self) -> Tuple[str, ...]:
        seen = []
        for name in self.left.referenced_columns() + self.right.referenced_columns():
            if name not in seen:
                seen.append(name)
        return tuple(seen)

    def __repr__(self) -> str:
        return f"({self.left!r} {self.op} {self.right!r})"


@dataclass(frozen=True)
class UnaryOp(Expression):
    """Unary negation."""

    op: str
    operand: Expression

    def __post_init__(self) -> None:
        if self.op != "-":
            raise ValueError(f"unsupported unary operator {self.op!r}")

    def evaluate(self, table: Table) -> np.ndarray:
        return -self.operand.evaluate(table)

    def referenced_columns(self) -> Tuple[str, ...]:
        return self.operand.referenced_columns()


def _date_func(values: np.ndarray) -> np.ndarray:
    from .dates import date_function

    return date_function(values)


_FUNCS: Dict[str, Callable[[np.ndarray], np.ndarray]] = {
    "abs": np.abs,
    "sqrt": np.sqrt,
    "floor": np.floor,
    "ceil": np.ceil,
    "date": _date_func,
}


@dataclass(frozen=True)
class Func(Expression):
    """A whitelisted scalar function applied elementwise."""

    name: str
    operand: Expression

    def __post_init__(self) -> None:
        if self.name not in _FUNCS:
            raise ValueError(
                f"unsupported function {self.name!r}; have {sorted(_FUNCS)}"
            )

    def evaluate(self, table: Table) -> np.ndarray:
        return _FUNCS[self.name](self.operand.evaluate(table))

    def referenced_columns(self) -> Tuple[str, ...]:
        return self.operand.referenced_columns()


def col(name: str) -> Col:
    """Shorthand constructor: ``col("l_quantity")``."""
    return Col(name)


def lit(value: Union[int, float, str]) -> Lit:
    """Shorthand constructor: ``lit(100)``."""
    return Lit(value)
