"""Immutable numpy column-store table.

A :class:`Table` stores each column as a homogeneous numpy array.  All engine
operators (filter, project, group-by, join) produce new tables; existing
tables are never mutated.  Mutation for streaming workloads happens in a
separate :class:`TableBuilder` which accumulates rows and freezes into a
:class:`Table`.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Mapping, Sequence, Tuple

import numpy as np

from .schema import Column, Schema, SchemaError

__all__ = ["Table", "TableBuilder"]


class Table:
    """An immutable, schema-typed collection of equal-length numpy columns."""

    def __init__(self, schema: Schema, columns: Mapping[str, np.ndarray]):
        if set(columns) != set(schema.names):
            raise SchemaError(
                f"column data {sorted(columns)} does not match schema {schema.names}"
            )
        lengths = {name: len(arr) for name, arr in columns.items()}
        if len(set(lengths.values())) > 1:
            raise SchemaError(f"ragged columns: {lengths}")
        self._schema = schema
        self._columns: Dict[str, np.ndarray] = {}
        for col in schema:
            arr = np.asarray(columns[col.name])
            expected_kind = col.ctype.numpy_dtype.kind
            if arr.dtype.kind != expected_kind:
                arr = col.ctype.coerce(arr)
            arr.setflags(write=False)
            self._columns[col.name] = arr
        self._num_rows = 0 if not schema.names else len(
            self._columns[schema.names[0]]
        )

    # -- construction -----------------------------------------------------

    @classmethod
    def from_rows(cls, schema: Schema, rows: Iterable[Sequence]) -> "Table":
        """Build a table from an iterable of row tuples (schema order)."""
        materialized = list(rows)
        data = {}
        for i, col in enumerate(schema):
            values = [row[i] for row in materialized]
            data[col.name] = col.ctype.coerce(values) if values else np.empty(
                0, dtype=col.ctype.numpy_dtype
            )
        return cls(schema, data)

    @classmethod
    def from_columns(cls, schema: Schema, **columns: Sequence) -> "Table":
        """Build a table from keyword column sequences."""
        data = {
            col.name: col.ctype.coerce(columns[col.name]) for col in schema
        }
        return cls(schema, data)

    @classmethod
    def empty(cls, schema: Schema) -> "Table":
        """An empty table with the given schema."""
        return cls(
            schema,
            {c.name: np.empty(0, dtype=c.ctype.numpy_dtype) for c in schema},
        )

    # -- basic accessors ---------------------------------------------------

    @property
    def schema(self) -> Schema:
        return self._schema

    @property
    def num_rows(self) -> int:
        return self._num_rows

    def __len__(self) -> int:
        return self._num_rows

    def column(self, name: str) -> np.ndarray:
        """Return the (read-only) numpy array for column ``name``."""
        self._schema.column(name)
        return self._columns[name]

    def columns(self) -> Dict[str, np.ndarray]:
        """A shallow copy of the name -> array mapping."""
        return dict(self._columns)

    def row(self, i: int) -> Tuple:
        """Return row ``i`` as a tuple in schema order (slow; for tests)."""
        return tuple(self._columns[n][i] for n in self._schema.names)

    def iter_rows(self) -> Iterator[Tuple]:
        """Iterate rows as tuples (slow; for tests and small outputs)."""
        arrays = [self._columns[n] for n in self._schema.names]
        for i in range(self._num_rows):
            yield tuple(arr[i] for arr in arrays)

    def to_dicts(self) -> List[Dict[str, object]]:
        """Materialize rows as dictionaries (for display and tests)."""
        names = self._schema.names
        return [dict(zip(names, row)) for row in self.iter_rows()]

    def __repr__(self) -> str:
        return f"Table({self._schema!r}, rows={self._num_rows})"

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Table):
            return NotImplemented
        if self._schema != other._schema or self._num_rows != other._num_rows:
            return False
        return all(
            np.array_equal(self._columns[n], other._columns[n])
            for n in self._schema.names
        )

    # -- relational kernels -------------------------------------------------

    def take(self, indices: np.ndarray) -> "Table":
        """Row subset/reorder by integer index array."""
        data = {n: arr[indices] for n, arr in self._columns.items()}
        return Table(self._schema, data)

    def filter(self, mask: np.ndarray) -> "Table":
        """Row subset by boolean mask."""
        if len(mask) != self._num_rows:
            raise ValueError(
                f"mask length {len(mask)} != table rows {self._num_rows}"
            )
        data = {n: arr[mask] for n, arr in self._columns.items()}
        return Table(self._schema, data)

    def head(self, n: int) -> "Table":
        """First ``n`` rows."""
        return self.take(np.arange(min(n, self._num_rows)))

    def slice(self, start: int, stop: int) -> "Table":
        """Rows ``[start, stop)`` as zero-copy numpy views.

        Unlike :meth:`take`, no data is copied: each column of the result is
        a read-only view into this table's arrays, so partition-parallel
        scans (:mod:`repro.engine.partition`) can split a table for free.
        """
        data = {n: arr[start:stop] for n, arr in self._columns.items()}
        return Table(self._schema, data)

    def project(self, names: Sequence[str]) -> "Table":
        """Column subset, in the given order."""
        schema = self._schema.project(names)
        return Table(schema, {n: self._columns[n] for n in names})

    def rename(self, mapping: Mapping[str, str]) -> "Table":
        """Rename columns per ``mapping``; unmentioned columns keep names."""
        schema = self._schema.rename(dict(mapping))
        data = {
            mapping.get(n, n): arr for n, arr in self._columns.items()
        }
        return Table(schema, data)

    def with_column(
        self, column: Column, values: np.ndarray
    ) -> "Table":
        """Return a new table with an extra column appended."""
        if len(values) != self._num_rows:
            raise ValueError(
                f"new column length {len(values)} != table rows {self._num_rows}"
            )
        schema = self._schema.extend(column)
        data = dict(self._columns)
        data[column.name] = column.ctype.coerce(values)
        return Table(schema, data)

    def concat(self, other: "Table") -> "Table":
        """Vertical concatenation; schemas must match column names/types."""
        if [c.ctype for c in self._schema] != [c.ctype for c in other._schema] or (
            self._schema.names != other._schema.names
        ):
            raise SchemaError(
                f"cannot concat {self._schema!r} with {other._schema!r}"
            )
        data = {
            n: np.concatenate([self._columns[n], other._columns[n]])
            for n in self._schema.names
        }
        return Table(self._schema, data)

    def sort_by(self, names: Sequence[str]) -> "Table":
        """Stable sort by the given columns (last key most significant
        is handled internally; result is lexicographic by ``names``)."""
        keys = [self._columns[n] for n in reversed(list(names))]
        order = np.lexsort(keys)
        return self.take(order)


class TableBuilder:
    """Accumulates rows and freezes them into an immutable :class:`Table`.

    Used by the streaming maintenance algorithms (Section 6 of the paper) to
    materialize sample relations once maintenance has settled.
    """

    def __init__(self, schema: Schema):
        self._schema = schema
        self._rows: List[Tuple] = []

    @property
    def schema(self) -> Schema:
        return self._schema

    def __len__(self) -> int:
        return len(self._rows)

    def append(self, row: Sequence) -> None:
        """Append one row (values in schema order)."""
        if len(row) != len(self._schema):
            raise SchemaError(
                f"row arity {len(row)} != schema arity {len(self._schema)}"
            )
        self._rows.append(tuple(row))

    def extend(self, rows: Iterable[Sequence]) -> None:
        for row in rows:
            self.append(row)

    def build(self) -> Table:
        """Freeze accumulated rows into a table."""
        return Table.from_rows(self._schema, self._rows)
