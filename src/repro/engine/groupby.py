"""Hash group-by executor.

Implements the engine's multi-key, multi-aggregate GROUP BY: compute a dense
group-id per row for the key columns, then reduce each aggregate input per
group (see :mod:`repro.engine.aggregates`).
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

import numpy as np

from .aggregates import Aggregate, grouped_reduce
from .schema import Column, ColumnType, Schema
from .table import Table

__all__ = ["group_ids_for", "group_by", "distinct"]


def group_ids_for(
    table: Table, key_columns: Sequence[str]
) -> Tuple[np.ndarray, List[Tuple], int]:
    """Compute a dense group id per row for the given key columns.

    Returns:
        ``(group_ids, group_keys, num_groups)`` where ``group_ids`` maps each
        row to ``[0, num_groups)`` and ``group_keys[i]`` is the tuple of key
        values for group ``i``.  With no key columns, every row belongs to the
        single group ``()`` (the paper's "no group-bys" case).
    """
    if not key_columns:
        return np.zeros(table.num_rows, dtype=np.int64), [()], 1
    arrays = [table.column(name) for name in key_columns]
    if len(arrays) == 1:
        uniques, ids = np.unique(arrays[0], return_inverse=True)
        keys = [(value,) for value in uniques.tolist()]
        return ids.astype(np.int64), keys, len(keys)
    # Multi-key: unique over a structured view of the key columns.
    record = np.rec.fromarrays(arrays)
    uniques, ids = np.unique(record, return_inverse=True)
    keys = [tuple(np.asarray(u).tolist()) for u in uniques]
    return ids.astype(np.int64), keys, len(keys)


def group_by(
    table: Table,
    key_columns: Sequence[str],
    aggregates: Sequence[Aggregate],
) -> Table:
    """Group ``table`` by ``key_columns`` and compute ``aggregates``.

    The result schema is the key columns (original types) followed by one
    FLOAT column per aggregate, named by its alias.  With empty
    ``key_columns`` the result has a single row.
    """
    group_ids, group_keys, num_groups = group_ids_for(table, key_columns)

    out_columns = {}
    key_schema_cols = []
    for pos, name in enumerate(key_columns):
        src = table.schema.column(name)
        key_schema_cols.append(Column(name, src.ctype))
        out_columns[name] = src.ctype.coerce([key[pos] for key in group_keys])

    agg_schema_cols = []
    for agg in aggregates:
        values = agg.evaluate_input(table)
        reduced = grouped_reduce(agg.func, values, group_ids, num_groups)
        agg_schema_cols.append(Column(agg.alias, ColumnType.FLOAT))
        out_columns[agg.alias] = reduced

    schema = Schema(key_schema_cols + agg_schema_cols)
    return Table(schema, out_columns)


def distinct(table: Table, key_columns: Sequence[str]) -> Table:
    """Distinct combinations of the key columns (sorted by unique order)."""
    __, group_keys, __ = group_ids_for(table, key_columns)
    schema = table.schema.project(key_columns)
    return Table.from_rows(schema, group_keys)
