"""Hash group-by executor.

Implements the engine's multi-key, multi-aggregate GROUP BY: compute a dense
group-id per row for the key columns, then reduce each aggregate input per
group (see :mod:`repro.engine.aggregates`).

The reduction is split into a *partial* phase (:func:`partial_group_by`:
local group keys plus mergeable :class:`~repro.engine.aggregates.AggregateState`
moments) and a *finalize* phase (:func:`finalize_group_by`).  The serial
:func:`group_by` is one partial immediately finalized; the parallel executor
runs one partial per partition and merges them with
:func:`merge_group_partials` first -- both paths share the same arithmetic.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

import numpy as np

from .aggregates import (
    Aggregate,
    AggregateState,
    finalize_state,
    merge_states,
    partial_reduce,
)
from .schema import Column, ColumnType, Schema
from .table import Table

__all__ = [
    "group_ids_for",
    "group_by",
    "distinct",
    "GroupByPartial",
    "partial_group_by",
    "merge_group_partials",
    "finalize_group_by",
]


def group_ids_for(
    table: Table, key_columns: Sequence[str]
) -> Tuple[np.ndarray, List[Tuple], int]:
    """Compute a dense group id per row for the given key columns.

    Returns:
        ``(group_ids, group_keys, num_groups)`` where ``group_ids`` maps each
        row to ``[0, num_groups)`` and ``group_keys[i]`` is the tuple of key
        values for group ``i``.  With no key columns, every row belongs to the
        single group ``()`` (the paper's "no group-bys" case).
    """
    if not key_columns:
        return np.zeros(table.num_rows, dtype=np.int64), [()], 1
    arrays = [table.column(name) for name in key_columns]
    if len(arrays) == 1:
        uniques, ids = np.unique(arrays[0], return_inverse=True)
        keys = [(value,) for value in uniques.tolist()]
        return ids.astype(np.int64), keys, len(keys)
    # Multi-key: unique over a structured view of the key columns.
    record = np.rec.fromarrays(arrays)
    uniques, ids = np.unique(record, return_inverse=True)
    keys = [tuple(np.asarray(u).tolist()) for u in uniques]
    return ids.astype(np.int64), keys, len(keys)


@dataclass
class GroupByPartial:
    """The mergeable result of grouping one partition.

    Attributes:
        key_columns: the grouping columns.
        group_keys: local group keys in dense-id order (sorted, as produced
            by :func:`group_ids_for`).
        states: per-aggregate-alias partial states, arrays aligned with
            ``group_keys``.
    """

    key_columns: Tuple[str, ...]
    group_keys: List[Tuple]
    states: Dict[str, AggregateState]

    @property
    def num_groups(self) -> int:
        return len(self.group_keys)


def partial_group_by(
    table: Table,
    key_columns: Sequence[str],
    aggregates: Sequence[Aggregate],
) -> GroupByPartial:
    """Group one partition into mergeable per-aggregate states."""
    group_ids, group_keys, num_groups = group_ids_for(table, key_columns)
    states = {}
    for agg in aggregates:
        values = agg.evaluate_input(table)
        states[agg.alias] = partial_reduce(
            agg.func, values, group_ids, num_groups
        )
    return GroupByPartial(tuple(key_columns), group_keys, states)


def merge_group_partials(
    partials: Sequence[GroupByPartial],
) -> GroupByPartial:
    """Merge partition-local partials over the union of their group keys.

    The merged key order is the sorted union, matching the sorted order
    :func:`group_ids_for` gives a single whole-table scan, so the parallel
    path emits groups in exactly the serial order.
    """
    if not partials:
        raise ValueError("merge_group_partials needs at least one partial")
    key_columns = partials[0].key_columns
    merged_keys = sorted({key for p in partials for key in p.group_keys})
    index_of = {key: i for i, key in enumerate(merged_keys)}
    index_maps = [
        np.fromiter(
            (index_of[key] for key in p.group_keys),
            dtype=np.int64,
            count=p.num_groups,
        )
        for p in partials
    ]
    aliases = list(partials[0].states)
    states = {
        alias: merge_states(
            [p.states[alias] for p in partials],
            index_maps,
            len(merged_keys),
        )
        for alias in aliases
    }
    return GroupByPartial(key_columns, merged_keys, states)


def finalize_group_by(
    partial: GroupByPartial,
    schema: Schema,
    aggregates: Sequence[Aggregate],
) -> Table:
    """Finalize a (merged) partial into the GROUP BY result table.

    ``schema`` is the *input* table's schema, used to type the key columns.
    """
    out_columns = {}
    key_schema_cols = []
    for pos, name in enumerate(partial.key_columns):
        src = schema.column(name)
        key_schema_cols.append(Column(name, src.ctype))
        out_columns[name] = src.ctype.coerce(
            [key[pos] for key in partial.group_keys]
        )
    agg_schema_cols = []
    for agg in aggregates:
        agg_schema_cols.append(Column(agg.alias, ColumnType.FLOAT))
        out_columns[agg.alias] = finalize_state(partial.states[agg.alias])
    return Table(Schema(key_schema_cols + agg_schema_cols), out_columns)


def group_by(
    table: Table,
    key_columns: Sequence[str],
    aggregates: Sequence[Aggregate],
) -> Table:
    """Group ``table`` by ``key_columns`` and compute ``aggregates``.

    The result schema is the key columns (original types) followed by one
    FLOAT column per aggregate, named by its alias.  With empty
    ``key_columns`` the result has a single row.
    """
    return finalize_group_by(
        partial_group_by(table, key_columns, aggregates),
        table.schema,
        aggregates,
    )


def distinct(table: Table, key_columns: Sequence[str]) -> Table:
    """Distinct combinations of the key columns (sorted by unique order)."""
    __, group_keys, __ = group_ids_for(table, key_columns)
    schema = table.schema.project(key_columns)
    return Table.from_rows(schema, group_keys)
