"""Render logical queries, predicates, and expressions back to SQL text.

The paper presents its rewriting strategies *as SQL* (Figures 2, 8-13);
``render_query`` lets Aqua's ``explain`` show the user exactly what will
run against the synopsis relations, in the same shape as those figures.

Round-trip guarantee: ``parse_query(render_query(q))`` produces a query
that executes identically to ``q`` (asserted by property tests).
"""

from __future__ import annotations

from typing import Union

from .aggregates import Aggregate
from .expressions import BinaryOp, Col, Expression, Func, Lit, UnaryOp
from .predicates import (
    And,
    Between,
    Comparison,
    InList,
    Not,
    Or,
    Predicate,
    TruePredicate,
)
from .query import Projection, Query

__all__ = ["render_expression", "render_predicate", "render_query"]


def _render_literal(value) -> str:
    if isinstance(value, str):
        escaped = value.replace("'", "''")
        return f"'{escaped}'"
    if isinstance(value, float) and value == int(value) and abs(value) < 1e15:
        return str(value)  # keep the .0 so it re-parses as float
    return repr(value)


def render_expression(expr: Expression) -> str:
    """Render a scalar expression (parenthesized for safety)."""
    if isinstance(expr, Col):
        return expr.name
    if isinstance(expr, Lit):
        return _render_literal(expr.value)
    if isinstance(expr, BinaryOp):
        left = render_expression(expr.left)
        right = render_expression(expr.right)
        return f"({left} {expr.op} {right})"
    if isinstance(expr, UnaryOp):
        return f"(-{render_expression(expr.operand)})"
    if isinstance(expr, Func):
        return f"{expr.name}({render_expression(expr.operand)})"
    raise TypeError(f"cannot render expression {expr!r}")


def render_predicate(predicate: Predicate) -> str:
    """Render a predicate tree."""
    if isinstance(predicate, Comparison):
        return (
            f"{render_expression(predicate.left)} {predicate.op} "
            f"{render_expression(predicate.right)}"
        )
    if isinstance(predicate, Between):
        return (
            f"{render_expression(predicate.expr)} BETWEEN "
            f"{render_expression(predicate.low)} AND "
            f"{render_expression(predicate.high)}"
        )
    if isinstance(predicate, InList):
        values = ", ".join(_render_literal(v) for v in predicate.values)
        return f"{render_expression(predicate.expr)} IN ({values})"
    if isinstance(predicate, And):
        return (
            f"({render_predicate(predicate.left)} AND "
            f"{render_predicate(predicate.right)})"
        )
    if isinstance(predicate, Or):
        return (
            f"({render_predicate(predicate.left)} OR "
            f"{render_predicate(predicate.right)})"
        )
    if isinstance(predicate, Not):
        return f"NOT ({render_predicate(predicate.operand)})"
    if isinstance(predicate, TruePredicate):
        return "1 = 1"
    raise TypeError(f"cannot render predicate {predicate!r}")


def _render_select_item(item: Union[Projection, Aggregate]) -> str:
    if isinstance(item, Aggregate):
        if item.func == "count" and item.expr == Lit(1):
            inner = "count(*)"
        else:
            inner = f"{item.func}({render_expression(item.expr)})"
        return f"{inner} AS {item.alias}"
    rendered = render_expression(item.expr)
    if isinstance(item.expr, Col) and item.expr.name == item.alias:
        return rendered
    return f"{rendered} AS {item.alias}"


def render_query(query: Query, indent: str = "") -> str:
    """Render a query as SQL text (nested subqueries indented)."""
    parts = [
        indent
        + "SELECT "
        + ", ".join(_render_select_item(item) for item in query.select)
    ]
    if isinstance(query.from_item, Query):
        inner = render_query(query.from_item, indent + "      ")
        parts.append(f"{indent}FROM (\n{inner}\n{indent})")
    else:
        parts.append(f"{indent}FROM {query.from_item}")
    if query.where is not None:
        parts.append(f"{indent}WHERE {render_predicate(query.where)}")
    if query.group_by:
        parts.append(f"{indent}GROUP BY " + ", ".join(query.group_by))
    if query.having is not None:
        parts.append(f"{indent}HAVING {render_predicate(query.having)}")
    if query.order_by:
        parts.append(f"{indent}ORDER BY " + ", ".join(query.order_by))
    if query.limit is not None:
        parts.append(f"{indent}LIMIT {query.limit}")
    return "\n".join(parts)
