"""A small SQL parser for the dialect used throughout the paper.

Grammar (case-insensitive keywords)::

    query       := SELECT select_list FROM from_item
                   (WHERE predicate)? (GROUP BY columns)?
                   (HAVING predicate)? (ORDER BY columns)? (LIMIT n)?
    select_list := select_item (',' select_item)*
    select_item := expr (AS? identifier)?
    from_item   := identifier | '(' query ')' (AS? identifier)?
    predicate   := or_pred
    or_pred     := and_pred (OR and_pred)*
    and_pred    := not_pred (AND not_pred)*
    not_pred    := NOT not_pred | base_pred
    base_pred   := '(' predicate ')'
                 | expr BETWEEN expr AND expr
                 | expr IN '(' literal (',' literal)* ')'
                 | expr comparator expr
    expr        := term (('+'|'-') term)*
    term        := factor (('*'|'/') factor)*
    factor      := '-' factor | primary
    primary     := number | string | identifier ('(' (expr | '*') ')')?
                 | '(' expr ')'

Aggregate calls (``sum``, ``count``, ``avg``, ``min``, ``max``, ``var``) are
recognized in the select list; other function names fall back to the scalar
function whitelist.  ``count(*)`` is supported.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import List, Optional, Tuple, Union

from .aggregates import Aggregate, _SUPPORTED as _AGG_NAMES
from .expressions import BinaryOp, Col, Expression, Func, Lit, UnaryOp
from .predicates import (
    Between,
    Comparison,
    InList,
    Predicate,
    And,
    Or,
    Not,
)
from .query import Projection, Query, QueryError

__all__ = ["parse_query", "SqlError"]


class SqlError(ValueError):
    """Raised for lexical or syntactic errors in SQL text."""


_KEYWORDS = {
    "select",
    "from",
    "where",
    "group",
    "having",
    "limit",
    "order",
    "by",
    "as",
    "and",
    "or",
    "not",
    "between",
    "in",
}

_TOKEN_RE = re.compile(
    r"""
    (?P<ws>\s+)
  | (?P<number>\d+\.\d*(?:[eE][+-]?\d+)?|\.\d+(?:[eE][+-]?\d+)?|\d+(?:[eE][+-]?\d+)?)
  | (?P<string>'(?:[^']|'')*')
  | (?P<ident>[A-Za-z_][A-Za-z_0-9]*)
  | (?P<op><=|>=|!=|<>|=|<|>|\(|\)|,|\*|\+|-|/|;)
    """,
    re.VERBOSE,
)


@dataclass(frozen=True)
class Token:
    kind: str  # "number" | "string" | "ident" | "keyword" | "op" | "eof"
    text: str
    position: int


def tokenize(sql: str) -> List[Token]:
    """Split SQL text into tokens; raises :class:`SqlError` on bad input."""
    tokens: List[Token] = []
    pos = 0
    while pos < len(sql):
        match = _TOKEN_RE.match(sql, pos)
        if match is None:
            raise SqlError(f"unexpected character {sql[pos]!r} at offset {pos}")
        pos = match.end()
        if match.lastgroup == "ws":
            continue
        text = match.group()
        kind = match.lastgroup
        if kind == "ident" and text.lower() in _KEYWORDS:
            kind, text = "keyword", text.lower()
        if kind == "op" and text == ";":
            continue  # trailing semicolons are permitted and ignored
        tokens.append(Token(kind, text, match.start()))
    tokens.append(Token("eof", "", len(sql)))
    return tokens


class _Parser:
    def __init__(self, tokens: List[Token]):
        self._tokens = tokens
        self._pos = 0

    # -- token plumbing -----------------------------------------------------

    def _peek(self) -> Token:
        return self._tokens[self._pos]

    def _advance(self) -> Token:
        token = self._tokens[self._pos]
        self._pos += 1
        return token

    def _check(self, kind: str, text: Optional[str] = None) -> bool:
        token = self._peek()
        return token.kind == kind and (text is None or token.text == text)

    def _accept(self, kind: str, text: Optional[str] = None) -> Optional[Token]:
        if self._check(kind, text):
            return self._advance()
        return None

    def _expect(self, kind: str, text: Optional[str] = None) -> Token:
        token = self._accept(kind, text)
        if token is None:
            actual = self._peek()
            wanted = text or kind
            raise SqlError(
                f"expected {wanted!r} at offset {actual.position}, "
                f"got {actual.text!r}"
            )
        return token

    # -- grammar ------------------------------------------------------------

    def parse_query(self) -> Query:
        self._expect("keyword", "select")
        select = self._select_list()
        self._expect("keyword", "from")
        from_item = self._from_item()
        where = None
        if self._accept("keyword", "where"):
            where = self._predicate()
        group_by: Tuple[str, ...] = ()
        having = None
        order_by: Tuple[str, ...] = ()
        if self._accept("keyword", "group"):
            self._expect("keyword", "by")
            group_by = self._column_list()
        if self._accept("keyword", "having"):
            having = self._predicate()
        if self._accept("keyword", "order"):
            self._expect("keyword", "by")
            order_by = self._column_list()
        limit = None
        if self._accept("keyword", "limit"):
            token = self._expect("number")
            value = _parse_number(token.text)
            if not isinstance(value, int):
                raise SqlError(
                    f"LIMIT must be an integer at offset {token.position}"
                )
            limit = value
        try:
            return Query(
                select=tuple(select),
                from_item=from_item,
                where=where,
                group_by=group_by,
                having=having,
                order_by=order_by,
                limit=limit,
            )
        except QueryError as exc:
            raise SqlError(str(exc)) from exc

    def _select_list(self) -> List[Union[Projection, Aggregate]]:
        items = [self._select_item(0)]
        index = 1
        while self._accept("op", ","):
            items.append(self._select_item(index))
            index += 1
        return items

    def _select_item(self, index: int) -> Union[Projection, Aggregate]:
        item = self._expr_or_aggregate()
        alias = None
        if self._accept("keyword", "as"):
            alias = self._expect("ident").text
        elif self._check("ident"):
            alias = self._advance().text
        if isinstance(item, Aggregate):
            return Aggregate(item.func, item.expr, alias or item.alias)
        expr = item
        if alias is None:
            alias = expr.name if isinstance(expr, Col) else f"expr_{index}"
        return Projection(expr, alias)

    def _expr_or_aggregate(self) -> Union[Expression, Aggregate]:
        # Detect a top-level aggregate call: agg_name '(' ...
        token = self._peek()
        if (
            token.kind == "ident"
            and token.text.lower() in _AGG_NAMES
            and self._tokens[self._pos + 1].kind == "op"
            and self._tokens[self._pos + 1].text == "("
        ):
            func = self._advance().text.lower()
            self._expect("op", "(")
            if self._accept("op", "*"):
                if func != "count":
                    raise SqlError(f"'*' argument only allowed for count, not {func}")
                self._expect("op", ")")
                return Aggregate.count_star()
            inner = self._expr()
            self._expect("op", ")")
            default_alias = func
            return Aggregate(func, inner, default_alias)
        return self._expr()

    def _from_item(self) -> Union[str, Query]:
        if self._accept("op", "("):
            sub = self.parse_query()
            self._expect("op", ")")
            if self._accept("keyword", "as"):
                self._expect("ident")
            elif self._check("ident"):
                self._advance()
            return sub
        return self._expect("ident").text

    def _column_list(self) -> Tuple[str, ...]:
        names = [self._expect("ident").text]
        while self._accept("op", ","):
            names.append(self._expect("ident").text)
        return tuple(names)

    # predicates ------------------------------------------------------------

    def _predicate(self) -> Predicate:
        return self._or_pred()

    def _or_pred(self) -> Predicate:
        left = self._and_pred()
        while self._accept("keyword", "or"):
            left = Or(left, self._and_pred())
        return left

    def _and_pred(self) -> Predicate:
        left = self._not_pred()
        while self._accept("keyword", "and"):
            left = And(left, self._not_pred())
        return left

    def _not_pred(self) -> Predicate:
        if self._accept("keyword", "not"):
            return Not(self._not_pred())
        return self._base_pred()

    def _base_pred(self) -> Predicate:
        # '(' could open either a nested predicate or a parenthesized
        # expression; try predicate first and fall back.
        if self._check("op", "("):
            saved = self._pos
            self._advance()
            try:
                inner = self._predicate()
                self._expect("op", ")")
                return inner
            except SqlError:
                self._pos = saved
        expr = self._expr()
        if self._accept("keyword", "between"):
            low = self._expr()
            self._expect("keyword", "and")
            high = self._expr()
            return Between(expr, low, high)
        if self._accept("keyword", "in"):
            self._expect("op", "(")
            values = [self._literal()]
            while self._accept("op", ","):
                values.append(self._literal())
            self._expect("op", ")")
            return InList(expr, tuple(values))
        op_token = self._peek()
        if op_token.kind == "op" and op_token.text in ("=", "!=", "<>", "<", "<=", ">", ">="):
            self._advance()
            op = "!=" if op_token.text == "<>" else op_token.text
            return Comparison(op, expr, self._expr())
        raise SqlError(
            f"expected comparison operator at offset {op_token.position}, "
            f"got {op_token.text!r}"
        )

    def _literal(self) -> Union[int, float, str]:
        token = self._peek()
        if token.kind == "number":
            self._advance()
            return _parse_number(token.text)
        if token.kind == "string":
            self._advance()
            return _unquote(token.text)
        raise SqlError(f"expected literal at offset {token.position}")

    # expressions -----------------------------------------------------------

    def _expr(self) -> Expression:
        left = self._term()
        while True:
            if self._accept("op", "+"):
                left = BinaryOp("+", left, self._term())
            elif self._accept("op", "-"):
                left = BinaryOp("-", left, self._term())
            else:
                return left

    def _term(self) -> Expression:
        left = self._factor()
        while True:
            if self._accept("op", "*"):
                left = BinaryOp("*", left, self._factor())
            elif self._accept("op", "/"):
                left = BinaryOp("/", left, self._factor())
            else:
                return left

    def _factor(self) -> Expression:
        if self._accept("op", "-"):
            return UnaryOp("-", self._factor())
        return self._primary()

    def _primary(self) -> Expression:
        token = self._peek()
        if token.kind == "number":
            self._advance()
            return Lit(_parse_number(token.text))
        if token.kind == "string":
            self._advance()
            return Lit(_unquote(token.text))
        if token.kind == "ident":
            self._advance()
            if self._accept("op", "("):
                name = token.text.lower()
                inner = self._expr()
                self._expect("op", ")")
                try:
                    return Func(name, inner)
                except ValueError as exc:
                    raise SqlError(str(exc)) from exc
            return Col(token.text)
        if self._accept("op", "("):
            inner = self._expr()
            self._expect("op", ")")
            return inner
        raise SqlError(
            f"unexpected token {token.text!r} at offset {token.position}"
        )


def _parse_number(text: str) -> Union[int, float]:
    if re.fullmatch(r"\d+", text):
        return int(text)
    return float(text)


def _unquote(text: str) -> str:
    return text[1:-1].replace("''", "'")


def parse_query(sql: str) -> Query:
    """Parse SQL text into a logical :class:`~repro.engine.query.Query`."""
    parser = _Parser(tokenize(sql))
    query = parser.parse_query()
    trailing = parser._peek()
    if trailing.kind != "eof":
        raise SqlError(
            f"trailing input at offset {trailing.position}: {trailing.text!r}"
        )
    return query
