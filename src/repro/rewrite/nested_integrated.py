"""*Nested-integrated* rewriting (Figures 11 and 13).

Same physical layout as Integrated (per-tuple ``SF`` column) but the plan
first aggregates *within* each (answer group, SF) pair and multiplies by the
scale factor once per group rather than once per tuple::

    select A, B, sum(SQ * SF)
    from (select A, B, SF, sum(Q) as SQ
          from SampRel group by A, B, SF)
    group by A, B

Grouping by ``(A, B, SF)`` is the trick: tuples of the same stratum share an
SF, so the inner group-by splits each answer group by stratum exactly.  For
AVG the outer query computes ``sum(SQ*SF) / sum(SC*SF)`` where ``SC`` is the
inner per-group count (Figure 13).
"""

from __future__ import annotations

from typing import List, Union

from ..engine.aggregates import Aggregate
from ..engine.catalog import Catalog
from ..engine.expressions import Col
from ..engine.query import Projection, Query
from ..sampling.stratified import SF_COLUMN, StratifiedSample
from .base import InstalledSynopsis, RewriteError, RewriteStrategy
from .integrated import Integrated
from .plan import RatioColumn, RewrittenPlan

__all__ = ["NestedIntegrated"]


class NestedIntegrated(RewriteStrategy):
    """Per-tuple SF column; nested per-(group, stratum) pre-aggregation."""

    name = "nested_integrated"

    def __init__(self) -> None:
        self._layout = Integrated()

    def sample_table_name(self, base_name: str) -> str:
        return self._layout.sample_table_name(base_name)

    def install(
        self,
        sample: StratifiedSample,
        base_name: str,
        catalog: Catalog,
        replace: bool = False,
    ) -> InstalledSynopsis:
        inner = self._layout.install(sample, base_name, catalog, replace=replace)
        return InstalledSynopsis(
            strategy=self.name,
            base_name=base_name,
            grouping_columns=inner.grouping_columns,
            sample_name=inner.sample_name,
        )

    def plan(self, query: Query, synopsis: InstalledSynopsis) -> RewrittenPlan:
        self._check_query(query, synopsis)

        sf = Col(SF_COLUMN)
        inner_keys = tuple(query.group_by) + (SF_COLUMN,)
        inner_select: List[Union[Projection, Aggregate]] = [
            Projection(Col(name), name) for name in inner_keys
        ]
        outer_select: List[Union[Projection, Aggregate]] = []
        ratios: List[RatioColumn] = []
        counter = 0
        need_count = False

        for item in query.select:
            if isinstance(item, Projection):
                outer_select.append(item)
                continue
            if item.func == "sum":
                sq = f"__sq{counter}"
                counter += 1
                inner_select.append(Aggregate("sum", item.expr, sq))
                outer_select.append(Aggregate("sum", Col(sq) * sf, item.alias))
            elif item.func == "count":
                need_count = True
                outer_select.append(
                    Aggregate("sum", Col("__sc") * sf, item.alias)
                )
            elif item.func == "avg":
                sq = f"__sq{counter}"
                num = f"__num{counter}"
                den = f"__den{counter}"
                counter += 1
                need_count = True
                inner_select.append(Aggregate("sum", item.expr, sq))
                outer_select.append(Aggregate("sum", Col(sq) * sf, num))
                outer_select.append(Aggregate("sum", Col("__sc") * sf, den))
                ratios.append(RatioColumn(item.alias, num, den))
            elif item.func in ("min", "max"):
                mv = f"__mm{counter}"
                counter += 1
                inner_select.append(Aggregate(item.func, item.expr, mv))
                outer_select.append(Aggregate(item.func, Col(mv), item.alias))
            else:
                raise RewriteError(f"aggregate {item.func!r} has no rewrite rule")

        if need_count:
            inner_select.append(Aggregate.count_star("__sc"))

        inner = Query(
            select=tuple(inner_select),
            from_item=synopsis.sample_name,
            where=query.where,
            group_by=inner_keys,
        )
        outer = Query(
            select=tuple(outer_select),
            from_item=inner,
            where=None,
            group_by=query.group_by,
        )
        return RewrittenPlan(
            strategy=self.name,
            query=outer,
            output=tuple(query.output_aliases()),
            ratios=tuple(ratios),
            having=query.having,
            order_by=query.order_by,
            limit=query.limit,
        )
