"""Query rewriting strategies for biased samples (Section 5 of the paper)."""

from .base import (
    InstalledSynopsis,
    RewriteError,
    RewriteStrategy,
    scale_select_list,
)
from .integrated import Integrated
from .key_normalized import KeyNormalized
from .nested_integrated import NestedIntegrated
from .normalized import Normalized
from .plan import JoinSpec, RatioColumn, RewrittenPlan

ALL_STRATEGIES = (Integrated, NestedIntegrated, Normalized, KeyNormalized)


def strategy_by_name(name: str) -> RewriteStrategy:
    """Instantiate a rewrite strategy from its paper name.

    Lookup is case-insensitive and ignores surrounding whitespace, so
    shell / config spellings like ``"Integrated"`` work.
    """
    wanted = name.strip().lower()
    for cls in ALL_STRATEGIES:
        if cls.name.lower() == wanted:
            return cls()
    raise ValueError(
        f"unknown rewrite strategy {name!r}; "
        f"choose from {[cls.name for cls in ALL_STRATEGIES]}"
    )


def recommend_strategy(
    updates_per_query: float, num_groups_hint: int = 1000
) -> RewriteStrategy:
    """The Section 7.3.3 recommendation, as code.

    "If the update frequencies are moderate to rare, Integrated (or
    Nested-integrated) should be the technique(s) of choice.  Only the
    (rare) high frequency update case warrants ... Key-normalized."

    Args:
        updates_per_query: warehouse inserts per approximate query answered.
            Below ~1000 counts as "moderate to rare" -- the sample is
            re-materialized far less often than it is queried.
        num_groups_hint: expected group count; at small group counts
            Nested-integrated's per-group scaling wins (Figure 18's left
            side), at large counts plain Integrated does.
    """
    if updates_per_query < 0:
        raise ValueError(
            f"updates_per_query must be >= 0, got {updates_per_query}"
        )
    if updates_per_query > 1000:
        return KeyNormalized()
    if num_groups_hint <= 1000:
        return NestedIntegrated()
    return Integrated()


__all__ = [
    "ALL_STRATEGIES",
    "InstalledSynopsis",
    "Integrated",
    "JoinSpec",
    "KeyNormalized",
    "NestedIntegrated",
    "Normalized",
    "RatioColumn",
    "RewriteError",
    "RewriteStrategy",
    "RewrittenPlan",
    "recommend_strategy",
    "scale_select_list",
    "strategy_by_name",
]
