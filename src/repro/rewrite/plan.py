"""Executable rewritten-query plans.

A rewrite strategy turns a user query into a :class:`RewrittenPlan`: a
logical query over the strategy's sample relation(s), optionally preceded by
a join (Normalized / Key-normalized) and followed by post-aggregation ratio
columns (the ``sum(Q*SF)/sum(SF)`` of AVG rewrites).

Keeping the join as an explicit plan step -- rather than extending the
engine's FROM clause -- mirrors what the paper measures: Normalized pays for
a join *at query time*, and that cost is exactly what Experiments 3 and 4
compare.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..engine.catalog import Catalog
from ..engine.executor import execute, execute_on_table
from ..engine.join import hash_join
from ..engine.predicates import Predicate
from ..engine.query import Query
from ..engine.schema import Column, ColumnType, Schema
from ..engine.table import Table
from ..obs.trace import NULL_TRACER

__all__ = ["JoinSpec", "RatioColumn", "RewrittenPlan"]


@dataclass(frozen=True)
class JoinSpec:
    """A pre-aggregation hash join between two catalog tables."""

    left: str
    right: str
    left_on: Tuple[str, ...]
    right_on: Tuple[str, ...]


@dataclass(frozen=True)
class RatioColumn:
    """A post-aggregation derived column ``alias = numerator / denominator``.

    Used for AVG rewrites, where the unbiased estimate is the ratio of two
    scaled aggregates computed in the same pass.
    """

    alias: str
    numerator: str
    denominator: str


@dataclass(frozen=True)
class RewrittenPlan:
    """A fully-specified executable rewrite of a user query.

    Attributes:
        strategy: name of the rewrite strategy that built the plan.
        query: the aggregation query.  If ``join`` is set, the query runs
            over the join result (its FROM name is ignored); otherwise it
            runs against the catalog as-is (possibly nested).
        join: optional pre-aggregation join step.
        ratios: post-aggregation ratio columns to compute.
        output: final output aliases in order (internal columns consumed by
            ratios are dropped unless listed here).
        having: the user query's HAVING predicate, applied to the *scaled*
            answer (after ratios) -- SQL semantics demand the filter sees
            the estimates the user asked for, not internal sums.
        order_by: the user query's ORDER BY, applied to the final answer.
        limit: the user query's LIMIT, applied last.
    """

    strategy: str
    query: Query
    output: Tuple[str, ...]
    join: Optional[JoinSpec] = None
    ratios: Tuple[RatioColumn, ...] = ()
    having: Optional[Predicate] = None
    order_by: Tuple[str, ...] = ()
    limit: Optional[int] = None

    def describe(self) -> str:
        """Human-readable plan in the style of the paper's Figures 8-11."""
        from ..engine.render import render_predicate, render_query

        lines = [f"-- rewrite strategy: {self.strategy}"]
        if self.join is not None:
            lines.append(
                f"-- join {self.join.left} WITH {self.join.right} ON "
                + " AND ".join(
                    f"{l} = {r}"
                    for l, r in zip(self.join.left_on, self.join.right_on)
                )
            )
        lines.append(render_query(self.query))
        for ratio in self.ratios:
            lines.append(
                f"-- then {ratio.alias} = {ratio.numerator} / "
                f"{ratio.denominator}"
            )
        if self.having is not None:
            lines.append(f"-- then HAVING {render_predicate(self.having)}")
        if self.order_by:
            lines.append("-- then ORDER BY " + ", ".join(self.order_by))
        if self.limit is not None:
            lines.append(f"-- then LIMIT {self.limit}")
        return "\n".join(lines)

    def execute(self, catalog: Catalog, tracer=None) -> Table:
        """Run the plan against ``catalog`` and return the answer table.

        Args:
            catalog: the catalog holding the synopsis relations.
            tracer: optional :class:`~repro.obs.Tracer`; when enabled, the
                sample scan and the scale-up/finalize step get their own
                spans (``scan`` / ``scale_up``) nested under the caller's
                current span.
        """
        if tracer is None:
            tracer = NULL_TRACER
        with tracer.span("scan", strategy=self.strategy) as scan_span:
            if self.join is not None:
                joined = hash_join(
                    catalog.get(self.join.left),
                    catalog.get(self.join.right),
                    list(self.join.left_on),
                    list(self.join.right_on),
                )
                result = execute_on_table(self.query, joined)
            else:
                result = execute(self.query, catalog)
            scan_span.set(rows=result.num_rows)
        with tracer.span("scale_up"):
            return self._finalize(result)

    def _finalize(self, result: Table) -> Table:
        """Scale-up ratios plus HAVING / ORDER BY / LIMIT finishing."""
        if self.ratios:
            columns = dict(result.columns())
            schema_cols = {c.name: c for c in result.schema}
            for ratio in self.ratios:
                num = np.asarray(columns[ratio.numerator], dtype=np.float64)
                den = np.asarray(columns[ratio.denominator], dtype=np.float64)
                with np.errstate(divide="ignore", invalid="ignore"):
                    values = np.where(den != 0, num / den, np.nan)
                columns[ratio.alias] = values
                schema_cols[ratio.alias] = Column(ratio.alias, ColumnType.FLOAT)
            schema = Schema([schema_cols[name] for name in self.output])
            result = Table(
                schema, {name: columns[name] for name in self.output}
            )
        else:
            result = result.project(list(self.output))
        if self.having is not None:
            result = result.filter(self.having.evaluate(result))
        if self.order_by:
            result = result.sort_by(list(self.order_by))
        if self.limit is not None:
            result = result.head(self.limit)
        return result
