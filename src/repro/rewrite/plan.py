"""Executable rewritten-query plans.

A rewrite strategy turns a user query into a :class:`RewrittenPlan`: a
logical query over the strategy's sample relation(s), optionally preceded by
a join (Normalized / Key-normalized) and followed by post-aggregation ratio
columns (the ``sum(Q*SF)/sum(SF)`` of AVG rewrites).

Keeping the join as an explicit plan step -- rather than extending the
engine's FROM clause -- mirrors what the paper measures: Normalized pays for
a join *at query time*, and that cost is exactly what Experiments 3 and 4
compare.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

from ..engine.catalog import Catalog
from ..engine.predicates import Predicate
from ..engine.query import Query
from ..engine.table import Table

__all__ = ["JoinSpec", "RatioColumn", "RewrittenPlan"]


@dataclass(frozen=True)
class JoinSpec:
    """A pre-aggregation hash join between two catalog tables."""

    left: str
    right: str
    left_on: Tuple[str, ...]
    right_on: Tuple[str, ...]


@dataclass(frozen=True)
class RatioColumn:
    """A post-aggregation derived column ``alias = numerator / denominator``.

    Used for AVG rewrites, where the unbiased estimate is the ratio of two
    scaled aggregates computed in the same pass.
    """

    alias: str
    numerator: str
    denominator: str


@dataclass(frozen=True)
class RewrittenPlan:
    """A fully-specified executable rewrite of a user query.

    Attributes:
        strategy: name of the rewrite strategy that built the plan.
        query: the aggregation query.  If ``join`` is set, the query runs
            over the join result (its FROM name is ignored); otherwise it
            runs against the catalog as-is (possibly nested).
        join: optional pre-aggregation join step.
        ratios: post-aggregation ratio columns to compute.
        output: final output aliases in order (internal columns consumed by
            ratios are dropped unless listed here).
        having: the user query's HAVING predicate, applied to the *scaled*
            answer (after ratios) -- SQL semantics demand the filter sees
            the estimates the user asked for, not internal sums.
        order_by: the user query's ORDER BY, applied to the final answer.
        limit: the user query's LIMIT, applied last.
    """

    strategy: str
    query: Query
    output: Tuple[str, ...]
    join: Optional[JoinSpec] = None
    ratios: Tuple[RatioColumn, ...] = ()
    having: Optional[Predicate] = None
    order_by: Tuple[str, ...] = ()
    limit: Optional[int] = None

    def describe(self) -> str:
        """Human-readable plan in the style of the paper's Figures 8-11."""
        from ..engine.render import render_predicate, render_query

        lines = [f"-- rewrite strategy: {self.strategy}"]
        if self.join is not None:
            lines.append(
                f"-- join {self.join.left} WITH {self.join.right} ON "
                + " AND ".join(
                    f"{l} = {r}"
                    for l, r in zip(self.join.left_on, self.join.right_on)
                )
            )
        lines.append(render_query(self.query))
        for ratio in self.ratios:
            lines.append(
                f"-- then {ratio.alias} = {ratio.numerator} / "
                f"{ratio.denominator}"
            )
        if self.having is not None:
            lines.append(f"-- then HAVING {render_predicate(self.having)}")
        if self.order_by:
            lines.append("-- then ORDER BY " + ", ".join(self.order_by))
        if self.limit is not None:
            lines.append(f"-- then LIMIT {self.limit}")
        return "\n".join(lines)

    def to_logical(self, catalog: Optional[Catalog] = None):
        """Lower this spec to a logical :class:`~repro.plan.logical.Plan`.

        Passing the catalog stamps ``table_columns`` hints onto the Scan
        leaves, which is what lets the optimizer push predicates through
        the pre-aggregation join and prune unreferenced sample columns.
        """
        from ..plan.planner import lower_rewritten

        return lower_rewritten(self, catalog)

    def execute(
        self, catalog: Catalog, tracer=None, parallel=None
    ) -> Table:
        """Run the plan against ``catalog`` and return the answer table.

        The spec is lowered to the shared plan IR, optimized, and executed
        by the physical plan executor, so strategy execution takes exactly
        the same operator path as exact answers and guard fallbacks.

        Args:
            catalog: the catalog holding the synopsis relations.
            tracer: optional :class:`~repro.obs.Tracer`; each operator gets
                an ``op_<kind>`` span nested under the caller's span.
            parallel: optional
                :class:`~repro.engine.executor.ParallelExecutor` for
                partitioned GroupBy execution.
        """
        from ..plan.optimizer import optimize
        from ..plan.physical import execute_plan

        plan = optimize(self.to_logical(catalog))
        return execute_plan(plan, catalog, parallel=parallel, tracer=tracer)
