"""*Key-normalized* rewriting (Figure 10).

Like Normalized, but each stratum is identified by a compact integer group
id: the sample relation carries a ``GID`` column and the auxiliary relation
is ``AuxRel(GID, SF)``.  The join predicate involves a single integer
attribute instead of all the grouping columns, which is why the paper
measures it slightly faster than Normalized.
"""

from __future__ import annotations

from ..engine.catalog import Catalog
from ..engine.query import Query
from ..sampling.stratified import GID_COLUMN, StratifiedSample
from .base import InstalledSynopsis, RewriteStrategy, scale_select_list
from .plan import JoinSpec, RatioColumn, RewrittenPlan

__all__ = ["KeyNormalized"]


class KeyNormalized(RewriteStrategy):
    """AuxRel keyed by an integer GID; single-attribute join."""

    name = "key_normalized"

    def sample_table_name(self, base_name: str) -> str:
        return f"bsk_{base_name}"

    def aux_table_name(self, base_name: str) -> str:
        return f"auxk_{base_name}"

    def install(
        self,
        sample: StratifiedSample,
        base_name: str,
        catalog: Catalog,
        replace: bool = False,
    ) -> InstalledSynopsis:
        samp_rel, aux_rel = sample.key_normalized_relations()
        sample_name = self.sample_table_name(base_name)
        aux_name = self.aux_table_name(base_name)
        catalog.register(sample_name, samp_rel, replace=replace)
        catalog.register(aux_name, aux_rel, replace=replace)
        return InstalledSynopsis(
            strategy=self.name,
            base_name=base_name,
            grouping_columns=sample.grouping_columns,
            sample_name=sample_name,
            aux_name=aux_name,
        )

    def plan(self, query: Query, synopsis: InstalledSynopsis) -> RewrittenPlan:
        self._check_query(query, synopsis)
        select, ratio_triples = scale_select_list(query)
        rewritten = Query(
            select=tuple(select),
            from_item=synopsis.sample_name,
            where=query.where,
            group_by=query.group_by,
        )
        assert synopsis.aux_name is not None
        join = JoinSpec(
            left=synopsis.sample_name,
            right=synopsis.aux_name,
            left_on=(GID_COLUMN,),
            right_on=(GID_COLUMN,),
        )
        return RewrittenPlan(
            strategy=self.name,
            query=rewritten,
            output=tuple(query.output_aliases()),
            join=join,
            ratios=tuple(RatioColumn(*t) for t in ratio_triples),
            having=query.having,
            order_by=query.order_by,
            limit=query.limit,
        )
