"""*Normalized* rewriting (Figure 9).

The sample relation stores no scale factors; a separate auxiliary relation
``AuxRel(grouping columns..., SF)`` holds one row per stratum.  Query
execution joins ``SampRel ⋈ AuxRel`` on the grouping columns and then
aggregates as Integrated would.  Maintenance is cheap -- a rate change
touches one AuxRel row -- but every query pays the join, and the join
predicate spans all the grouping columns.
"""

from __future__ import annotations

from ..engine.catalog import Catalog
from ..engine.query import Query
from ..sampling.stratified import StratifiedSample
from .base import InstalledSynopsis, RewriteStrategy, scale_select_list
from .plan import JoinSpec, RatioColumn, RewrittenPlan

__all__ = ["Normalized"]


class Normalized(RewriteStrategy):
    """AuxRel keyed by the grouping columns; join at query time."""

    name = "normalized"

    def sample_table_name(self, base_name: str) -> str:
        return f"bsn_{base_name}"

    def aux_table_name(self, base_name: str) -> str:
        return f"auxn_{base_name}"

    def install(
        self,
        sample: StratifiedSample,
        base_name: str,
        catalog: Catalog,
        replace: bool = False,
    ) -> InstalledSynopsis:
        samp_rel, aux_rel = sample.normalized_relations()
        sample_name = self.sample_table_name(base_name)
        aux_name = self.aux_table_name(base_name)
        catalog.register(sample_name, samp_rel, replace=replace)
        catalog.register(aux_name, aux_rel, replace=replace)
        return InstalledSynopsis(
            strategy=self.name,
            base_name=base_name,
            grouping_columns=sample.grouping_columns,
            sample_name=sample_name,
            aux_name=aux_name,
        )

    def plan(self, query: Query, synopsis: InstalledSynopsis) -> RewrittenPlan:
        self._check_query(query, synopsis)
        select, ratio_triples = scale_select_list(query)
        rewritten = Query(
            select=tuple(select),
            from_item=synopsis.sample_name,  # informational; join provides rows
            where=query.where,
            group_by=query.group_by,
        )
        assert synopsis.aux_name is not None
        join = JoinSpec(
            left=synopsis.sample_name,
            right=synopsis.aux_name,
            left_on=synopsis.grouping_columns,
            right_on=synopsis.grouping_columns,
        )
        return RewrittenPlan(
            strategy=self.name,
            query=rewritten,
            output=tuple(query.output_aliases()),
            join=join,
            ratios=tuple(RatioColumn(*t) for t in ratio_triples),
            having=query.having,
            order_by=query.order_by,
            limit=query.limit,
        )
