"""*Integrated* rewriting (Figure 8).

The scale factor is stored as an extra ``SF`` column on every sample tuple.
Rewriting is then purely textual -- ``sum(Q)`` becomes ``sum(Q*SF)`` -- and
execution needs no join.  The costs: one multiplication per tuple at query
time, one float of storage per tuple, and expensive maintenance (an
insert that changes a stratum's rate must update the SF of *all* tuples in
that stratum).
"""

from __future__ import annotations

from ..engine.catalog import Catalog
from ..engine.query import Query
from ..sampling.stratified import StratifiedSample
from .base import InstalledSynopsis, RewriteStrategy, scale_select_list
from .plan import RatioColumn, RewrittenPlan

__all__ = ["Integrated"]


class Integrated(RewriteStrategy):
    """Per-tuple SF column; flat scaled aggregation."""

    name = "integrated"

    def sample_table_name(self, base_name: str) -> str:
        return f"bs_{base_name}"

    def install(
        self,
        sample: StratifiedSample,
        base_name: str,
        catalog: Catalog,
        replace: bool = False,
    ) -> InstalledSynopsis:
        table = sample.integrated_relation()
        name = self.sample_table_name(base_name)
        catalog.register(name, table, replace=replace)
        return InstalledSynopsis(
            strategy=self.name,
            base_name=base_name,
            grouping_columns=sample.grouping_columns,
            sample_name=name,
        )

    def plan(self, query: Query, synopsis: InstalledSynopsis) -> RewrittenPlan:
        self._check_query(query, synopsis)
        select, ratio_triples = scale_select_list(query)
        rewritten = Query(
            select=tuple(select),
            from_item=synopsis.sample_name,
            where=query.where,
            group_by=query.group_by,
            order_by=(),
        )
        return RewrittenPlan(
            strategy=self.name,
            query=rewritten,
            output=tuple(query.output_aliases()),
            ratios=tuple(RatioColumn(*t) for t in ratio_triples),
            having=query.having,
            order_by=query.order_by,
            limit=query.limit,
        )
