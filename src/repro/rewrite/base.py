"""Rewrite strategy interface and shared scaling logic.

Section 5.2 of the paper: all four strategies must (a) associate each sample
tuple with its stratum's *ScaleFactor* and (b) scale aggregates --
``SUM(Q) -> sum(Q*SF)``, ``COUNT(*) -> sum(SF)``,
``AVG(Q) -> sum(Q*SF)/sum(SF)``.  They differ in *where* the scale factor
lives (inline column vs. auxiliary relation) and *when* the multiplication
happens (per tuple vs. per group).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import List, Optional, Tuple, Union

from ..engine.aggregates import Aggregate
from ..engine.catalog import Catalog
from ..engine.expressions import Col
from ..engine.query import Projection, Query
from ..errors import AquaError
from ..sampling.stratified import SF_COLUMN, StratifiedSample

__all__ = [
    "RewriteError",
    "InstalledSynopsis",
    "RewriteStrategy",
    "scale_select_list",
]


class RewriteError(AquaError, ValueError):
    """Raised when a user query cannot be rewritten.

    Part of the :class:`~repro.errors.AquaError` taxonomy so middleware
    callers can catch one base class; still a :class:`ValueError` for
    backwards compatibility with pre-taxonomy callers.
    """


@dataclass(frozen=True)
class InstalledSynopsis:
    """Metadata for a sample relation set installed in the catalog."""

    strategy: str
    base_name: str
    grouping_columns: Tuple[str, ...]
    sample_name: str
    aux_name: Optional[str] = None


class RewriteStrategy(ABC):
    """One of the paper's four rewriting strategies."""

    name: str = "abstract"

    @abstractmethod
    def install(
        self,
        sample: StratifiedSample,
        base_name: str,
        catalog: Catalog,
        replace: bool = False,
    ) -> InstalledSynopsis:
        """Materialize the strategy's sample relation(s) into ``catalog``."""

    @abstractmethod
    def plan(self, query: Query, synopsis: InstalledSynopsis):
        """Rewrite a user ``query`` into an executable plan."""

    def _check_query(self, query: Query, synopsis: InstalledSynopsis) -> None:
        if query.from_item != synopsis.base_name:
            raise RewriteError(
                f"query is over {query.from_item!r}, synopsis covers "
                f"{synopsis.base_name!r}"
            )
        if not query.has_aggregates():
            raise RewriteError(
                "only aggregate queries can be answered approximately"
            )
        for alias in query.output_aliases():
            if alias.startswith("__"):
                raise RewriteError(
                    f"output alias {alias!r} collides with internal names"
                )


def scale_select_list(
    query: Query,
) -> Tuple[List[Union[Projection, Aggregate]], List[Tuple[str, str, str]]]:
    """Scale a user select list for a flat (non-nested) rewrite.

    Returns ``(select_items, ratios)`` where ``select_items`` replaces each
    user aggregate with its scaled counterpart over a relation carrying an
    ``SF`` column, and ``ratios`` lists ``(alias, numerator, denominator)``
    triples for AVG rewrites.

    MIN and MAX pass through unscaled: the sample extremum is the standard
    (biased) estimator and no scale-up applies.
    """
    select: List[Union[Projection, Aggregate]] = []
    ratios: List[Tuple[str, str, str]] = []
    sf = Col(SF_COLUMN)
    counter = 0
    for item in query.select:
        if isinstance(item, Projection):
            select.append(item)
            continue
        if item.func == "sum":
            select.append(Aggregate("sum", item.expr * sf, item.alias))
        elif item.func == "count":
            select.append(Aggregate("sum", sf, item.alias))
        elif item.func == "avg":
            num = f"__num{counter}"
            den = f"__den{counter}"
            counter += 1
            select.append(Aggregate("sum", item.expr * sf, num))
            select.append(Aggregate("sum", sf, den))
            ratios.append((item.alias, num, den))
        elif item.func in ("min", "max"):
            select.append(item)
        else:
            raise RewriteError(
                f"aggregate {item.func!r} has no rewrite rule"
            )
    return select, ratios
