"""Declarative SLOs with Google-SRE multi-window burn-rate alerting.

An :class:`SLO` states the promise ("99% of served answers keep their
error bound", "99% of answers finish under 250 ms", "at most 5% of
answers are degraded"); an :class:`SLOMonitor` counts good/bad events
into time-bucketed rolling windows on an injectable clock and evaluates
**burn rate** -- the ratio of the observed bad fraction to the error
budget (``1 - objective``).  Burn rate 1 means the budget is consumed
exactly at the rate the objective allows; 14.4 means a 30-day budget
would be gone in two days.

Alerting follows the SRE workbook's multi-window pattern: a rule fires
only when *both* a long window and a short window exceed the burn-rate
threshold.  The long window gives statistical confidence, the short
window makes the alert reset quickly once the problem stops.  The
default pair:

* **fast** (page): burn rate >= 14.4 over 1 h *and* over the last 5 min;
* **slow** (ticket): burn rate >= 6 over 6 h *and* over the last 30 min.

Everything takes an injectable clock, so tests drive window rollover
with :class:`~repro.serve.deadline.ManualClock` instead of sleeping.

:class:`ObservabilityReport` renders the monitor, the event log, and the
accuracy auditor into one text/JSON operator view (the shell's
``.report``).
"""

from __future__ import annotations

import json
import threading
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Tuple

__all__ = [
    "SLO",
    "BurnRateAlert",
    "BurnRateRule",
    "DEFAULT_BURN_RATE_RULES",
    "ObservabilityReport",
    "SLOMonitor",
    "SLOStatus",
    "WindowedCounts",
    "default_slos",
]

#: SLO kinds, keyed to the monitor's record_* entry points.
KIND_LATENCY = "latency"
KIND_BOUND_VIOLATION = "bound_violation_rate"
KIND_DEGRADED = "degraded_fraction"

_KINDS = (KIND_LATENCY, KIND_BOUND_VIOLATION, KIND_DEGRADED)


@dataclass(frozen=True)
class SLO:
    """One service-level objective over a stream of good/bad events.

    Attributes:
        name: unique handle ("p99_latency_ms", "bound_violation_rate"...).
        kind: which event stream feeds it -- ``"latency"`` (an answer is
            good when it beats ``threshold_ms``), ``"bound_violation_rate"``
            (an audited answer is good when no group violated its promised
            bound), or ``"degraded_fraction"`` (a served answer is good
            when it was not degraded).
        objective: target fraction of good events (0.99 leaves a 1% error
            budget).
        threshold_ms: the latency cut-off for ``kind="latency"``.
        description: free text for reports.
    """

    name: str
    kind: str
    objective: float
    threshold_ms: Optional[float] = None
    description: str = ""

    def __post_init__(self) -> None:
        if self.kind not in _KINDS:
            raise ValueError(
                f"SLO kind must be one of {_KINDS}, got {self.kind!r}"
            )
        if not 0.0 < self.objective < 1.0:
            raise ValueError(
                f"SLO objective must be in (0, 1), got {self.objective}"
            )
        if self.kind == KIND_LATENCY and (
            self.threshold_ms is None or self.threshold_ms <= 0
        ):
            raise ValueError(
                "latency SLOs need a positive threshold_ms, "
                f"got {self.threshold_ms}"
            )

    @property
    def error_budget(self) -> float:
        return 1.0 - self.objective


@dataclass(frozen=True)
class BurnRateRule:
    """Fire when burn rate exceeds ``threshold`` in BOTH windows."""

    name: str
    long_window_seconds: float
    short_window_seconds: float
    threshold: float
    severity: str = "page"

    def __post_init__(self) -> None:
        if self.short_window_seconds > self.long_window_seconds:
            raise ValueError(
                f"rule {self.name!r}: short window "
                f"({self.short_window_seconds}s) cannot exceed the long "
                f"window ({self.long_window_seconds}s)"
            )
        if self.threshold <= 0:
            raise ValueError(
                f"rule {self.name!r}: burn-rate threshold must be > 0"
            )


#: The SRE-workbook fast/slow pair (1h/5m page, 6h/30m ticket).
DEFAULT_BURN_RATE_RULES: Tuple[BurnRateRule, ...] = (
    BurnRateRule("fast", 3600.0, 300.0, 14.4, severity="page"),
    BurnRateRule("slow", 21600.0, 1800.0, 6.0, severity="ticket"),
)


@dataclass
class BurnRateAlert:
    """One rule's evaluation against one SLO."""

    slo: str
    rule: BurnRateRule
    firing: bool
    long_burn_rate: float
    short_burn_rate: float

    def describe(self) -> str:
        state = "FIRING" if self.firing else "ok"
        return (
            f"{self.slo}/{self.rule.name} [{self.rule.severity}] {state}: "
            f"burn {self.long_burn_rate:.1f}x over "
            f"{self.rule.long_window_seconds:.0f}s, "
            f"{self.short_burn_rate:.1f}x over "
            f"{self.rule.short_window_seconds:.0f}s "
            f"(threshold {self.rule.threshold:.1f}x)"
        )


class WindowedCounts:
    """Good/bad event counts in fixed time buckets on a rolling horizon.

    Buckets of ``bucket_seconds`` cover ``horizon_seconds`` of history;
    :meth:`totals` sums the buckets inside any window up to the horizon.
    Appends are O(1); old buckets are pruned as the clock advances.
    """

    def __init__(
        self,
        bucket_seconds: float = 60.0,
        horizon_seconds: float = 6 * 3600.0,
        clock: Optional[Callable[[], float]] = None,
    ):
        if bucket_seconds <= 0:
            raise ValueError(f"bucket_seconds must be > 0, got {bucket_seconds}")
        if horizon_seconds < bucket_seconds:
            raise ValueError("horizon must cover at least one bucket")
        self.bucket_seconds = float(bucket_seconds)
        self.horizon_seconds = float(horizon_seconds)
        self._clock = clock if clock is not None else time.monotonic
        self._lock = threading.Lock()
        # deque of [bucket_index, good, bad], oldest first
        self._buckets: deque = deque()

    def _bucket_index(self) -> int:
        return int(self._clock() // self.bucket_seconds)

    def _prune(self, now_index: int) -> None:
        min_index = now_index - int(self.horizon_seconds // self.bucket_seconds)
        while self._buckets and self._buckets[0][0] < min_index:
            self._buckets.popleft()

    def record(self, good: bool, n: int = 1) -> None:
        index = self._bucket_index()
        with self._lock:
            self._prune(index)
            if not self._buckets or self._buckets[-1][0] != index:
                self._buckets.append([index, 0, 0])
            if good:
                self._buckets[-1][1] += n
            else:
                self._buckets[-1][2] += n

    def totals(self, window_seconds: float) -> Tuple[int, int]:
        """(good, bad) over the trailing window (capped at the horizon)."""
        index = self._bucket_index()
        span = max(0, int(window_seconds // self.bucket_seconds))
        min_index = index - span
        good = bad = 0
        with self._lock:
            self._prune(index)
            for bucket_index, g, b in self._buckets:
                if bucket_index >= min_index:
                    good += g
                    bad += b
        return good, bad


@dataclass
class SLOStatus:
    """Point-in-time evaluation of one SLO."""

    slo: SLO
    good: int
    bad: int
    alerts: List[BurnRateAlert] = field(default_factory=list)

    @property
    def total(self) -> int:
        return self.good + self.bad

    @property
    def bad_fraction(self) -> float:
        return self.bad / self.total if self.total else 0.0

    @property
    def compliance(self) -> float:
        """Observed good fraction over the horizon (1.0 when empty)."""
        return 1.0 - self.bad_fraction

    @property
    def error_budget_remaining(self) -> float:
        """Fraction of the error budget left (can go negative)."""
        budget = self.slo.error_budget
        return (budget - self.bad_fraction) / budget if budget else 0.0

    @property
    def firing(self) -> List[BurnRateAlert]:
        return [alert for alert in self.alerts if alert.firing]

    def to_dict(self) -> Dict[str, Any]:
        return {
            "name": self.slo.name,
            "kind": self.slo.kind,
            "objective": self.slo.objective,
            "threshold_ms": self.slo.threshold_ms,
            "good": self.good,
            "bad": self.bad,
            "compliance": self.compliance,
            "error_budget_remaining": self.error_budget_remaining,
            "alerts": [
                {
                    "rule": alert.rule.name,
                    "severity": alert.rule.severity,
                    "firing": alert.firing,
                    "threshold": alert.rule.threshold,
                    "long_window_seconds": alert.rule.long_window_seconds,
                    "short_window_seconds": alert.rule.short_window_seconds,
                    "long_burn_rate": alert.long_burn_rate,
                    "short_burn_rate": alert.short_burn_rate,
                }
                for alert in self.alerts
            ],
        }

    def describe(self) -> str:
        lines = [
            f"{self.slo.name} ({self.slo.kind}, objective "
            f"{self.slo.objective:.3%}): {self.good} good / {self.bad} bad, "
            f"compliance {self.compliance:.3%}, budget remaining "
            f"{self.error_budget_remaining:.0%}"
        ]
        for alert in self.alerts:
            lines.append("  " + alert.describe())
        return "\n".join(lines)


def default_slos(
    latency_ms: float = 250.0,
    latency_objective: float = 0.99,
    violation_objective: float = 0.99,
    degraded_objective: float = 0.95,
) -> Tuple[SLO, ...]:
    """The standard serving trio: latency, bound violations, degradation."""
    return (
        SLO(
            name="p99_latency_ms",
            kind=KIND_LATENCY,
            objective=latency_objective,
            threshold_ms=latency_ms,
            description=(
                f"{latency_objective:.0%} of answers finish in "
                f"under {latency_ms:g} ms"
            ),
        ),
        SLO(
            name="bound_violation_rate",
            kind=KIND_BOUND_VIOLATION,
            objective=violation_objective,
            description=(
                f"{violation_objective:.0%} of audited answers keep every "
                "group inside its promised error bound"
            ),
        ),
        SLO(
            name="degraded_fraction",
            kind=KIND_DEGRADED,
            objective=degraded_objective,
            description=(
                f"at most {1 - degraded_objective:.0%} of served answers "
                "are degraded"
            ),
        ),
    )


class SLOMonitor:
    """Registers SLOs, ingests good/bad events, evaluates burn rates.

    One :class:`WindowedCounts` per SLO, sized to the largest rule
    window.  All entry points are cheap and thread-safe; evaluation is
    on-demand (``GET /slo``, the shell, tests) rather than periodic.
    """

    def __init__(
        self,
        slos: Optional[Tuple[SLO, ...]] = None,
        rules: Tuple[BurnRateRule, ...] = DEFAULT_BURN_RATE_RULES,
        bucket_seconds: float = 60.0,
        clock: Optional[Callable[[], float]] = None,
    ):
        if not rules:
            raise ValueError("SLOMonitor needs at least one burn-rate rule")
        self.rules = tuple(rules)
        self.bucket_seconds = float(bucket_seconds)
        self._clock = clock if clock is not None else time.monotonic
        self._horizon = max(rule.long_window_seconds for rule in self.rules)
        self._lock = threading.Lock()
        self._slos: Dict[str, SLO] = {}
        self._counts: Dict[str, WindowedCounts] = {}
        for slo in slos if slos is not None else default_slos():
            self.register(slo)

    def register(self, slo: SLO) -> SLO:
        with self._lock:
            if slo.name in self._slos:
                raise ValueError(f"SLO {slo.name!r} is already registered")
            self._slos[slo.name] = slo
            self._counts[slo.name] = WindowedCounts(
                bucket_seconds=self.bucket_seconds,
                horizon_seconds=self._horizon,
                clock=self._clock,
            )
        return slo

    def slos(self) -> List[SLO]:
        with self._lock:
            return list(self._slos.values())

    def _of_kind(self, kind: str) -> List[Tuple[SLO, WindowedCounts]]:
        with self._lock:
            return [
                (slo, self._counts[name])
                for name, slo in self._slos.items()
                if slo.kind == kind
            ]

    # -- ingestion (one entry point per kind) --------------------------------

    def record_latency(self, seconds: float) -> None:
        """One served answer's end-to-end latency."""
        for slo, counts in self._of_kind(KIND_LATENCY):
            counts.record(good=seconds * 1000.0 <= slo.threshold_ms)

    def record_served(self, degraded: bool) -> None:
        """One served answer, degraded or not."""
        for _slo, counts in self._of_kind(KIND_DEGRADED):
            counts.record(good=not degraded)

    def record_audit(self, violations: int, groups: int) -> None:
        """One audited answer: bad when any group violated its bound."""
        del groups  # per-answer semantics; groups kept for future weighting
        for _slo, counts in self._of_kind(KIND_BOUND_VIOLATION):
            counts.record(good=violations == 0)

    # -- evaluation ----------------------------------------------------------

    def _burn_rate(
        self, slo: SLO, counts: WindowedCounts, window_seconds: float
    ) -> float:
        good, bad = counts.totals(window_seconds)
        total = good + bad
        if total == 0:
            return 0.0
        return (bad / total) / slo.error_budget

    def evaluate(self) -> List[SLOStatus]:
        with self._lock:
            items = [
                (slo, self._counts[name])
                for name, slo in self._slos.items()
            ]
        out = []
        for slo, counts in items:
            good, bad = counts.totals(self._horizon)
            alerts = []
            for rule in self.rules:
                long_burn = self._burn_rate(
                    slo, counts, rule.long_window_seconds
                )
                short_burn = self._burn_rate(
                    slo, counts, rule.short_window_seconds
                )
                alerts.append(
                    BurnRateAlert(
                        slo=slo.name,
                        rule=rule,
                        firing=(
                            long_burn >= rule.threshold
                            and short_burn >= rule.threshold
                        ),
                        long_burn_rate=long_burn,
                        short_burn_rate=short_burn,
                    )
                )
            out.append(SLOStatus(slo=slo, good=good, bad=bad, alerts=alerts))
        return out

    def firing_alerts(self) -> List[BurnRateAlert]:
        return [
            alert
            for status in self.evaluate()
            for alert in status.alerts
            if alert.firing
        ]

    def to_dict(self) -> Dict[str, Any]:
        return {
            "slos": [status.to_dict() for status in self.evaluate()],
            "firing": [
                {"slo": a.slo, "rule": a.rule.name, "severity": a.rule.severity}
                for a in self.firing_alerts()
            ],
        }

    def describe(self) -> str:
        statuses = self.evaluate()
        if not statuses:
            return "no SLOs registered"
        return "\n".join(status.describe() for status in statuses)


class ObservabilityReport:
    """One operator view over events, audit results, and SLO health."""

    def __init__(self, events=None, slo: Optional[SLOMonitor] = None,
                 auditor=None):
        self.events = events
        self.slo = slo
        self.auditor = auditor

    def to_dict(self) -> Dict[str, Any]:
        out: Dict[str, Any] = {}
        if self.slo is not None:
            out["slo"] = self.slo.to_dict()
        if self.auditor is not None:
            out["audit"] = self.auditor.stats.to_dict()
        if self.events is not None:
            out["events"] = {
                "recorded": len(self.events),
                "recent": [e.to_dict() for e in self.events.tail(5)],
                "violations": [
                    e.to_dict()
                    for e in self.events.events(violations_only=True)
                ],
            }
        return out

    def to_json(self, indent: Optional[int] = None) -> str:
        return json.dumps(self.to_dict(), indent=indent, default=str)

    def render(self) -> str:
        lines: List[str] = ["== observability report =="]
        if self.slo is not None:
            lines.append("-- SLOs --")
            lines.append(self.slo.describe())
        if self.auditor is not None:
            lines.append("-- accuracy audit --")
            lines.append(self.auditor.stats.describe())
        if self.events is not None:
            lines.append("-- recent events --")
            recent = self.events.tail(5)
            if not recent:
                lines.append("(no events recorded)")
            for event in recent:
                flags = []
                if event.cache_hit:
                    flags.append("cache")
                if event.degraded:
                    flags.append("degraded")
                if event.bound_violations:
                    flags.append(f"violations={event.bound_violations}")
                suffix = f" [{' '.join(flags)}]" if flags else ""
                lines.append(
                    f"{event.trace_id} {event.status:<8s} "
                    f"{event.table or '?':<12s} "
                    f"{event.duration_seconds * 1000:7.2f} ms "
                    f"groups={event.groups}{suffix}"
                )
        return "\n".join(lines)
