"""Observability for the Aqua query pipeline: tracing + metrics.

Two zero-dependency pillars, both off-by-default cheap:

* :class:`Tracer` / :class:`Span` / :class:`QueryTrace` -- span-based
  tracing of every stage of :meth:`repro.aqua.system.AquaSystem.answer`
  (parse, validate, rewrite, execute/scan/scale-up, error bounds, guard
  escalation and repair);
* :class:`MetricsRegistry` with :class:`Counter` / :class:`Gauge` /
  :class:`Histogram` -- cumulative counters for queries, inserts, flushes,
  refreshes and guard provenance, plus latency/error-bound/support
  histograms, exportable as ``snapshot()`` dicts, JSON, or Prometheus text
  exposition format.

:class:`Telemetry` bundles one tracer and one registry so they can be
threaded through the stack as a single handle.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .metrics import (
    DEFAULT_LATENCY_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from .trace import NULL_TRACER, QueryTrace, Span, Tracer

__all__ = [
    "Counter",
    "DEFAULT_LATENCY_BUCKETS",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NULL_TRACER",
    "QueryTrace",
    "Span",
    "Telemetry",
    "Tracer",
]


@dataclass
class Telemetry:
    """One tracer plus one metrics registry, threaded as a unit."""

    tracer: Tracer = field(default_factory=Tracer)
    metrics: MetricsRegistry = field(default_factory=MetricsRegistry)

    @classmethod
    def disabled(cls) -> "Telemetry":
        """Both pillars off (the default for library use)."""
        return cls(Tracer(enabled=False), MetricsRegistry(enabled=False))

    @classmethod
    def enabled(cls) -> "Telemetry":
        """Both pillars on (what the shell and benchmarks use)."""
        return cls(Tracer(enabled=True), MetricsRegistry(enabled=True))

    @property
    def active(self) -> bool:
        """True when either pillar is recording."""
        return self.tracer.enabled or self.metrics.enabled

    def enable(self) -> "Telemetry":
        self.tracer.enable()
        self.metrics.enable()
        return self

    def disable(self) -> "Telemetry":
        self.tracer.disable()
        self.metrics.disable()
        return self
