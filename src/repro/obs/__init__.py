"""Observability for the Aqua query pipeline: tracing, metrics, events.

Four zero-dependency pillars, all off-by-default cheap:

* :class:`Tracer` / :class:`Span` / :class:`QueryTrace` -- span-based
  tracing of every stage of :meth:`repro.aqua.system.AquaSystem.answer`
  (parse, validate, rewrite, execute/scan/scale-up, error bounds, guard
  escalation and repair), with tail-based retention of interesting traces
  in a :class:`TraceStore`;
* :class:`MetricsRegistry` with :class:`Counter` / :class:`Gauge` /
  :class:`Histogram` -- cumulative counters for queries, inserts, flushes,
  refreshes and guard provenance, plus latency/error-bound/support
  histograms (with optional trace exemplars), exportable as ``snapshot()``
  dicts, JSON, Prometheus text exposition, or OpenMetrics with exemplars;
* :class:`EventLog` / :class:`QueryEvent` -- a bounded structured audit
  log, one JSON-able event per served query, with an optional JSONL file
  sink;
* :mod:`repro.obs.slo` / :mod:`repro.obs.audit` -- declarative SLOs with
  multi-window burn-rate alerting, and the accuracy auditor that closes
  the loop between promised and observed error.

:class:`Telemetry` bundles one tracer, one registry, one event log, and
one trace store so they can be threaded through the stack as a single
handle.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .events import EventLog, QueryEvent
from .metrics import (
    DEFAULT_LATENCY_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from .trace import (
    NULL_TRACER,
    QueryTrace,
    RetentionPolicy,
    Span,
    TraceStore,
    Tracer,
)

__all__ = [
    "Counter",
    "DEFAULT_LATENCY_BUCKETS",
    "EventLog",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NULL_TRACER",
    "QueryEvent",
    "QueryTrace",
    "RetentionPolicy",
    "Span",
    "Telemetry",
    "TraceStore",
    "Tracer",
]


@dataclass
class Telemetry:
    """Tracer + metrics + event log + trace store, threaded as a unit.

    The event log and trace store piggyback on the bundle's enablement:
    :meth:`enabled` turns all pillars on, :meth:`disabled` leaves them
    all off (each write path is then one attribute check).  The trace
    store has no switch of its own -- it only ever sees traces, and a
    disabled tracer produces none.
    """

    tracer: Tracer = field(default_factory=Tracer)
    metrics: MetricsRegistry = field(default_factory=MetricsRegistry)
    events: EventLog = field(default_factory=EventLog)
    traces: TraceStore = field(default_factory=TraceStore)

    @classmethod
    def disabled(cls) -> "Telemetry":
        """All pillars off (the default for library use)."""
        return cls(
            Tracer(enabled=False),
            MetricsRegistry(enabled=False),
            EventLog(enabled=False),
            TraceStore(),
        )

    @classmethod
    def enabled(cls) -> "Telemetry":
        """All pillars on (what the shell and benchmarks use)."""
        return cls(
            Tracer(enabled=True),
            MetricsRegistry(enabled=True),
            EventLog(enabled=True),
            TraceStore(),
        )

    @property
    def active(self) -> bool:
        """True when any pillar is recording."""
        return (
            self.tracer.enabled
            or self.metrics.enabled
            or self.events.enabled
        )

    def enable(self) -> "Telemetry":
        self.tracer.enable()
        self.metrics.enable()
        self.events.enable()
        return self

    def disable(self) -> "Telemetry":
        self.tracer.disable()
        self.metrics.disable()
        self.events.disable()
        return self
