"""Span-based tracing for the Aqua query pipeline.

The paper's value claim is quantitative -- per-query speedup and per-group
error -- yet a single end-to-end wall time cannot say *where* an answer's
time went: parsing, rewrite, the synopsis scan, aggregate scale-up, error
bounds, or a guard escalation.  AQP systems such as BlinkDB and VerdictDB
treat per-stage telemetry as first class; this module is the Aqua
equivalent, with zero third-party dependencies.

Three pieces:

* :class:`Span` -- one timed pipeline stage (``perf_counter`` wall time,
  free-form attributes, nested children, error status).  Spans are context
  managers and exception-safe: an exception closes the span, marks it
  ``status="error"``, and propagates.
* :class:`Tracer` -- hands out spans and maintains the nesting stack.  A
  disabled tracer (the default) returns a shared no-op span, so tracing
  costs one attribute check per call site when off.
* :class:`QueryTrace` -- the finished root span of one query, with stage
  accessors and a renderable tree (the shell's ``.trace`` view).
* :class:`TraceStore` -- tail-based retention: every finished trace is
  offered, but only the *interesting* ones (slow, degraded, errored, or
  later found bound-violating by the accuracy auditor) are kept; the rest
  pass through a small provisional ring so the auditor can still
  :meth:`~TraceStore.promote` one after the fact.
"""

from __future__ import annotations

import json
import threading
from collections import deque
from dataclasses import dataclass
from time import perf_counter
from typing import Any, Callable, Dict, List, Optional, Tuple

__all__ = [
    "NULL_TRACER",
    "QueryTrace",
    "RetentionPolicy",
    "Span",
    "TraceStore",
    "Tracer",
]


class _NullSpan:
    """Shared do-nothing span returned by a disabled tracer."""

    __slots__ = ()

    is_recording = False

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False

    def set(self, **attributes: Any) -> "_NullSpan":
        return self

    def add_child_timing(
        self, name: str, seconds: float, **attributes: Any
    ) -> "_NullSpan":
        return self


NULL_SPAN = _NullSpan()


class Span:
    """One timed, attributed, nestable stage of the query pipeline."""

    __slots__ = (
        "name",
        "attributes",
        "children",
        "status",
        "error",
        "_start",
        "_end",
        "_tracer",
    )

    is_recording = True

    def __init__(self, name: str, tracer: "Tracer", **attributes: Any):
        self.name = name
        self.attributes: Dict[str, Any] = dict(attributes)
        self.children: List[Span] = []
        self.status = "ok"
        self.error: Optional[str] = None
        self._start: Optional[float] = None
        self._end: Optional[float] = None
        self._tracer = tracer

    # -- context manager ----------------------------------------------------

    def __enter__(self) -> "Span":
        self._tracer._push(self)
        self._start = perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self._end = perf_counter()
        if exc_type is not None:
            self.status = "error"
            self.error = f"{exc_type.__name__}: {exc}"
        self._tracer._pop(self)
        return False  # never swallow

    # -- recording ----------------------------------------------------------

    def set(self, **attributes: Any) -> "Span":
        """Attach attributes (row counts, strategy names, ...)."""
        self.attributes.update(attributes)
        return self

    def add_child_timing(
        self, name: str, seconds: float, **attributes: Any
    ) -> "Span":
        """Attach an already-measured child span.

        The tracer's nesting stack is not thread-safe, so work fanned out to
        a worker pool (e.g. the parallel executor's per-partition scans)
        measures its own wall time and the coordinating thread records it
        here after the fact.  The child is closed on arrival and never
        touches the stack.
        """
        child = Span(name, self._tracer, **attributes)
        child._start = 0.0
        child._end = float(seconds)
        self.children.append(child)
        return child

    @property
    def started(self) -> bool:
        return self._start is not None

    @property
    def finished(self) -> bool:
        return self._end is not None

    @property
    def duration_seconds(self) -> float:
        """Wall time; 0.0 until the span has both started and finished."""
        if self._start is None or self._end is None:
            return 0.0
        return self._end - self._start

    def find(self, name: str) -> Optional["Span"]:
        """First descendant (depth-first) with the given name."""
        for child in self.children:
            if child.name == name:
                return child
            found = child.find(name)
            if found is not None:
                return found
        return None

    def to_dict(self) -> Dict[str, Any]:
        out: Dict[str, Any] = {
            "name": self.name,
            "duration_seconds": self.duration_seconds,
            "status": self.status,
        }
        if self.error is not None:
            out["error"] = self.error
        if self.attributes:
            out["attributes"] = dict(self.attributes)
        if self.children:
            out["children"] = [child.to_dict() for child in self.children]
        return out

    def render(self, indent: int = 0) -> str:
        """Indented one-line-per-span tree with millisecond durations."""
        millis = self.duration_seconds * 1000
        attrs = "".join(
            f" {key}={value}" for key, value in sorted(self.attributes.items())
        )
        flag = "" if self.status == "ok" else f" !{self.status}: {self.error}"
        lines = [f"{'  ' * indent}{self.name:<24s} {millis:9.3f} ms{attrs}{flag}"]
        for child in self.children:
            lines.append(child.render(indent + 1))
        return "\n".join(lines)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Span({self.name!r}, {self.duration_seconds * 1000:.3f} ms, "
            f"{len(self.children)} children)"
        )


class Tracer:
    """Hands out :class:`Span` objects and tracks their nesting.

    Usage (context manager or decorator)::

        tracer = Tracer(enabled=True)
        with tracer.span("answer") as root:
            with tracer.span("parse"):
                ...
        trace = QueryTrace(root)

        @tracer.traced("hot_path")
        def hot_path(...): ...

    A disabled tracer returns a shared no-op span: the cost of an
    instrumented call site is one ``enabled`` check.

    The nesting stack is *per thread*: concurrent serving workers share one
    tracer, and each worker's spans nest within that worker's own open
    span, never under another thread's.  (Span objects themselves are still
    single-writer -- only the thread that opened a span appends children to
    it, with :meth:`Span.add_child_timing` the explicit cross-thread
    hand-off for pool work measured elsewhere.)
    """

    def __init__(self, enabled: bool = False):
        self.enabled = enabled
        self._local = threading.local()

    @property
    def _stack(self) -> List[Span]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    # -- switches ------------------------------------------------------------

    def enable(self) -> "Tracer":
        self.enabled = True
        return self

    def disable(self) -> "Tracer":
        self.enabled = False
        return self

    # -- span creation -------------------------------------------------------

    def span(self, name: str, **attributes: Any):
        """A new span, nested under the currently-open span (if any)."""
        if not self.enabled:
            return NULL_SPAN
        return Span(name, self, **attributes)

    def traced(self, name: Optional[str] = None, **attributes: Any):
        """Decorator form: wrap every call of ``fn`` in a span."""

        def decorate(fn: Callable) -> Callable:
            span_name = name if name is not None else fn.__qualname__

            def wrapper(*args: Any, **kwargs: Any):
                with self.span(span_name, **attributes):
                    return fn(*args, **kwargs)

            wrapper.__name__ = fn.__name__
            wrapper.__qualname__ = fn.__qualname__
            wrapper.__doc__ = fn.__doc__
            wrapper.__wrapped__ = fn
            return wrapper

        return decorate

    @property
    def current(self) -> Optional[Span]:
        """The innermost open span (None outside any span)."""
        return self._stack[-1] if self._stack else None

    # -- stack maintenance (called by Span) ----------------------------------

    def _push(self, span: Span) -> None:
        if self._stack:
            self._stack[-1].children.append(span)
        self._stack.append(span)

    def _pop(self, span: Span) -> None:
        # Exception safety: close any children left open by a non-local
        # exit, then remove this span wherever it sits on the stack.
        while self._stack:
            top = self._stack.pop()
            if top is span:
                break


#: Shared disabled tracer for call sites given no tracer of their own.
NULL_TRACER = Tracer(enabled=False)


class QueryTrace:
    """The completed trace of one answered query.

    Wraps the root span with stage-level accessors: the root's direct
    children are the pipeline stages (``parse``, ``validate``, ``rewrite``,
    ``execute``, ``error_bounds``, ``guard``, ...).
    """

    def __init__(self, root: Span):
        self.root = root

    @property
    def total_seconds(self) -> float:
        """End-to-end wall time of the traced pipeline."""
        return self.root.duration_seconds

    @property
    def stages(self) -> List[Span]:
        """Top-level pipeline stages, in execution order."""
        return list(self.root.children)

    def stage_seconds(self) -> Dict[str, float]:
        """Per-stage wall time, summed over same-named top-level spans."""
        out: Dict[str, float] = {}
        for span in self.root.children:
            out[span.name] = out.get(span.name, 0.0) + span.duration_seconds
        return out

    def stage(self, name: str) -> Optional[Span]:
        """First stage (or nested span) with the given name."""
        if self.root.name == name:
            return self.root
        return self.root.find(name)

    @property
    def unaccounted_seconds(self) -> float:
        """Root time not covered by any top-level stage (should be ~0)."""
        return self.total_seconds - sum(self.stage_seconds().values())

    def to_dict(self) -> Dict[str, Any]:
        return self.root.to_dict()

    def to_json(self, indent: Optional[int] = None) -> str:
        return json.dumps(self.to_dict(), indent=indent, default=str)

    def render(self) -> str:
        """The shell's ``.trace`` view: an indented span tree."""
        return self.root.render()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"QueryTrace({self.root.name!r}, "
            f"{self.total_seconds * 1000:.3f} ms, "
            f"{len(self.stages)} stages)"
        )


@dataclass(frozen=True)
class RetentionPolicy:
    """Which finished traces are worth keeping.

    Attributes:
        capacity: retained (interesting) traces; oldest evicted first.
        recent_capacity: provisional ring of boring traces kept around
            briefly so a later signal (the auditor finding a bound
            violation) can still promote one by trace id.
        slow_threshold_seconds: traces at least this slow are retained;
            None disables the latency criterion.
        keep_degraded: retain traces of degraded answers.
        keep_errors: retain traces of failed answers.
    """

    capacity: int = 64
    recent_capacity: int = 64
    slow_threshold_seconds: Optional[float] = 1.0
    keep_degraded: bool = True
    keep_errors: bool = True

    def reason(
        self, trace: QueryTrace, degraded: bool, error: bool
    ) -> Optional[str]:
        """Why this trace should be retained, or None (drop to the ring)."""
        if error and self.keep_errors:
            return "error"
        if degraded and self.keep_degraded:
            return "degraded"
        if (
            self.slow_threshold_seconds is not None
            and trace.total_seconds >= self.slow_threshold_seconds
        ):
            return "slow"
        return None


class TraceStore:
    """Tail-based trace retention keyed by trace id.

    ``offer()`` is called once per finished answer; traces the policy
    finds interesting are retained immediately, the rest ride a bounded
    provisional ring.  The accuracy auditor -- which learns that a trace
    was interesting only after recomputing the exact answer -- calls
    ``promote()`` to move a provisional trace into the retained set.
    """

    def __init__(self, policy: Optional[RetentionPolicy] = None):
        self.policy = policy if policy is not None else RetentionPolicy()
        self._lock = threading.Lock()
        # trace_id -> (reason, trace); insertion-ordered for eviction.
        self._retained: Dict[str, Tuple[str, QueryTrace]] = {}
        self._recent: deque = deque(maxlen=self.policy.recent_capacity)
        self._recent_by_id: Dict[str, QueryTrace] = {}

    def offer(
        self,
        trace_id: str,
        trace: QueryTrace,
        degraded: bool = False,
        error: bool = False,
    ) -> Optional[str]:
        """Offer a finished trace; returns the retention reason or None."""
        reason = self.policy.reason(trace, degraded=degraded, error=error)
        with self._lock:
            if reason is not None:
                self._retain(trace_id, reason, trace)
            else:
                if len(self._recent) == self._recent.maxlen:
                    evicted = self._recent[0]
                    self._recent_by_id.pop(evicted, None)
                self._recent.append(trace_id)
                self._recent_by_id[trace_id] = trace
        return reason

    def _retain(self, trace_id: str, reason: str, trace: QueryTrace) -> None:
        self._retained[trace_id] = (reason, trace)
        while len(self._retained) > self.policy.capacity:
            oldest = next(iter(self._retained))
            del self._retained[oldest]

    def promote(self, trace_id: str, reason: str) -> bool:
        """Pin a trace as interesting after the fact (auditor verdicts).

        Returns False when the trace already aged out of both the
        retained set and the provisional ring.
        """
        with self._lock:
            existing = self._retained.get(trace_id)
            if existing is not None:
                self._retained[trace_id] = (reason, existing[1])
                return True
            trace = self._recent_by_id.pop(trace_id, None)
            if trace is None:
                return False
            try:
                self._recent.remove(trace_id)
            except ValueError:  # pragma: no cover - ring raced the pop
                pass
            self._retain(trace_id, reason, trace)
            return True

    def get(self, trace_id: str) -> Optional[QueryTrace]:
        """A trace by id, from the retained set or the provisional ring."""
        with self._lock:
            entry = self._retained.get(trace_id)
            if entry is not None:
                return entry[1]
            return self._recent_by_id.get(trace_id)

    def reason(self, trace_id: str) -> Optional[str]:
        with self._lock:
            entry = self._retained.get(trace_id)
            return entry[0] if entry is not None else None

    def retained(self) -> List[Tuple[str, str, QueryTrace]]:
        """(trace_id, reason, trace) for every retained trace, oldest first."""
        with self._lock:
            return [
                (trace_id, reason, trace)
                for trace_id, (reason, trace) in self._retained.items()
            ]

    def __len__(self) -> int:
        with self._lock:
            return len(self._retained)

    def clear(self) -> None:
        with self._lock:
            self._retained.clear()
            self._recent.clear()
            self._recent_by_id.clear()
