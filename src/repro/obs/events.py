"""A structured, bounded event log for served queries.

Spans answer "where did this query's time go"; metrics answer "how is the
fleet doing in aggregate".  Neither answers "what exactly did we serve ten
seconds ago, and under what promises" -- the question an accuracy audit,
an incident review, or the ROADMAP's portfolio planner asks.  This module
closes that gap with one :class:`QueryEvent` per ``answer()`` call:

* identity -- a monotonically assigned ``trace_id`` shared with the span
  tree and the metric exemplars, so an SLO violation points back to the
  exact query that caused it;
* the contract -- the table, the synopsis version/allocation/rewrite
  strategy the answer came from, the promised worst-case per-group
  relative error bound, and the provenance mix of the answer groups;
* the outcome -- status, stage latencies, end-to-end duration, and the
  cache/degraded/deadline flags.

Events land in a thread-safe bounded ring buffer (old events are dropped,
never blocked on) with an optional JSON-lines file sink for durable audit
trails.  A disabled :class:`EventLog` costs one attribute check per call
site, matching the tracer/metrics contract.

The serving layer decides *after* the pipeline returns whether an answer
was served degraded (load shedding, open breaker), and the accuracy
auditor observes real error minutes later; both back-annotate the stored
event by trace id via :meth:`EventLog.annotate`.  The file sink receives
emit-time records only -- annotations are appended as separate
``{"annotate": trace_id, ...}`` lines so the on-disk trail stays
append-only.
"""

from __future__ import annotations

import json
import threading
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Dict, IO, Iterator, List, Optional

__all__ = ["EventLog", "QueryEvent"]

#: Event status values.
STATUS_OK = "ok"
STATUS_ERROR = "error"
STATUS_DEADLINE = "deadline"


@dataclass
class QueryEvent:
    """One served (or failed) query, as the audit trail saw it.

    Attributes:
        event_id: monotonically increasing sequence number within the log.
        trace_id: the identity shared with metric exemplars and retained
            traces; assigned by the log at emit time.
        timestamp: wall-clock emit time (``time.time`` unless the log was
            given another clock).
        table: the base table answered from ("" when parsing failed before
            the table was known).
        sql: the query text as submitted (rendered when a Query object).
        status: ``"ok"`` / ``"error"`` / ``"deadline"``.
        error: the error message for non-ok statuses.
        synopsis_version: the table's monotonic data version at answer
            time -- the auditor compares against it before recomputing.
        allocation: allocation-strategy name of the serving synopsis.
        strategy: rewrite-strategy name used for the answer.
        provenance: answer groups per provenance tag (guarded answers).
        promised_rel_error: worst finite per-group relative error
            half-width promised by the answer, per aggregate alias.
        chosen_synopsis: the portfolio member that served a budgeted
            answer (``None`` for budget-free answers).
        predicted_rel_error: the cost/error model's worst-group prediction
            at selection time (``None`` without a portfolio choice).
        groups: answer rows (groups) returned.
        stage_seconds: per-stage wall time when the tracer was recording.
        duration_seconds: end-to-end answer wall time.
        cache_hit: answered from the answer cache.
        cache_tier: the semantic tier that served the answer
            (``"exact"``/``"canonical"``/``"rollup"``; ``None`` when the
            answer was computed fresh).
        reused_from: provenance chain of a roll-up served answer -- which
            cached snapshot (table@version, strategies, finer GROUP BY)
            was merged down, and any predicate slice applied.
        degraded: guard escalation or serve-side degradation produced
            this answer (back-annotated by the serving layer).
        degradation: the serve-side degradation reason, if any.
        deadline: a deadline (ambient or explicit) governed this answer.
        audited: the accuracy auditor recomputed this answer exactly.
        observed_rel_error: worst observed relative error across audited
            groups (back-annotated by the auditor).
        bound_violations: audited groups whose observed error exceeded the
            promised half-width.
    """

    event_id: int
    trace_id: str
    timestamp: float
    table: str = ""
    sql: str = ""
    status: str = STATUS_OK
    error: Optional[str] = None
    synopsis_version: Optional[int] = None
    allocation: Optional[str] = None
    strategy: Optional[str] = None
    provenance: Dict[str, int] = field(default_factory=dict)
    promised_rel_error: Dict[str, float] = field(default_factory=dict)
    chosen_synopsis: Optional[str] = None
    predicted_rel_error: Optional[float] = None
    groups: int = 0
    stage_seconds: Dict[str, float] = field(default_factory=dict)
    duration_seconds: float = 0.0
    cache_hit: bool = False
    cache_tier: Optional[str] = None
    reused_from: Optional[str] = None
    degraded: bool = False
    degradation: Optional[str] = None
    deadline: bool = False
    audited: bool = False
    observed_rel_error: Optional[float] = None
    bound_violations: int = 0

    def to_dict(self) -> Dict[str, Any]:
        out: Dict[str, Any] = {
            "event_id": self.event_id,
            "trace_id": self.trace_id,
            "timestamp": self.timestamp,
            "table": self.table,
            "sql": self.sql,
            "status": self.status,
            "groups": self.groups,
            "duration_seconds": self.duration_seconds,
            "cache_hit": self.cache_hit,
            "degraded": self.degraded,
            "deadline": self.deadline,
            "audited": self.audited,
            "bound_violations": self.bound_violations,
        }
        if self.error is not None:
            out["error"] = self.error
        if self.synopsis_version is not None:
            out["synopsis_version"] = self.synopsis_version
        if self.allocation is not None:
            out["allocation"] = self.allocation
        if self.strategy is not None:
            out["strategy"] = self.strategy
        if self.provenance:
            out["provenance"] = dict(self.provenance)
        if self.promised_rel_error:
            out["promised_rel_error"] = dict(self.promised_rel_error)
        if self.chosen_synopsis is not None:
            out["chosen_synopsis"] = self.chosen_synopsis
        if self.predicted_rel_error is not None:
            out["predicted_rel_error"] = self.predicted_rel_error
        if self.cache_tier is not None:
            out["cache_tier"] = self.cache_tier
        if self.reused_from is not None:
            out["reused_from"] = self.reused_from
        if self.stage_seconds:
            out["stage_seconds"] = dict(self.stage_seconds)
        if self.degradation is not None:
            out["degradation"] = self.degradation
        if self.observed_rel_error is not None:
            out["observed_rel_error"] = self.observed_rel_error
        return out

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), default=str, sort_keys=True)

    @property
    def max_promised_rel_error(self) -> float:
        """The loosest promise made for any aggregate (inf when none)."""
        finite = [v for v in self.promised_rel_error.values()]
        return max(finite) if finite else float("inf")


class EventLog:
    """Thread-safe bounded ring of :class:`QueryEvent` + optional sink.

    Args:
        enabled: a disabled log drops events at the cost of one attribute
            check (the system's default, matching tracer/metrics).
        capacity: ring-buffer size; the oldest events fall off first.
        sink: a path or writable text file for a JSON-lines audit trail.
        clock: wall-clock source for event timestamps (tests inject).
    """

    def __init__(
        self,
        enabled: bool = False,
        capacity: int = 256,
        sink: Any = None,
        clock: Any = None,
    ):
        if capacity < 1:
            raise ValueError(f"event log capacity must be >= 1, got {capacity}")
        self.enabled = enabled
        self.capacity = capacity
        self._clock = clock if clock is not None else time.time
        self._lock = threading.Lock()
        self._events: deque = deque(maxlen=capacity)
        self._by_trace: Dict[str, QueryEvent] = {}
        self._seq = 0
        self._sink: Optional[IO[str]] = None
        self._owns_sink = False
        if sink is not None:
            if hasattr(sink, "write"):
                self._sink = sink
            else:
                self._sink = open(sink, "a", encoding="utf-8")
                self._owns_sink = True

    # -- switches ------------------------------------------------------------

    def enable(self) -> "EventLog":
        self.enabled = True
        return self

    def disable(self) -> "EventLog":
        self.enabled = False
        return self

    # -- recording -----------------------------------------------------------

    def next_trace_id(self) -> str:
        """Reserve a trace id without emitting an event yet."""
        with self._lock:
            self._seq += 1
            return f"q{self._seq:08x}"

    def emit(self, **fields: Any) -> Optional[QueryEvent]:
        """Record one event; returns it (or None when the log is disabled).

        A ``trace_id`` may be passed (e.g. reserved up front so spans and
        metrics can share it); otherwise one is assigned.
        """
        if not self.enabled:
            return None
        trace_id = fields.pop("trace_id", None)
        with self._lock:
            self._seq += 1
            event = QueryEvent(
                event_id=self._seq,
                trace_id=(
                    trace_id if trace_id is not None else f"q{self._seq:08x}"
                ),
                timestamp=self._clock(),
                **fields,
            )
            if len(self._events) == self._events.maxlen:
                evicted = self._events[0]
                self._by_trace.pop(evicted.trace_id, None)
            self._events.append(event)
            self._by_trace[event.trace_id] = event
            sink = self._sink
        if sink is not None:
            sink.write(event.to_json() + "\n")
            sink.flush()
        return event

    def annotate(self, trace_id: Optional[str], **fields: Any) -> bool:
        """Back-annotate a stored event (degradation, audit results).

        Returns False (harmlessly) when the trace id is unknown -- the
        event may have fallen off the ring, or the log may be disabled.
        """
        if trace_id is None:
            return False
        with self._lock:
            event = self._by_trace.get(trace_id)
            if event is None:
                return False
            for name, value in fields.items():
                if not hasattr(event, name):
                    raise AttributeError(
                        f"QueryEvent has no field {name!r} to annotate"
                    )
                setattr(event, name, value)
            sink = self._sink
        if sink is not None:
            record = {"annotate": trace_id}
            record.update(fields)
            sink.write(json.dumps(record, default=str, sort_keys=True) + "\n")
            sink.flush()
        return True

    # -- queries -------------------------------------------------------------

    def events(
        self,
        limit: Optional[int] = None,
        table: Optional[str] = None,
        status: Optional[str] = None,
        violations_only: bool = False,
    ) -> List[QueryEvent]:
        """Most-recent-last view of the ring, optionally filtered."""
        with self._lock:
            out = list(self._events)
        if table is not None:
            out = [e for e in out if e.table == table]
        if status is not None:
            out = [e for e in out if e.status == status]
        if violations_only:
            out = [e for e in out if e.bound_violations > 0]
        if limit is not None and limit >= 0:
            out = out[-limit:]
        return out

    def tail(self, n: int = 10) -> List[QueryEvent]:
        return self.events(limit=n)

    def get(self, trace_id: str) -> Optional[QueryEvent]:
        with self._lock:
            return self._by_trace.get(trace_id)

    def __len__(self) -> int:
        with self._lock:
            return len(self._events)

    def __iter__(self) -> Iterator[QueryEvent]:
        return iter(self.events())

    def to_jsonl(self) -> str:
        """The current ring as JSON lines (newest last)."""
        return "\n".join(event.to_json() for event in self.events())

    def clear(self) -> None:
        with self._lock:
            self._events.clear()
            self._by_trace.clear()

    def close(self) -> None:
        """Close a log-owned file sink (no-op for caller-owned sinks)."""
        with self._lock:
            sink, self._sink = self._sink, None
            owns, self._owns_sink = self._owns_sink, False
        if sink is not None and owns:
            sink.close()
