"""A zero-dependency metrics registry: counters, gauges, histograms.

Models the Prometheus data model closely enough that
:meth:`MetricsRegistry.to_prometheus` emits valid text exposition format
(``name{label="value"} 1.0`` lines with HELP/TYPE headers, cumulative
``le`` histogram buckets, and proper escaping), while
:meth:`MetricsRegistry.snapshot` / :meth:`MetricsRegistry.to_json` serve
programmatic consumers (tests, the benchmarks harness, the shell's
``.stats`` command).

Design constraints:

* **off-by-default cheap** -- every write path starts with one ``enabled``
  check against the owning registry, so a disabled registry adds no
  measurable overhead to ``AquaSystem.answer()``;
* **get-or-create handles** -- ``registry.counter(name, ...)`` returns the
  existing metric when called twice, so independent modules can instrument
  against the same registry without coordinating;
* **fixed-bucket histograms** -- bucket upper bounds are inclusive
  (Prometheus ``le`` semantics): an observation equal to a bound lands in
  that bound's bucket;
* **thread-safe** -- the serving layer's worker pool writes concurrently,
  so each metric guards its sample map with a lock and the registry guards
  get-or-create; a snapshot taken mid-load is internally consistent per
  metric;
* **stable output** -- exposition renders labels in sorted name order
  (``le`` always last on bucket lines) and ends with a trailing newline,
  so scrapes diff cleanly across runs and registry populations;
* **exemplars** -- histograms accept an optional exemplar per observation
  (e.g. ``{"trace_id": ...}`` from the accuracy auditor); the plain
  Prometheus 0.0.4 text format (:meth:`MetricsRegistry.to_prometheus`)
  never renders them, while :meth:`MetricsRegistry.to_openmetrics`
  appends them to bucket lines in OpenMetrics ``# {label="v"} value``
  syntax.  The latest exemplar per bucket wins, which is the standard
  "most recent interesting trace" retention.
"""

from __future__ import annotations

import json
import re
import threading
from bisect import bisect_left
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "DEFAULT_LATENCY_BUCKETS",
]

_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")

#: Seconds-scale latency buckets (0.1 ms .. 10 s), suitable for both the
#: in-memory engine's sub-millisecond scans and paper-scale exact runs.
DEFAULT_LATENCY_BUCKETS: Tuple[float, ...] = (
    0.0001,
    0.00025,
    0.0005,
    0.001,
    0.0025,
    0.005,
    0.01,
    0.025,
    0.05,
    0.1,
    0.25,
    0.5,
    1.0,
    2.5,
    5.0,
    10.0,
)

LabelKey = Tuple[Tuple[str, str], ...]


def _escape_label_value(value: str) -> str:
    """Prometheus label-value escaping: backslash, double-quote, newline."""
    return (
        value.replace("\\", r"\\").replace('"', r"\"").replace("\n", r"\n")
    )


def _escape_help(text: str) -> str:
    """Prometheus HELP escaping: backslash and newline."""
    return text.replace("\\", r"\\").replace("\n", r"\n")


def _format_value(value: float) -> str:
    """Render a sample value the way Prometheus expects."""
    if value == float("inf"):
        return "+Inf"
    if value == float("-inf"):
        return "-Inf"
    if float(value).is_integer():
        return str(int(value))
    return repr(float(value))


class _Metric:
    """Shared bookkeeping: name, help text, declared label names."""

    kind = "untyped"

    def __init__(
        self,
        registry: "MetricsRegistry",
        name: str,
        help_text: str,
        labelnames: Sequence[str],
    ):
        if not _NAME_RE.match(name):
            raise ValueError(f"invalid metric name {name!r}")
        for label in labelnames:
            if not _LABEL_RE.match(label):
                raise ValueError(f"invalid label name {label!r}")
        self._registry = registry
        self.name = name
        self.help = help_text
        self.labelnames = tuple(labelnames)
        self._lock = threading.Lock()

    def _key(self, labels: Mapping[str, Any]) -> LabelKey:
        if set(labels) != set(self.labelnames):
            raise ValueError(
                f"metric {self.name!r} expects labels {self.labelnames}, "
                f"got {tuple(sorted(labels))}"
            )
        return tuple((name, str(labels[name])) for name in self.labelnames)


class Counter(_Metric):
    """A monotonically-increasing count (queries served, rows flushed...)."""

    kind = "counter"

    def __init__(self, registry, name, help_text, labelnames):
        super().__init__(registry, name, help_text, labelnames)
        self._values: Dict[LabelKey, float] = {}

    def inc(self, amount: float = 1.0, **labels: Any) -> None:
        if not self._registry.enabled:
            return
        if amount < 0:
            raise ValueError(
                f"counter {self.name!r} cannot decrease (inc {amount})"
            )
        key = self._key(labels)
        with self._lock:
            self._values[key] = self._values.get(key, 0.0) + amount

    def value(self, **labels: Any) -> float:
        with self._lock:
            return self._values.get(self._key(labels), 0.0)

    def collect(self) -> List[Dict[str, Any]]:
        with self._lock:
            values = sorted(self._values.items())
        return [{"labels": dict(key), "value": value} for key, value in values]


class Gauge(_Metric):
    """A value that can go up and down (staleness drift, pending rows...)."""

    kind = "gauge"

    def __init__(self, registry, name, help_text, labelnames):
        super().__init__(registry, name, help_text, labelnames)
        self._values: Dict[LabelKey, float] = {}

    def set(self, value: float, **labels: Any) -> None:
        if not self._registry.enabled:
            return
        key = self._key(labels)
        with self._lock:
            self._values[key] = float(value)

    def inc(self, amount: float = 1.0, **labels: Any) -> None:
        if not self._registry.enabled:
            return
        key = self._key(labels)
        with self._lock:
            self._values[key] = self._values.get(key, 0.0) + amount

    def dec(self, amount: float = 1.0, **labels: Any) -> None:
        self.inc(-amount, **labels)

    def value(self, **labels: Any) -> float:
        with self._lock:
            return self._values.get(self._key(labels), 0.0)

    def collect(self) -> List[Dict[str, Any]]:
        with self._lock:
            values = sorted(self._values.items())
        return [{"labels": dict(key), "value": value} for key, value in values]


class Histogram(_Metric):
    """Fixed-bucket histogram with Prometheus ``le`` (inclusive) semantics."""

    kind = "histogram"

    def __init__(
        self,
        registry,
        name,
        help_text,
        labelnames,
        buckets: Sequence[float] = DEFAULT_LATENCY_BUCKETS,
    ):
        super().__init__(registry, name, help_text, labelnames)
        bounds = tuple(float(b) for b in buckets)
        if not bounds:
            raise ValueError(f"histogram {self.name!r} needs >= 1 bucket")
        if list(bounds) != sorted(set(bounds)):
            raise ValueError(
                f"histogram {self.name!r} buckets must be strictly "
                f"increasing, got {bounds}"
            )
        if bounds[-1] == float("inf"):
            bounds = bounds[:-1]  # +Inf bucket is implicit
        self.buckets = bounds
        # per label set: [per-bucket counts..., overflow], sum, count
        self._counts: Dict[LabelKey, List[int]] = {}
        self._sums: Dict[LabelKey, float] = {}
        self._totals: Dict[LabelKey, int] = {}
        # per label set: bucket index -> (exemplar labels, observed value)
        self._exemplars: Dict[LabelKey, Dict[int, Tuple[Dict[str, str], float]]] = {}

    def observe(
        self,
        value: float,
        exemplar: Optional[Mapping[str, Any]] = None,
        **labels: Any,
    ) -> None:
        if not self._registry.enabled:
            return
        value = float(value)
        key = self._key(labels)
        with self._lock:
            counts = self._counts.get(key)
            if counts is None:
                counts = self._counts[key] = [0] * (len(self.buckets) + 1)
                self._sums[key] = 0.0
                self._totals[key] = 0
            # bisect_left gives the first bound >= value: inclusive `le`
            # edges.
            bucket = bisect_left(self.buckets, value)
            counts[bucket] += 1
            self._sums[key] += value
            self._totals[key] += 1
            if exemplar:
                self._exemplars.setdefault(key, {})[bucket] = (
                    {str(k): str(v) for k, v in exemplar.items()},
                    value,
                )

    def exemplars(self, **labels: Any) -> Dict[str, Tuple[Dict[str, str], float]]:
        """Latest exemplar per bucket bound (``"+Inf"`` for overflow)."""
        key = self._key(labels)
        with self._lock:
            stored = dict(self._exemplars.get(key, {}))
        bounds = [_format_value(b) for b in self.buckets] + ["+Inf"]
        return {
            bounds[index]: (dict(ex_labels), ex_value)
            for index, (ex_labels, ex_value) in sorted(stored.items())
        }

    def count(self, **labels: Any) -> int:
        with self._lock:
            return self._totals.get(self._key(labels), 0)

    def sum(self, **labels: Any) -> float:
        with self._lock:
            return self._sums.get(self._key(labels), 0.0)

    def bucket_counts(self, **labels: Any) -> Dict[float, int]:
        """Cumulative counts per upper bound, including ``inf``."""
        key = self._key(labels)
        with self._lock:
            counts = list(
                self._counts.get(key, [0] * (len(self.buckets) + 1))
            )
        out: Dict[float, int] = {}
        running = 0
        for bound, count in zip(self.buckets, counts):
            running += count
            out[bound] = running
        out[float("inf")] = running + counts[-1]
        return out

    def collect(self) -> List[Dict[str, Any]]:
        with self._lock:
            snapshot = {
                key: (
                    self._totals[key],
                    self._sums[key],
                    list(counts),
                    {
                        index: (dict(ex_labels), ex_value)
                        for index, (ex_labels, ex_value) in self._exemplars.get(
                            key, {}
                        ).items()
                    },
                )
                for key, counts in self._counts.items()
            }
        bounds = [_format_value(b) for b in self.buckets] + ["+Inf"]
        out = []
        for key in sorted(snapshot):
            total, total_sum, counts, exemplars = snapshot[key]
            buckets: Dict[str, int] = {}
            running = 0
            for bound, count in zip(self.buckets, counts):
                running += count
                buckets[_format_value(bound)] = running
            buckets["+Inf"] = running + counts[-1]
            sample: Dict[str, Any] = {
                "labels": dict(key),
                "count": total,
                "sum": total_sum,
                "buckets": buckets,
            }
            if exemplars:
                sample["exemplars"] = {
                    bounds[index]: {"labels": ex_labels, "value": ex_value}
                    for index, (ex_labels, ex_value) in sorted(
                        exemplars.items()
                    )
                }
            out.append(sample)
        return out


class MetricsRegistry:
    """Holds every metric and renders snapshots/exports.

    Disabled (the default) the registry still hands out metric objects --
    their write methods return immediately -- so instrumented code never
    branches on configuration.
    """

    def __init__(self, enabled: bool = False):
        self.enabled = enabled
        self._metrics: Dict[str, _Metric] = {}
        self._lock = threading.Lock()

    # -- switches ------------------------------------------------------------

    def enable(self) -> "MetricsRegistry":
        self.enabled = True
        return self

    def disable(self) -> "MetricsRegistry":
        self.enabled = False
        return self

    # -- metric handles ------------------------------------------------------

    def _get_or_create(self, cls, name, help_text, labelnames, **kwargs):
        with self._lock:
            existing = self._metrics.get(name)
            if existing is not None:
                if not isinstance(existing, cls):
                    raise ValueError(
                        f"metric {name!r} already registered as "
                        f"{existing.kind}, not {cls.kind}"
                    )
                if tuple(labelnames) != existing.labelnames:
                    raise ValueError(
                        f"metric {name!r} already registered with labels "
                        f"{existing.labelnames}, not {tuple(labelnames)}"
                    )
                return existing
            metric = cls(self, name, help_text, labelnames, **kwargs)
            self._metrics[name] = metric
            return metric

    def counter(
        self,
        name: str,
        help_text: str = "",
        labelnames: Sequence[str] = (),
    ) -> Counter:
        return self._get_or_create(Counter, name, help_text, labelnames)

    def gauge(
        self,
        name: str,
        help_text: str = "",
        labelnames: Sequence[str] = (),
    ) -> Gauge:
        return self._get_or_create(Gauge, name, help_text, labelnames)

    def histogram(
        self,
        name: str,
        help_text: str = "",
        labelnames: Sequence[str] = (),
        buckets: Sequence[float] = DEFAULT_LATENCY_BUCKETS,
    ) -> Histogram:
        return self._get_or_create(
            Histogram, name, help_text, labelnames, buckets=buckets
        )

    def get(self, name: str) -> Optional[_Metric]:
        with self._lock:
            return self._metrics.get(name)

    def names(self) -> List[str]:
        with self._lock:
            return sorted(self._metrics)

    # -- export --------------------------------------------------------------

    def snapshot(self) -> Dict[str, Dict[str, Any]]:
        """Recorded registry state as plain dicts (stable across exports).

        Metrics that have never recorded a sample (e.g. handles created
        while the registry was disabled) are omitted.
        """
        with self._lock:
            metrics = dict(self._metrics)
        out: Dict[str, Dict[str, Any]] = {}
        for name in sorted(metrics):
            metric = metrics[name]
            values = metric.collect()
            if not values:
                continue
            out[name] = {
                "type": metric.kind,
                "help": metric.help,
                "values": values,
            }
        return out

    def to_json(self, indent: Optional[int] = None) -> str:
        return json.dumps(self.snapshot(), indent=indent)

    def _exposition(self, exemplars: bool) -> str:
        """Shared renderer for the two text formats.

        Label order is stable -- sorted by label name, ``le`` forced last
        on bucket lines -- and non-empty output always ends with a
        trailing newline, so consecutive scrapes diff cleanly.
        """
        lines: List[str] = []
        with self._lock:
            metrics = dict(self._metrics)
        for name in sorted(metrics):
            metric = metrics[name]
            samples = metric.collect()
            if not samples:
                continue  # never-written metrics would emit headers only
            if metric.help:
                lines.append(f"# HELP {name} {_escape_help(metric.help)}")
            lines.append(f"# TYPE {name} {metric.kind}")
            if isinstance(metric, Histogram):
                for sample in samples:
                    labels = sample["labels"]
                    sample_exemplars = (
                        sample.get("exemplars", {}) if exemplars else {}
                    )
                    for bound, count in sample["buckets"].items():
                        lines.append(
                            _sample_line(
                                f"{name}_bucket",
                                {**labels, "le": bound},
                                count,
                                exemplar=sample_exemplars.get(bound),
                            )
                        )
                    lines.append(
                        _sample_line(f"{name}_sum", labels, sample["sum"])
                    )
                    lines.append(
                        _sample_line(f"{name}_count", labels, sample["count"])
                    )
            else:
                for sample in samples:
                    lines.append(
                        _sample_line(name, sample["labels"], sample["value"])
                    )
        if exemplars:
            lines.append("# EOF")
        return "\n".join(lines) + ("\n" if lines else "")

    def to_prometheus(self) -> str:
        """Prometheus text exposition format (version 0.0.4).

        Exemplars are never rendered here -- the 0.0.4 format has no
        syntax for them; scrape :meth:`to_openmetrics` instead.
        """
        return self._exposition(exemplars=False)

    def to_openmetrics(self) -> str:
        """OpenMetrics-style exposition with histogram bucket exemplars.

        Bucket lines carry their latest exemplar as
        ``... count # {trace_id="q0000002a"} 0.173`` and the body ends
        with the OpenMetrics ``# EOF`` terminator.
        """
        return self._exposition(exemplars=True)

    def reset(self) -> None:
        """Drop all recorded values and registered metrics."""
        with self._lock:
            self._metrics.clear()


def _render_labels(labels: Mapping[str, Any]) -> str:
    """``{a="1",le="0.5"}`` with sorted names, ``le`` always last."""
    ordered = sorted(labels, key=lambda name: (name == "le", name))
    return (
        "{"
        + ",".join(
            f'{key}="{_escape_label_value(str(labels[key]))}"'
            for key in ordered
        )
        + "}"
    )


def _sample_line(
    name: str,
    labels: Mapping[str, Any],
    value: float,
    exemplar: Optional[Mapping[str, Any]] = None,
) -> str:
    rendered = _render_labels(labels) if labels else ""
    line = f"{name}{rendered} {_format_value(float(value))}"
    if exemplar:
        line += (
            f" # {_render_labels(exemplar['labels'])} "
            f"{_format_value(float(exemplar['value']))}"
        )
    return line
