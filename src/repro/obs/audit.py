"""The accuracy auditor: recompute sampled answers exactly, judge the bounds.

The congressional-sample pipeline *promises* per-group error bounds; this
module is the only component that checks the promise against ground truth
while serving.  A configurable fraction of non-degraded served answers is
snapshotted at answer time and re-executed through the system's exact
path (partition-parallel, off the serving thread), then compared group by
group:

* a group **violates** when ``|estimate - exact| > halfwidth`` (plus a
  tiny roundoff slack) for any audited aggregate;
* observed relative error and the observed-error-over-promised-bound
  ratio land in ``aqua_audit_*`` histograms, with the violating query's
  trace id attached as an exemplar so a bad bucket points at a concrete
  query;
* the source event is back-annotated (``audited``, ``observed_rel_error``,
  ``bound_violations``), its trace is promoted in the
  :class:`~repro.obs.trace.TraceStore`, and the verdict feeds the
  ``bound_violation_rate`` SLO.

Correctness under concurrency: the audit runs *later* than the answer, so
the base table may have moved.  Every task snapshots the table's
monotonic data version at answer time and the auditor re-checks it before
and after the exact recomputation -- any mismatch (insert, flush,
refresh, re-registration) skips the audit rather than reporting a bogus
violation against different data.

The auditor is deliberately system-shape-agnostic (it needs only
``table_version``, ``exact``, and ``telemetry``) so :mod:`repro.obs`
stays importable without :mod:`repro.aqua`.
"""

from __future__ import annotations

import math
import queue
import threading
import time
from dataclasses import dataclass, field
from time import perf_counter
from typing import Any, Callable, Dict, List, Optional, Tuple

import numpy as np

__all__ = ["AccuracyAuditor", "AuditConfig", "AuditStats"]

#: Skip reasons (the ``reason`` label of ``aqua_audit_skipped_total``).
SKIP_VERSION_MISMATCH = "version_mismatch"
SKIP_TABLE_MISSING = "table_missing"
SKIP_QUEUE_FULL = "queue_full"
SKIP_DEGRADED = "degraded"
SKIP_EXACT_FAILED = "exact_failed"

_REL_ERROR_BUCKETS = (
    0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5,
)
_RATIO_BUCKETS = (0.1, 0.25, 0.5, 0.75, 0.9, 1.0, 1.25, 1.5, 2.0, 5.0, 10.0)


@dataclass(frozen=True)
class AuditConfig:
    """Sampling and sizing knobs for one :class:`AccuracyAuditor`.

    Attributes:
        sample_fraction: fraction of offered answers audited (0 disables
            sampling entirely; 1 audits everything).
        max_queue: audit tasks buffered; offers beyond it are skipped
            (the audit must never apply backpressure to serving).
        relative_slack: multiplicative tolerance on the promised
            half-width before a group counts as violating, absorbing
            floating-point roundoff between the estimator and the audit.
        absolute_slack: additive tolerance, for near-zero bounds.
    """

    sample_fraction: float = 0.05
    max_queue: int = 64
    relative_slack: float = 1e-9
    absolute_slack: float = 1e-9

    def __post_init__(self) -> None:
        if not 0.0 <= self.sample_fraction <= 1.0:
            raise ValueError(
                f"sample_fraction must be in [0, 1], got {self.sample_fraction}"
            )
        if self.max_queue < 1:
            raise ValueError(f"max_queue must be >= 1, got {self.max_queue}")


@dataclass
class AuditStats:
    """Thread-safe-by-copy counters (the auditor mutates under its lock)."""

    offered: int = 0
    sampled: int = 0
    audited: int = 0
    violating_queries: int = 0
    violating_groups: int = 0
    groups_checked: int = 0
    skipped: Dict[str, int] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "offered": self.offered,
            "sampled": self.sampled,
            "audited": self.audited,
            "violating_queries": self.violating_queries,
            "violating_groups": self.violating_groups,
            "groups_checked": self.groups_checked,
            "skipped": dict(self.skipped),
        }

    def describe(self) -> str:
        lines = [
            f"audited {self.audited}/{self.sampled} sampled "
            f"(of {self.offered} offered): "
            f"{self.violating_queries} violating queries, "
            f"{self.violating_groups}/{self.groups_checked} violating groups"
        ]
        if self.skipped:
            rendered = ", ".join(
                f"{reason} {count}"
                for reason, count in sorted(self.skipped.items())
            )
            lines.append(f"skipped: {rendered}")
        return "\n".join(lines)


@dataclass
class _AuditTask:
    """Everything needed to audit one answer after the fact."""

    query: Any  # engine Query; opaque here to avoid importing repro.aqua
    result: Any  # answer Table snapshot (immutable by convention)
    table: str
    version: int
    trace_id: Optional[str]
    aggregates: Tuple[Tuple[str, str], ...]  # (alias, error column)


@dataclass
class AuditFinding:
    """One audited query's verdict (what :meth:`drain` returns)."""

    trace_id: Optional[str]
    table: str
    groups_checked: int
    violations: int
    max_observed_rel_error: float
    violating_groups: Tuple[Tuple, ...] = ()


def _row_keys(table, group_by: List[str]) -> List[Tuple]:
    """Plain-python group keys per row (empty tuple for no GROUP BY)."""
    if not group_by:
        return [() for _ in range(table.num_rows)]
    arrays = [table.column(name) for name in group_by]
    return [
        tuple(
            arr[i].item() if hasattr(arr[i], "item") else arr[i]
            for arr in arrays
        )
        for i in range(table.num_rows)
    ]


class AccuracyAuditor:
    """Shadow-audits a sampled fraction of served answers against exact.

    Args:
        system: anything with ``table_version(name)``, ``exact(query)``,
            and a ``telemetry`` bundle (an
            :class:`~repro.aqua.system.AquaSystem`).
        config: sampling/queue knobs.
        slo: optional :class:`~repro.obs.slo.SLOMonitor`; every audited
            answer feeds its ``bound_violation_rate`` stream.
        rng: sampling source (seeded in tests for determinism).
        background: start a daemon worker draining the queue (production
            mode).  ``False`` leaves tasks queued for an explicit,
            deterministic :meth:`drain` (test mode).
    """

    def __init__(
        self,
        system: Any,
        config: Optional[AuditConfig] = None,
        slo: Any = None,
        rng: Optional[np.random.Generator] = None,
        background: bool = True,
    ):
        self.system = system
        self.config = config if config is not None else AuditConfig()
        self.slo = slo
        self._rng = rng if rng is not None else np.random.default_rng()
        self._lock = threading.Lock()
        self._stats = AuditStats()
        self._queue: "queue.Queue[Optional[_AuditTask]]" = queue.Queue(
            maxsize=self.config.max_queue
        )
        self._worker: Optional[threading.Thread] = None
        self._closed = False
        if background:
            self._worker = threading.Thread(
                target=self._worker_loop, name="aqua-audit", daemon=True
            )
            self._worker.start()

    # -- lifecycle -----------------------------------------------------------

    def close(self, wait: bool = True, timeout: float = 5.0) -> None:
        """Stop the background worker (drains what is already queued)."""
        self._closed = True
        if self._worker is not None:
            self._queue.put(None)
            if wait:
                self._worker.join(timeout=timeout)
            self._worker = None

    def __enter__(self) -> "AccuracyAuditor":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    # -- the serving-side entry point ----------------------------------------

    def offer(self, query: Any, answer: Any, event: Any = None) -> bool:
        """Maybe enqueue one served answer for audit; never blocks.

        Returns True when the answer was sampled and queued.  Degraded
        answers are never audited: their contract is "cheap and honest",
        not "within bounds", so auditing them would poison the
        ``bound_violation_rate`` signal.  The serving layer additionally
        suppresses the offer (``audit=False``) before degrading.
        """
        if self._closed:
            return False
        with self._lock:
            self._stats.offered += 1
            if answer.guard is not None and answer.guard.degraded:
                self._skip_locked(SKIP_DEGRADED)
                return False
            fraction = self.config.sample_fraction
            if fraction <= 0.0 or (
                fraction < 1.0 and self._rng.random() >= fraction
            ):
                return False
            self._stats.sampled += 1
        aggregates = tuple(
            (alias, f"{alias}_error")
            for alias in self._bounded_aliases(query, answer.result)
        )
        task = _AuditTask(
            query=query,
            result=answer.result,
            table=answer.synopsis.base_name,
            version=(
                event.synopsis_version
                if event is not None and event.synopsis_version is not None
                else self._current_version(answer.synopsis.base_name)
            ),
            trace_id=(
                event.trace_id if event is not None else
                getattr(answer, "trace_id", None)
            ),
            aggregates=aggregates,
        )
        try:
            self._queue.put_nowait(task)
        except queue.Full:
            with self._lock:
                self._skip_locked(SKIP_QUEUE_FULL)
            return False
        return True

    @staticmethod
    def _bounded_aliases(query: Any, result: Any) -> List[str]:
        return [
            a.alias
            for a in query.aggregates()
            if f"{a.alias}_error" in result.schema
        ]

    def _current_version(self, table: str) -> int:
        try:
            return self.system.table_version(table)
        except Exception:
            return -1

    # -- processing ----------------------------------------------------------

    def _worker_loop(self) -> None:
        while True:
            task = self._queue.get()
            if task is None:
                break
            try:
                self._process(task)
            except Exception:
                # The audit is best-effort; a crashed audit must never
                # take the worker (and all future audits) down with it.
                with self._lock:
                    self._skip_locked(SKIP_EXACT_FAILED)

    def drain(self, max_tasks: Optional[int] = None) -> List[AuditFinding]:
        """Synchronously process queued tasks (deterministic test mode).

        Safe to call alongside a background worker, though pointless --
        whoever gets a task first audits it.
        """
        findings = []
        processed = 0
        while max_tasks is None or processed < max_tasks:
            try:
                task = self._queue.get_nowait()
            except queue.Empty:
                break
            if task is None:
                continue
            try:
                finding = self._process(task)
            except Exception:
                with self._lock:
                    self._skip_locked(SKIP_EXACT_FAILED)
                finding = None
            if finding is not None:
                findings.append(finding)
            processed += 1
        return findings

    @property
    def pending(self) -> int:
        return self._queue.qsize()

    @property
    def stats(self) -> AuditStats:
        with self._lock:
            return AuditStats(
                offered=self._stats.offered,
                sampled=self._stats.sampled,
                audited=self._stats.audited,
                violating_queries=self._stats.violating_queries,
                violating_groups=self._stats.violating_groups,
                groups_checked=self._stats.groups_checked,
                skipped=dict(self._stats.skipped),
            )

    def _skip_locked(self, reason: str) -> None:
        self._stats.skipped[reason] = self._stats.skipped.get(reason, 0) + 1
        metrics = self.system.telemetry.metrics
        if metrics.enabled:
            metrics.counter(
                "aqua_audit_skipped_total",
                "Audit tasks abandoned, by reason.",
                ("reason",),
            ).inc(reason=reason)

    def _process(self, task: _AuditTask) -> Optional[AuditFinding]:
        start = perf_counter()
        current = self._current_version(task.table)
        if current < 0:
            with self._lock:
                self._skip_locked(SKIP_TABLE_MISSING)
            return None
        if current != task.version:
            with self._lock:
                self._skip_locked(SKIP_VERSION_MISMATCH)
            return None
        try:
            exact = self.system.exact(task.query)
        except Exception:
            with self._lock:
                self._skip_locked(SKIP_EXACT_FAILED)
            return None
        # exact() flushes pending rows; a concurrent mutation (or a flush
        # of inserts that raced the version read) means the exact answer
        # no longer describes the audited answer's data.
        if self._current_version(task.table) != task.version:
            with self._lock:
                self._skip_locked(SKIP_VERSION_MISMATCH)
            return None
        finding = self._judge(task, exact)
        self._record(task, finding, perf_counter() - start)
        return finding

    def _judge(self, task: _AuditTask, exact: Any) -> AuditFinding:
        group_by = list(task.query.group_by)
        approx_keys = _row_keys(task.result, group_by)
        exact_rows = {
            key: i for i, key in enumerate(_row_keys(exact, group_by))
        }
        violations = 0
        checked = 0
        max_rel = 0.0
        violating: List[Tuple] = []
        cfg = self.config
        for alias, error_column in task.aggregates:
            estimates = task.result.column(alias)
            halfwidths = task.result.column(error_column)
            exact_values = exact.column(alias)
            for i, key in enumerate(approx_keys):
                row = exact_rows.get(key)
                if row is None:
                    continue  # group absent from exact: version should
                    # have caught this; be conservative, not wrong
                halfwidth = float(halfwidths[i])
                if not math.isfinite(halfwidth):
                    continue  # no promise was made for this group
                estimate = float(estimates[i])
                truth = float(exact_values[row])
                observed = abs(estimate - truth)
                checked += 1
                if truth != 0.0:
                    rel = observed / abs(truth)
                    if math.isfinite(rel):
                        max_rel = max(max_rel, rel)
                allowed = (
                    halfwidth * (1.0 + cfg.relative_slack)
                    + cfg.absolute_slack
                )
                if observed > allowed:
                    violations += 1
                    if len(violating) < 8:
                        violating.append(key + (alias,))
        return AuditFinding(
            trace_id=task.trace_id,
            table=task.table,
            groups_checked=checked,
            violations=violations,
            max_observed_rel_error=max_rel,
            violating_groups=tuple(violating),
        )

    def _record(
        self, task: _AuditTask, finding: AuditFinding, seconds: float
    ) -> None:
        telemetry = self.system.telemetry
        metrics = telemetry.metrics
        exemplar = (
            {"trace_id": task.trace_id} if task.trace_id is not None else None
        )
        with self._lock:
            self._stats.audited += 1
            self._stats.groups_checked += finding.groups_checked
            self._stats.violating_groups += finding.violations
            if finding.violations:
                self._stats.violating_queries += 1
        if metrics.enabled:
            metrics.counter(
                "aqua_audit_total",
                "Answers audited against the exact path, per table.",
                ("table",),
            ).inc(table=task.table)
            metrics.histogram(
                "aqua_audit_seconds",
                "Wall time per audit (exact recomputation + comparison).",
                ("table",),
            ).observe(seconds, table=task.table)
            if finding.groups_checked:
                metrics.histogram(
                    "aqua_audit_observed_rel_error",
                    "Worst observed relative error per audited answer.",
                    ("table",),
                    buckets=_REL_ERROR_BUCKETS,
                ).observe(
                    finding.max_observed_rel_error,
                    exemplar=exemplar if finding.violations else None,
                    table=task.table,
                )
            if finding.violations:
                metrics.counter(
                    "aqua_audit_violations_total",
                    "Audited groups whose observed error exceeded the "
                    "promised bound, per table.",
                    ("table",),
                ).inc(finding.violations, table=task.table)
                metrics.histogram(
                    "aqua_audit_violation_groups",
                    "Violating groups per violating audited answer.",
                    ("table",),
                    buckets=(1, 2, 5, 10, 25, 50, 100),
                ).observe(
                    finding.violations, exemplar=exemplar, table=task.table
                )
        telemetry.events.annotate(
            task.trace_id,
            audited=True,
            observed_rel_error=finding.max_observed_rel_error,
            bound_violations=finding.violations,
        )
        if finding.violations and task.trace_id is not None:
            telemetry.traces.promote(task.trace_id, "bound_violation")
        if self.slo is not None:
            self.slo.record_audit(finding.violations, finding.groups_checked)

    # -- convenience ---------------------------------------------------------

    def wait_idle(self, timeout: float = 5.0) -> bool:
        """Block until the queue is empty (background mode); True on success."""
        end = time.monotonic() + timeout
        while time.monotonic() < end:
            if self._queue.empty():
                return True
            time.sleep(0.005)
        return self._queue.empty()
