"""Congressional samples for approximate answering of group-by queries.

A full reproduction of Acharya, Gibbons & Poosala (SIGMOD 2000): the
House / Senate / Basic Congress / Congress sample allocation strategies, the
four query-rewriting strategies, one-pass construction and incremental
maintenance, the Aqua middleware they live in, and the paper's experimental
workloads.

Quickstart::

    from repro import AquaSystem, generate_census, CensusConfig

    aqua = AquaSystem(space_budget=5000)
    aqua.register_table("census", generate_census(CensusConfig()))
    answer = aqua.answer(
        "SELECT st, avg(sal) AS avg_sal FROM census GROUP BY st"
    )
    print(answer.result.to_dicts()[:3])

See ``examples/`` for runnable walkthroughs and ``DESIGN.md`` for the
paper-to-module map.
"""

from .aqua import (
    ApproximateAnswer,
    AquaError,
    AquaSystem,
    ComparisonReport,
    CubeExplorer,
    ForeignKey,
    GuardPolicy,
    GuardReport,
    Measure,
    QueryLog,
    RefreshPolicy,
    StarSchema,
    Synopsis,
    SynopsisHealth,
    build_join_synopsis,
    materialize_star_join,
)
from .errors import (
    GuardViolationError,
    StaleSynopsisError,
    SynopsisCorruptError,
    SynopsisMissingError,
    TableNotRegisteredError,
)
from .core import (
    Allocation,
    BasicCongress,
    Congress,
    GroupPreferences,
    GroupingCriterion,
    House,
    MultiCriteriaCongress,
    RangeBiasCriterion,
    Senate,
    VarianceCriterion,
    WorkloadCongress,
    allocate_from_table,
    build_sample,
)
from .engine import (
    Catalog,
    Column,
    ColumnType,
    Schema,
    Table,
    execute,
    parse_query,
)
from .estimators import GroupEstimate, estimate, estimate_single
from .maintenance import (
    BasicCongressMaintainer,
    CongressMaintainer,
    CountDataCube,
    HouseMaintainer,
    SenateMaintainer,
    construct_from_cube,
    construct_one_pass,
    construct_congress_topup,
)
from .metrics import GroupByError, groupby_error, mean_errors
from .obs import (
    MetricsRegistry,
    QueryTrace,
    Span,
    Telemetry,
    Tracer,
)
from .rewrite import (
    Integrated,
    KeyNormalized,
    NestedIntegrated,
    Normalized,
    recommend_strategy,
    strategy_by_name,
)
from .sampling import StratifiedSample
from .synthetic import (
    CensusConfig,
    LineitemConfig,
    generate_census,
    generate_lineitem,
    qg0_set,
    qg2,
    qg3,
)

__version__ = "1.0.0"

__all__ = [
    "Allocation",
    "ApproximateAnswer",
    "AquaError",
    "AquaSystem",
    "BasicCongress",
    "BasicCongressMaintainer",
    "Catalog",
    "CensusConfig",
    "ComparisonReport",
    "Column",
    "ColumnType",
    "Congress",
    "CongressMaintainer",
    "CountDataCube",
    "CubeExplorer",
    "ForeignKey",
    "GroupByError",
    "GroupEstimate",
    "GroupPreferences",
    "GroupingCriterion",
    "GuardPolicy",
    "GuardReport",
    "GuardViolationError",
    "House",
    "HouseMaintainer",
    "Integrated",
    "KeyNormalized",
    "LineitemConfig",
    "MetricsRegistry",
    "MultiCriteriaCongress",
    "Measure",
    "NestedIntegrated",
    "Normalized",
    "QueryLog",
    "QueryTrace",
    "RangeBiasCriterion",
    "RefreshPolicy",
    "Schema",
    "Senate",
    "SenateMaintainer",
    "Span",
    "StaleSynopsisError",
    "StarSchema",
    "StratifiedSample",
    "Synopsis",
    "SynopsisCorruptError",
    "SynopsisHealth",
    "SynopsisMissingError",
    "Table",
    "TableNotRegisteredError",
    "Telemetry",
    "Tracer",
    "VarianceCriterion",
    "WorkloadCongress",
    "allocate_from_table",
    "build_join_synopsis",
    "build_sample",
    "construct_congress_topup",
    "construct_from_cube",
    "construct_one_pass",
    "estimate",
    "estimate_single",
    "execute",
    "generate_census",
    "generate_lineitem",
    "groupby_error",
    "materialize_star_join",
    "mean_errors",
    "parse_query",
    "qg0_set",
    "qg2",
    "qg3",
    "recommend_strategy",
    "strategy_by_name",
]
