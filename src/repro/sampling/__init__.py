"""Sampling primitives: reservoirs, Bernoulli helpers, strata, rounding."""

from .bernoulli import BernoulliSampler, subsample_exact, thin_to_probability
from .groups import (
    GroupKey,
    all_groupings,
    finest_group_ids,
    group_counts,
    make_key,
    project_key,
    projected_counts,
)
from .reservoir import ReservoirSampler, SkipReservoirSampler, reservoir_sample
from .rounding import floor_round, largest_remainder_round, randomized_round
from .stratified import GID_COLUMN, SF_COLUMN, StratifiedSample, Stratum

__all__ = [
    "BernoulliSampler",
    "GID_COLUMN",
    "GroupKey",
    "ReservoirSampler",
    "SF_COLUMN",
    "SkipReservoirSampler",
    "StratifiedSample",
    "Stratum",
    "all_groupings",
    "finest_group_ids",
    "floor_round",
    "group_counts",
    "largest_remainder_round",
    "make_key",
    "project_key",
    "projected_counts",
    "randomized_round",
    "reservoir_sample",
    "subsample_exact",
    "thin_to_probability",
]
