"""Stratified sample container and sample-relation materialization.

A :class:`StratifiedSample` is the physical realization of any of the
paper's allocation strategies: each finest group is a *stratum* holding a
uniform random sample (without replacement) of its tuples, together with the
stratum population ``n_g``.  From it we derive the per-tuple *ScaleFactor*
(inverse sampling rate, Section 5.1) and materialize the sample relation
layouts required by the four rewriting strategies:

* *Integrated* / *Nested-integrated*: one relation with an ``SF`` column.
* *Normalized*: plain sample relation + ``AuxRel(grouping columns, SF)``.
* *Key-normalized*: sample relation with a ``GID`` column +
  ``AuxRel(GID, SF)``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from ..engine.schema import Column, ColumnType, Schema
from ..engine.table import Table
from .groups import GroupKey, finest_group_ids

__all__ = ["Stratum", "StratifiedSample", "SF_COLUMN", "GID_COLUMN"]

SF_COLUMN = "sf"
GID_COLUMN = "gid"


@dataclass(frozen=True)
class Stratum:
    """One stratum: a uniform sample of the tuples of one finest group."""

    key: GroupKey
    population: int
    row_indices: np.ndarray  # indices into the base table

    @property
    def sample_size(self) -> int:
        return len(self.row_indices)

    @property
    def sampling_rate(self) -> float:
        """Fraction of the stratum's tuples in the sample (0 if empty)."""
        if self.population == 0:
            return 0.0
        return self.sample_size / self.population

    @property
    def scale_factor(self) -> float:
        """Inverse sampling rate: each sampled tuple represents this many."""
        if self.sample_size == 0:
            return float("nan")
        return self.population / self.sample_size


class StratifiedSample:
    """Per-group uniform samples of a base table, with stratum metadata."""

    def __init__(
        self,
        base_table: Table,
        grouping_columns: Sequence[str],
        strata: Mapping[GroupKey, Stratum],
    ):
        self._base = base_table
        self._grouping_columns = tuple(grouping_columns)
        self._strata: Dict[GroupKey, Stratum] = dict(strata)

    # -- construction --------------------------------------------------------

    @classmethod
    def build(
        cls,
        table: Table,
        grouping_columns: Sequence[str],
        allocation: Mapping[GroupKey, int],
        rng: Optional[np.random.Generator] = None,
        scan=None,
    ) -> "StratifiedSample":
        """Draw a uniform sample without replacement from each group.

        Args:
            table: base relation.
            grouping_columns: the stratification columns ``G``.
            allocation: integer tuples-per-group targets (e.g. from
                :meth:`repro.core.allocation.Allocation.rounded`); groups
                absent from the mapping get zero tuples.  Targets are capped
                at the group population.
            rng: numpy random generator (defaults to a fresh one).
            scan: optional partitioned-scan runner exposing
                ``map_partitions(table, fn)`` (e.g. a
                :class:`~repro.engine.executor.ParallelExecutor`).  The
                group-membership pass -- the expensive full-table scan of
                the construction -- then runs partition-parallel.  Because
                range partitions preserve row order and merged member lists
                are concatenated in partition order, the per-stratum member
                arrays (and therefore the drawn sample, given the same
                ``rng``) are *identical* to the serial scan's.
        """
        rng = rng if rng is not None else np.random.default_rng()
        members_by_key = cls._group_members(table, grouping_columns, scan)
        strata: Dict[GroupKey, Stratum] = {}
        for key, members in members_by_key.items():
            want = min(int(allocation.get(key, 0)), len(members))
            if want > 0:
                chosen = rng.choice(members, size=want, replace=False)
                chosen = np.sort(chosen)
            else:
                chosen = np.empty(0, dtype=np.int64)
            strata[key] = Stratum(key, len(members), chosen)
        return cls(table, grouping_columns, strata)

    @staticmethod
    def _group_members(
        table: Table, grouping_columns: Sequence[str], scan=None
    ) -> Dict[GroupKey, np.ndarray]:
        """Per-finest-group base-row indices, ascending, keys sorted.

        With ``scan``, each partition computes its local membership and the
        global lists are stitched together with the partitions' row offsets.
        """
        if scan is None:
            ids, keys = finest_group_ids(table, grouping_columns)
            order = np.argsort(ids, kind="stable")
            sorted_ids = ids[order]
            boundaries = np.searchsorted(sorted_ids, np.arange(len(keys) + 1))
            return {
                key: order[boundaries[gid] : boundaries[gid + 1]]
                for gid, key in enumerate(keys)
            }

        def local_members(part):
            local = StratifiedSample._group_members(
                part.table, grouping_columns
            )
            return {
                key: indices + part.row_offset
                for key, indices in local.items()
            }

        merged: Dict[GroupKey, List[np.ndarray]] = {}
        for partial in scan.map_partitions(table, local_members):
            for key, indices in partial.items():
                merged.setdefault(key, []).append(indices)
        return {
            key: np.concatenate(merged[key]) for key in sorted(merged)
        }

    @classmethod
    def from_member_lists(
        cls,
        base_table: Table,
        grouping_columns: Sequence[str],
        members: Mapping[GroupKey, Sequence[int]],
        populations: Mapping[GroupKey, int],
    ) -> "StratifiedSample":
        """Assemble from explicit per-group row-index lists.

        Used by the maintenance algorithms, which track sampled row indices
        themselves and only need the container/materialization logic.
        """
        strata = {
            key: Stratum(
                key,
                int(populations[key]),
                np.asarray(sorted(rows), dtype=np.int64),
            )
            for key, rows in members.items()
        }
        return cls(base_table, grouping_columns, strata)

    # -- accessors -----------------------------------------------------------

    @property
    def base_table(self) -> Table:
        return self._base

    @property
    def grouping_columns(self) -> Tuple[str, ...]:
        return self._grouping_columns

    @property
    def strata(self) -> Dict[GroupKey, Stratum]:
        return dict(self._strata)

    def stratum(self, key: GroupKey) -> Stratum:
        return self._strata[key]

    @property
    def total_sample_size(self) -> int:
        return sum(s.sample_size for s in self._strata.values())

    @property
    def total_population(self) -> int:
        return sum(s.population for s in self._strata.values())

    def sample_sizes(self) -> Dict[GroupKey, int]:
        return {key: s.sample_size for key, s in self._strata.items()}

    def scale_factors(self) -> Dict[GroupKey, float]:
        return {
            key: s.scale_factor
            for key, s in self._strata.items()
            if s.sample_size > 0
        }

    # -- materialization -----------------------------------------------------

    def _ordered_nonempty(self) -> List[Stratum]:
        return [s for __, s in sorted(self._strata.items()) if s.sample_size > 0]

    def _all_indices_and_sf(self) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Concatenated row indices, per-row SF, and per-row dense gid."""
        strata = self._ordered_nonempty()
        if not strata:
            empty = np.empty(0, dtype=np.int64)
            return empty, np.empty(0, dtype=np.float64), empty
        indices = np.concatenate([s.row_indices for s in strata])
        sfs = np.concatenate(
            [np.full(s.sample_size, s.scale_factor) for s in strata]
        )
        gids = np.concatenate(
            [np.full(s.sample_size, gid, dtype=np.int64)
             for gid, s in enumerate(strata)]
        )
        return indices, sfs, gids

    def sample_table(self) -> Table:
        """The bare sample relation (no scale-factor bookkeeping)."""
        indices, __, __ = self._all_indices_and_sf()
        return self._base.take(indices)

    def integrated_relation(self) -> Table:
        """Sample relation with a per-tuple ``SF`` column (Figure 8/11)."""
        indices, sfs, __ = self._all_indices_and_sf()
        return self._base.take(indices).with_column(
            Column(SF_COLUMN, ColumnType.FLOAT), sfs
        )

    def normalized_relations(self) -> Tuple[Table, Table]:
        """``(SampRel, AuxRel)`` keyed by the grouping columns (Figure 9)."""
        indices, __, __ = self._all_indices_and_sf()
        samp_rel = self._base.take(indices)
        strata = self._ordered_nonempty()
        aux_schema = Schema(
            [self._base.schema.column(name) for name in self._grouping_columns]
            + [Column(SF_COLUMN, ColumnType.FLOAT)]
        )
        aux_rows = [tuple(s.key) + (s.scale_factor,) for s in strata]
        return samp_rel, Table.from_rows(aux_schema, aux_rows)

    def key_normalized_relations(self) -> Tuple[Table, Table]:
        """``(SampRel + GID, AuxRel(GID, SF))`` (Figure 10)."""
        indices, __, gids = self._all_indices_and_sf()
        samp_rel = self._base.take(indices).with_column(
            Column(GID_COLUMN, ColumnType.INT), gids
        )
        strata = self._ordered_nonempty()
        aux_schema = Schema(
            [Column(GID_COLUMN, ColumnType.INT), Column(SF_COLUMN, ColumnType.FLOAT)]
        )
        aux_rows = [(gid, s.scale_factor) for gid, s in enumerate(strata)]
        return samp_rel, Table.from_rows(aux_schema, aux_rows)
