"""Bernoulli (probability-proportional) sampling helpers.

These support the Eq. 8 variant of Congress construction and its maintenance
algorithm (Section 6): each tuple is independently selected with a
per-group probability, and when that probability later *decreases* from
``p`` to ``q`` the retained tuples are re-flipped with probability ``q/p``
(the [GM98]-style eviction process the paper cites).
"""

from __future__ import annotations

from typing import List, Optional, Sequence, TypeVar

import numpy as np

__all__ = ["BernoulliSampler", "thin_to_probability", "subsample_exact"]

T = TypeVar("T")


class BernoulliSampler:
    """Select each offered item independently with a caller-supplied rate."""

    def __init__(self, rng: Optional[np.random.Generator] = None):
        self._rng = rng if rng is not None else np.random.default_rng()
        self._offered = 0
        self._accepted = 0

    @property
    def offered(self) -> int:
        return self._offered

    @property
    def accepted(self) -> int:
        return self._accepted

    def accept(self, probability: float) -> bool:
        """Flip a coin with the given probability (clamped to [0, 1])."""
        self._offered += 1
        probability = min(1.0, max(0.0, probability))
        selected = bool(self._rng.random() < probability)
        if selected:
            self._accepted += 1
        return selected


def thin_to_probability(
    items: Sequence[T],
    old_probability: float,
    new_probability: float,
    rng: Optional[np.random.Generator] = None,
) -> List[T]:
    """Re-flip items kept at ``old_probability`` down to ``new_probability``.

    Each surviving item has marginal retention probability exactly
    ``new_probability`` (items are dropped independently w.p.
    ``1 - new/old``).  Requires ``new <= old``; with ``new == old`` items
    are returned unchanged.
    """
    if new_probability > old_probability + 1e-12:
        raise ValueError(
            f"cannot thin upward: old={old_probability} new={new_probability}"
        )
    if old_probability <= 0:
        return []
    ratio = min(1.0, new_probability / old_probability)
    if ratio >= 1.0:
        return list(items)
    rng = rng if rng is not None else np.random.default_rng()
    keep_mask = rng.random(len(items)) < ratio
    return [item for item, keep in zip(items, keep_mask) if keep]


def subsample_exact(
    items: Sequence[T], size: int, rng: Optional[np.random.Generator] = None
) -> List[T]:
    """Uniform subsample of exactly ``min(size, len(items))`` items."""
    if size >= len(items):
        return list(items)
    rng = rng if rng is not None else np.random.default_rng()
    idx = rng.choice(len(items), size=size, replace=False)
    return [items[int(i)] for i in idx]
