"""Group machinery: finest partitions, groupings, and subgroup projection.

Terminology follows Section 4.6 of the paper:

* ``G`` -- the full set of *grouping attributes* of a relation.
* a *grouping* ``T ⊆ G`` -- the set of columns a query groups by
  (``T = ∅`` is the no-group-by query).
* ``𝒢`` -- the set of non-empty *groups at the finest partitioning*, i.e.
  distinct value combinations over all of ``G``.  Every group under any
  coarser grouping ``T`` is a union of finest groups (*subgroups*).

A group is identified by a :class:`GroupKey`: a tuple of plain Python values
aligned with the grouping columns that define it.
"""

from __future__ import annotations

from itertools import combinations
from typing import Dict, List, Sequence, Tuple

import numpy as np

from ..engine.table import Table

__all__ = [
    "GroupKey",
    "all_groupings",
    "finest_group_ids",
    "group_counts",
    "project_key",
    "projected_counts",
]

GroupKey = Tuple  # tuple of plain python scalars


def _as_python(value) -> object:
    """Normalize numpy scalars to plain Python so GroupKeys hash stably."""
    if isinstance(value, np.generic):
        return value.item()
    return value


def make_key(values: Sequence) -> GroupKey:
    """Build a normalized :data:`GroupKey` from raw values."""
    return tuple(_as_python(v) for v in values)


def all_groupings(grouping_columns: Sequence[str]) -> List[Tuple[str, ...]]:
    """Enumerate the power set ``U`` of the grouping columns.

    Order: by subset size then column order, so ``()`` (no group-by) comes
    first and the full set ``G`` last -- matching how the one-pass Congress
    construction pseudocode of Section 4.6 iterates ``i = 0, 1, ..., |G|``.

    >>> all_groupings(["a", "b"])
    [(), ('a',), ('b',), ('a', 'b')]
    """
    columns = list(grouping_columns)
    result: List[Tuple[str, ...]] = []
    for size in range(len(columns) + 1):
        for subset in combinations(range(len(columns)), size):
            result.append(tuple(columns[i] for i in subset))
    return result


def finest_group_ids(
    table: Table, grouping_columns: Sequence[str]
) -> Tuple[np.ndarray, List[GroupKey]]:
    """Dense finest-partition group ids for every row.

    Returns ``(ids, keys)`` with ``ids[i]`` indexing into ``keys``; keys are
    normalized tuples over ``grouping_columns``.
    """
    from ..engine.groupby import group_ids_for

    ids, raw_keys, __ = group_ids_for(table, list(grouping_columns))
    keys = [make_key(k) for k in raw_keys]
    return ids, keys


def group_counts(
    table: Table, grouping_columns: Sequence[str], scan=None
) -> Dict[GroupKey, int]:
    """Tuple counts ``n_g`` per finest group ``g`` (all groups non-empty).

    ``scan`` (optionally) is a partitioned-scan runner exposing
    ``map_partitions(table, fn)`` -- e.g. a
    :class:`~repro.engine.executor.ParallelExecutor` -- in which case the
    counting pass runs partition-parallel and the integer counts are merged
    by addition (exact, order-independent).
    """
    if scan is None:
        ids, keys = finest_group_ids(table, grouping_columns)
        counts = np.bincount(ids, minlength=len(keys))
        return {key: int(count) for key, count in zip(keys, counts)}
    merged: Dict[GroupKey, int] = {}
    partials = scan.map_partitions(
        table, lambda part: group_counts(part.table, grouping_columns)
    )
    for partial in partials:
        for key, count in partial.items():
            merged[key] = merged.get(key, 0) + count
    # Sorted key order matches the serial np.unique order, so downstream
    # order-sensitive consumers (e.g. largest-remainder rounding ties)
    # behave identically either way.
    return {key: merged[key] for key in sorted(merged)}


def project_key(
    key: GroupKey,
    grouping_columns: Sequence[str],
    target: Sequence[str],
) -> GroupKey:
    """Project a finest-partition key onto a coarser grouping ``target``.

    ``key`` is aligned with ``grouping_columns``; the result is aligned with
    ``target`` (which must be a subset of ``grouping_columns``).

    >>> project_key(("a1", "b2"), ["A", "B"], ["B"])
    ('b2',)
    """
    positions = {name: i for i, name in enumerate(grouping_columns)}
    try:
        return tuple(key[positions[name]] for name in target)
    except KeyError as exc:
        raise KeyError(
            f"grouping column {exc.args[0]!r} not in {list(grouping_columns)}"
        ) from None


def projected_counts(
    finest_counts: Dict[GroupKey, int],
    grouping_columns: Sequence[str],
    target: Sequence[str],
) -> Dict[GroupKey, int]:
    """Aggregate finest-group counts ``n_g`` up to ``n_h`` for grouping T.

    This computes, for each group ``h`` under grouping ``target``, the total
    number of relation tuples in ``h`` (the ``n_h`` of Equation 4).
    """
    out: Dict[GroupKey, int] = {}
    for key, count in finest_counts.items():
        projected = project_key(key, grouping_columns, target)
        out[projected] = out.get(projected, 0) + count
    return out
