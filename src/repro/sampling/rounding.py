"""Integer rounding of fractional sample allocations.

The allocation formulas of Section 4 produce *fractional* expected sample
sizes (e.g. Figure 5's 27.3 / 22.7).  To materialize a sample we need
integers.  The default is largest-remainder rounding, which preserves the
total budget exactly and never deviates from the fractional target by more
than one tuple per group.  A plain floor rounding is provided for ablation
(see ``benchmarks/bench_ablation_rounding.py``).
"""

from __future__ import annotations

from typing import Dict, Hashable, Mapping, Optional, TypeVar

import numpy as np

__all__ = ["largest_remainder_round", "floor_round", "randomized_round"]

K = TypeVar("K", bound=Hashable)


def largest_remainder_round(
    fractional: Mapping[K, float],
    total: Optional[int] = None,
    caps: Optional[Mapping[K, int]] = None,
) -> Dict[K, int]:
    """Round fractional allocations to integers preserving the total.

    Args:
        fractional: per-key fractional allocation (non-negative).
        total: target integer total; defaults to ``round(sum(fractional))``.
        caps: optional per-key upper bounds (e.g. the group population
            ``n_g`` -- you cannot sample more tuples than a group has).

    Returns:
        Per-key integer allocation summing to ``total`` (or to the sum of
        caps if the caps make ``total`` infeasible).
    """
    keys = list(fractional)
    values = np.array([fractional[k] for k in keys], dtype=np.float64)
    if np.any(values < -1e-9):
        bad = [k for k, v in zip(keys, values) if v < -1e-9]
        raise ValueError(f"negative allocations for {bad}")
    values = np.maximum(values, 0.0)

    if total is None:
        total = int(round(float(values.sum())))
    cap_values = (
        np.array([caps[k] for k in keys], dtype=np.int64)
        if caps is not None
        else np.full(len(keys), np.iinfo(np.int64).max)
    )
    if caps is not None and np.any(cap_values < 0):
        raise ValueError("caps must be non-negative")

    base = np.minimum(np.floor(values).astype(np.int64), cap_values)
    remaining = total - int(base.sum())
    if remaining < 0:
        # Total smaller than the floor sum: strip from the smallest
        # remainders (largest over-allocation) first.
        order = np.argsort(values - base)  # ascending remainder
        for idx in order:
            if remaining == 0:
                break
            reducible = int(base[idx])
            take = min(reducible, -remaining)
            base[idx] -= take
            remaining += take
        return dict(zip(keys, base.tolist()))

    # Distribute the leftover to the largest remainders, respecting caps.
    remainders = values - np.floor(values)
    headroom = cap_values - base
    order = np.argsort(-remainders, kind="stable")
    for idx in order:
        if remaining == 0:
            break
        if headroom[idx] > 0:
            base[idx] += 1
            headroom[idx] -= 1
            remaining -= 1
    if remaining > 0:
        # Caps exhausted the obvious candidates; spill into any headroom.
        for idx in np.argsort(-headroom):
            if remaining == 0:
                break
            take = min(int(headroom[idx]), remaining)
            base[idx] += take
            headroom[idx] -= take
            remaining -= take
    return dict(zip(keys, base.tolist()))


def floor_round(
    fractional: Mapping[K, float], caps: Optional[Mapping[K, int]] = None
) -> Dict[K, int]:
    """Plain floor rounding (under-uses the budget; for ablation)."""
    out: Dict[K, int] = {}
    for key, value in fractional.items():
        rounded = int(np.floor(max(0.0, value)))
        if caps is not None:
            rounded = min(rounded, int(caps[key]))
        out[key] = rounded
    return out


def randomized_round(
    fractional: Mapping[K, float],
    rng: Optional[np.random.Generator] = None,
    caps: Optional[Mapping[K, int]] = None,
) -> Dict[K, int]:
    """Round each value up with probability equal to its fractional part.

    Preserves the total *in expectation* only; matches the paper's
    "select each tuple with probability SampleSize(g)/n_g" variant in
    spirit.  For ablation.
    """
    rng = rng if rng is not None else np.random.default_rng()
    out: Dict[K, int] = {}
    for key, value in fractional.items():
        value = max(0.0, value)
        base = int(np.floor(value))
        if rng.random() < value - base:
            base += 1
        if caps is not None:
            base = min(base, int(caps[key]))
        out[key] = base
    return out
