"""Reservoir sampling (Vitter, 1985).

Two flavours are provided:

* :class:`ReservoirSampler` -- classic Algorithm R: the *i*-th arriving item
  replaces a random reservoir slot with probability ``k/i``.
* :class:`SkipReservoirSampler` -- Algorithm X: instead of drawing a random
  number per item, it predetermines how many arrivals to *skip* before the
  next replacement.  This is the "cost efficient ... based on predetermining
  how many insertions to skip over" variant the paper uses for per-group
  maintenance (Section 6).

Both maintain the invariant that after ``n`` arrivals the reservoir is a
uniform random sample (without replacement) of the ``n`` items seen.  Both
support *shrinking* the reservoir (random eviction), which preserves
uniformity -- the property Theorem 6.1 leans on ("it is preserved under
random eviction without insertion").
"""

from __future__ import annotations

from typing import Generic, Iterable, List, Optional, TypeVar

import numpy as np

__all__ = ["ReservoirSampler", "SkipReservoirSampler", "reservoir_sample"]

T = TypeVar("T")


class ReservoirSampler(Generic[T]):
    """Vitter's Algorithm R over arbitrary items."""

    def __init__(self, capacity: int, rng: Optional[np.random.Generator] = None):
        if capacity < 0:
            raise ValueError(f"capacity must be >= 0, got {capacity}")
        self._capacity = capacity
        self._rng = rng if rng is not None else np.random.default_rng()
        self._items: List[T] = []
        self._seen = 0

    @property
    def capacity(self) -> int:
        return self._capacity

    @property
    def seen(self) -> int:
        """Number of items offered so far."""
        return self._seen

    def __len__(self) -> int:
        return len(self._items)

    def items(self) -> List[T]:
        """A copy of the current reservoir contents."""
        return list(self._items)

    def offer(self, item: T) -> Optional[T]:
        """Offer one item.

        Returns:
            The item evicted to make room (possibly the offered item itself
            if it was not selected), or ``None`` while the reservoir is still
            filling or when capacity is zero and nothing was stored.
        """
        self._seen += 1
        if self._capacity == 0:
            return item
        if len(self._items) < self._capacity:
            self._items.append(item)
            return None
        slot = int(self._rng.integers(0, self._seen))
        if slot < self._capacity:
            evicted = self._items[slot]
            self._items[slot] = item
            return evicted
        return item

    def extend(self, items: Iterable[T]) -> None:
        for item in items:
            self.offer(item)

    def shrink_to(self, new_capacity: int) -> List[T]:
        """Reduce capacity, evicting uniformly-random members.

        Returns the evicted items.  Uniformity of the remaining sample is
        preserved (random eviction without insertion).
        """
        if new_capacity < 0:
            raise ValueError(f"new capacity must be >= 0, got {new_capacity}")
        self._capacity = new_capacity
        evicted: List[T] = []
        while len(self._items) > new_capacity:
            slot = int(self._rng.integers(0, len(self._items)))
            self._items[slot], self._items[-1] = self._items[-1], self._items[slot]
            evicted.append(self._items.pop())
        return evicted

    def grow_to(self, new_capacity: int) -> None:
        """Increase capacity.

        Note: the reservoir remains a uniform sample of the stream seen so
        far, but it cannot retroactively add past items; future offers fill
        the extra room only via the standard replacement rule.  Callers that
        need exact target sizes after growth must re-sample from the base
        data (the paper makes the same observation about the scale-down
        factor decreasing, Section 6).
        """
        if new_capacity < self._capacity:
            raise ValueError("use shrink_to to reduce capacity")
        self._capacity = new_capacity


class SkipReservoirSampler(Generic[T]):
    """Vitter's Algorithm X: skip-counting reservoir.

    Once the reservoir is full, draws the number of subsequent arrivals to
    skip before the next replacement, so the per-arrival cost is a counter
    decrement (the paper: "a counter counts down as new tuples are
    inserted").
    """

    def __init__(self, capacity: int, rng: Optional[np.random.Generator] = None):
        if capacity < 0:
            raise ValueError(f"capacity must be >= 0, got {capacity}")
        self._capacity = capacity
        self._rng = rng if rng is not None else np.random.default_rng()
        self._items: List[T] = []
        self._seen = 0
        self._skip = -1  # arrivals to skip before next replacement; -1 = unset

    @property
    def capacity(self) -> int:
        return self._capacity

    @property
    def seen(self) -> int:
        return self._seen

    def __len__(self) -> int:
        return len(self._items)

    def items(self) -> List[T]:
        return list(self._items)

    def _draw_skip(self) -> int:
        """Draw the skip count for Algorithm X.

        The number of items skipped after seeing ``n`` items satisfies
        ``P(skip >= s) = prod_{j=1..s} (n + j - k) / (n + j)`` for reservoir
        size ``k``.  We invert by sequential search on a uniform variate,
        which is exact (this is Vitter's Algorithm X).
        """
        n = self._seen
        k = self._capacity
        u = float(self._rng.random())
        skip = 0
        quot = (n + 1 - k) / (n + 1)
        while quot > u:
            skip += 1
            quot *= (n + skip + 1 - k) / (n + skip + 1)
        return skip

    def offer(self, item: T) -> None:
        self._seen += 1
        if self._capacity == 0:
            return
        if len(self._items) < self._capacity:
            self._items.append(item)
            if len(self._items) == self._capacity:
                self._seen_at_fill = self._seen
                self._skip = self._draw_skip()
            return
        if self._skip > 0:
            self._skip -= 1
            return
        slot = int(self._rng.integers(0, self._capacity))
        self._items[slot] = item
        self._skip = self._draw_skip()

    def extend(self, items: Iterable[T]) -> None:
        for item in items:
            self.offer(item)

    def shrink_to(self, new_capacity: int) -> List[T]:
        """Reduce capacity via uniform random eviction (see Algorithm R)."""
        if new_capacity < 0:
            raise ValueError(f"new capacity must be >= 0, got {new_capacity}")
        self._capacity = new_capacity
        evicted: List[T] = []
        while len(self._items) > new_capacity:
            slot = int(self._rng.integers(0, len(self._items)))
            self._items[slot], self._items[-1] = self._items[-1], self._items[slot]
            evicted.append(self._items.pop())
        # The skip distribution depends on capacity; redraw.
        if self._items and len(self._items) == self._capacity:
            self._skip = self._draw_skip()
        return evicted


def reservoir_sample(
    items: Iterable[T], size: int, rng: Optional[np.random.Generator] = None
) -> List[T]:
    """One-shot uniform sample of ``size`` items from an iterable."""
    sampler: ReservoirSampler[T] = ReservoirSampler(size, rng)
    sampler.extend(items)
    return sampler.items()
