"""Census-style synthetic data for the paper's motivating example.

Section 1/3 of the paper motivates congressional samples with a U.S. census
relation ``census(ssn, st, gen, sal)``: state populations vary by a factor
of ~70 (California vs. Wyoming), so a uniform sample starves small states.
This generator produces that shape: a configurable number of "states" with
Zipf-skewed populations spanning roughly that ratio, a balanced gender
column, and log-normal incomes whose location varies mildly by state.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..engine.schema import Column, ColumnType, Schema
from ..engine.table import Table
from .zipf import zipf_sizes

__all__ = ["CENSUS_SCHEMA", "CensusConfig", "generate_census", "STATE_NAMES"]

CENSUS_SCHEMA = Schema(
    [
        Column("ssn", ColumnType.INT, "key"),
        Column("st", ColumnType.STR, "grouping"),
        Column("gen", ColumnType.STR, "grouping"),
        Column("sal", ColumnType.FLOAT, "aggregate"),
    ]
)

STATE_NAMES = (
    "CA", "TX", "FL", "NY", "PA", "IL", "OH", "GA", "NC", "MI",
    "NJ", "VA", "WA", "AZ", "TN", "MA", "IN", "MO", "MD", "WI",
    "CO", "MN", "SC", "AL", "LA", "KY", "OR", "OK", "CT", "UT",
    "IA", "NV", "AR", "KS", "MS", "NM", "NE", "ID", "WV", "HI",
    "NH", "ME", "MT", "RI", "DE", "SD", "ND", "AK", "VT", "WY",
)


@dataclass(frozen=True)
class CensusConfig:
    """Shape of the synthetic census relation."""

    population: int = 200_000
    num_states: int = 50
    state_skew: float = 1.0  # ~70x ratio between largest and smallest state
    seed: int = 0

    def __post_init__(self) -> None:
        if self.num_states < 1 or self.num_states > len(STATE_NAMES):
            raise ValueError(
                f"num_states must be in [1, {len(STATE_NAMES)}], "
                f"got {self.num_states}"
            )
        if self.population < self.num_states:
            raise ValueError("population must cover every state")


def generate_census(config: CensusConfig) -> Table:
    """Generate the census relation.

    State sizes follow Zipf(``state_skew``) over the states in
    :data:`STATE_NAMES` order (CA largest), genders are drawn evenly, and
    incomes are log-normal with a per-state location shift so that per-state
    AVG queries have distinguishable true answers.
    """
    rng = np.random.default_rng(config.seed)
    states = np.array(STATE_NAMES[: config.num_states])
    sizes = zipf_sizes(config.population, config.num_states, config.state_skew)
    state_of_row = np.repeat(np.arange(config.num_states), sizes)
    order = rng.permutation(config.population)
    state_of_row = state_of_row[order]

    gender = rng.choice(np.array(["M", "F"]), size=config.population)

    # Per-state median income between ~45k and ~85k.
    state_location = rng.uniform(
        np.log(45_000.0), np.log(85_000.0), size=config.num_states
    )
    income = np.exp(
        state_location[state_of_row] + rng.normal(0.0, 0.5, config.population)
    )

    return Table(
        CENSUS_SCHEMA,
        {
            "ssn": np.arange(1, config.population + 1, dtype=np.int64),
            "st": states[state_of_row],
            "gen": gender,
            "sal": income,
        },
    )
