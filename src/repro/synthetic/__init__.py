"""Synthetic workloads: the paper's TPC-D-style data and queries."""

from .census import CENSUS_SCHEMA, CensusConfig, STATE_NAMES, generate_census
from .queries import QueryClass, qg0, qg0_set, qg2, qg3
from .tpcd_star import (
    NATIONS,
    TPCD_STAR,
    TpcdStarConfig,
    generate_tpcd_star,
)
from .tpcd import (
    AGGREGATE_COLUMNS,
    GROUPING_COLUMNS,
    LINEITEM_SCHEMA,
    LineitemConfig,
    generate_lineitem,
)
from .zipf import ninety_ten_share, zipf_choice, zipf_sizes, zipf_weights

__all__ = [
    "AGGREGATE_COLUMNS",
    "CENSUS_SCHEMA",
    "CensusConfig",
    "GROUPING_COLUMNS",
    "LINEITEM_SCHEMA",
    "LineitemConfig",
    "NATIONS",
    "QueryClass",
    "TPCD_STAR",
    "TpcdStarConfig",
    "STATE_NAMES",
    "generate_census",
    "generate_lineitem",
    "generate_tpcd_star",
    "ninety_ten_share",
    "qg0",
    "qg0_set",
    "qg2",
    "qg3",
    "zipf_choice",
    "zipf_sizes",
    "zipf_weights",
]
