"""A TPC-D--style star schema: lineitem fact + dimension tables.

Section 2 of the paper: Aqua's join synopses are "particularly effective on
the star and snowflake schemas which are common in data warehousing", and
"all joins in the TPC-D benchmark are on foreign keys".  This generator
produces a scaled-down TPC-D-like star so the join-synopsis machinery can
be exercised on its natural input:

* ``part(p_partkey, p_brand, p_type)``
* ``supplier(s_suppkey, s_nation)``
* ``customer(c_custkey, c_nation, c_segment)``
* ``orders(o_orderkey, o_custkey, o_orderpriority)``
* ``lineitem(l_orderkey, l_partkey, l_suppkey, l_quantity,
  l_extendedprice, l_shipdate)`` -- the fact table; every foreign key
  resolves (no dangling references).

Nation populations are skewed (Zipf) so dimension-attribute group-bys show
the congressional effect; order fan-out follows TPC-D's 1-7 lineitems per
order.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

import numpy as np

from ..aqua.join_synopsis import ForeignKey, StarSchema
from ..engine.catalog import Catalog
from ..engine.schema import Column, ColumnType, Schema
from ..engine.table import Table
from .zipf import zipf_weights

__all__ = ["TpcdStarConfig", "generate_tpcd_star", "TPCD_STAR"]

NATIONS = (
    "US", "CN", "DE", "JP", "UK", "FR", "IN", "BR", "CA", "AU",
    "MX", "KR", "ES", "ID", "NL", "SA", "TR", "CH", "AR", "SE",
    "PL", "BE", "TH", "IR",
)
SEGMENTS = ("BUILDING", "AUTOMOBILE", "MACHINERY", "HOUSEHOLD", "FURNITURE")
BRANDS = tuple(f"Brand#{i}" for i in range(1, 6))
PART_TYPES = ("STANDARD", "SMALL", "MEDIUM", "LARGE", "ECONOMY", "PROMO")
PRIORITIES = ("1-URGENT", "2-HIGH", "3-MEDIUM", "4-NOT SPECIFIED", "5-LOW")

PART_SCHEMA = Schema(
    [
        Column("p_partkey", ColumnType.INT, "key"),
        Column("p_brand", ColumnType.STR, "grouping"),
        Column("p_type", ColumnType.STR, "grouping"),
    ]
)
SUPPLIER_SCHEMA = Schema(
    [
        Column("s_suppkey", ColumnType.INT, "key"),
        Column("s_nation", ColumnType.STR, "grouping"),
    ]
)
CUSTOMER_SCHEMA = Schema(
    [
        Column("c_custkey", ColumnType.INT, "key"),
        Column("c_nation", ColumnType.STR, "grouping"),
        Column("c_segment", ColumnType.STR, "grouping"),
    ]
)
ORDERS_SCHEMA = Schema(
    [
        Column("o_orderkey", ColumnType.INT, "key"),
        Column("o_custkey", ColumnType.INT),
        Column("o_orderpriority", ColumnType.STR, "grouping"),
    ]
)
LINEITEM_FACT_SCHEMA = Schema(
    [
        Column("l_orderkey", ColumnType.INT),
        Column("l_partkey", ColumnType.INT),
        Column("l_suppkey", ColumnType.INT),
        Column("l_quantity", ColumnType.FLOAT, "aggregate"),
        Column("l_extendedprice", ColumnType.FLOAT, "aggregate"),
        Column("l_shipdate", ColumnType.DATE, "grouping"),
    ]
)

# The star's foreign-key edges.  Lineitem -> orders -> (customer) is a
# snowflake arm; we pre-join orders with customer nation/segment so the
# star stays one level deep, exactly as Aqua's join synopses flatten it.
TPCD_STAR = StarSchema.of(
    "lineitem",
    ForeignKey("l_orderkey", "orders_wide", "o_orderkey"),
    ForeignKey("l_partkey", "part", "p_partkey"),
    ForeignKey("l_suppkey", "supplier", "s_suppkey"),
)


@dataclass(frozen=True)
class TpcdStarConfig:
    """Scale knobs for the star generator."""

    num_orders: int = 20_000
    num_customers: int = 2_000
    num_parts: int = 500
    num_suppliers: int = 100
    nation_skew: float = 1.0
    seed: int = 0

    def __post_init__(self) -> None:
        for name in ("num_orders", "num_customers", "num_parts", "num_suppliers"):
            if getattr(self, name) < 1:
                raise ValueError(f"{name} must be >= 1")


def generate_tpcd_star(
    config: TpcdStarConfig, catalog: Catalog
) -> Tuple[StarSchema, Dict[str, Table]]:
    """Generate and register the star's tables.

    Registers ``part``, ``supplier``, ``customer``, ``orders``,
    ``orders_wide`` (orders ⋈ customer, the flattened snowflake arm), and
    ``lineitem``.  Returns the star schema and the table dict.

    The lineitem count is random (1-7 per order, TPC-D's fan-out), so read
    it from the returned table.
    """
    rng = np.random.default_rng(config.seed)

    nation_probabilities = zipf_weights(len(NATIONS), config.nation_skew)

    part = Table.from_columns(
        PART_SCHEMA,
        p_partkey=np.arange(config.num_parts),
        p_brand=rng.choice(np.array(BRANDS), size=config.num_parts),
        p_type=rng.choice(np.array(PART_TYPES), size=config.num_parts),
    )
    supplier = Table.from_columns(
        SUPPLIER_SCHEMA,
        s_suppkey=np.arange(config.num_suppliers),
        s_nation=rng.choice(
            np.array(NATIONS), size=config.num_suppliers,
            p=nation_probabilities,
        ),
    )
    customer = Table.from_columns(
        CUSTOMER_SCHEMA,
        c_custkey=np.arange(config.num_customers),
        c_nation=rng.choice(
            np.array(NATIONS), size=config.num_customers,
            p=nation_probabilities,
        ),
        c_segment=rng.choice(np.array(SEGMENTS), size=config.num_customers),
    )
    orders = Table.from_columns(
        ORDERS_SCHEMA,
        o_orderkey=np.arange(config.num_orders),
        o_custkey=rng.integers(0, config.num_customers, size=config.num_orders),
        o_orderpriority=rng.choice(
            np.array(PRIORITIES), size=config.num_orders
        ),
    )

    # Flatten the orders -> customer snowflake arm.
    from ..engine.join import hash_join

    orders_wide = hash_join(
        orders, customer, ["o_custkey"], ["c_custkey"], suffix="_c"
    )

    # Lineitems: 1-7 per order (TPC-D's fan-out).
    fanout = rng.integers(1, 8, size=config.num_orders)
    orderkeys = np.repeat(np.arange(config.num_orders), fanout)
    num_lineitems = len(orderkeys)
    lineitem = Table.from_columns(
        LINEITEM_FACT_SCHEMA,
        l_orderkey=orderkeys,
        l_partkey=rng.integers(0, config.num_parts, size=num_lineitems),
        l_suppkey=rng.integers(0, config.num_suppliers, size=num_lineitems),
        l_quantity=rng.integers(1, 51, size=num_lineitems).astype(float),
        l_extendedprice=rng.gamma(2.0, 15_000.0, size=num_lineitems),
        l_shipdate=rng.integers(8400, 10500, size=num_lineitems),  # ~1993-98
    )

    tables = {
        "part": part,
        "supplier": supplier,
        "customer": customer,
        "orders": orders,
        "orders_wide": orders_wide,
        "lineitem": lineitem,
    }
    for name, table in tables.items():
        catalog.register(name, table, replace=True)
    return TPCD_STAR, tables
