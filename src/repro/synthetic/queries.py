"""The paper's query workload (Table 2).

Three query classes over ``lineitem``:

* ``Q_g2`` -- two grouping columns (derived from TPC-D Q3)::

      SELECT l_returnflag, l_linestatus,
             sum(l_quantity), sum(l_extendedprice)
      FROM lineitem GROUP BY l_returnflag, l_linestatus

* ``Q_g3`` -- all three grouping columns::

      SELECT l_returnflag, l_linestatus, l_shipdate, sum(l_quantity)
      FROM lineitem GROUP BY l_returnflag, l_linestatus, l_shipdate

* ``Q_g0`` -- no group-by, parametrized range selection::

      SELECT sum(l_quantity) FROM lineitem WHERE s <= l_id <= s + c

  The paper draws 20 such queries with ``s`` uniform in ``[0, 950K]`` and
  ``c = 70K`` (7% selectivity at T = 1M); we scale both with the table size.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from ..engine.query import Query
from ..engine.sql import parse_query

__all__ = ["qg2", "qg3", "qg0", "qg0_set", "QueryClass"]


@dataclass(frozen=True)
class QueryClass:
    """A named query with its SQL and parsed form."""

    name: str
    sql: str

    @property
    def query(self) -> Query:
        return parse_query(self.sql)


def qg2(table_name: str = "lineitem") -> QueryClass:
    """The two-group-by query ``Q_g2`` of Table 2."""
    sql = (
        "SELECT l_returnflag, l_linestatus, "
        "sum(l_quantity) AS sum_qty, sum(l_extendedprice) AS sum_price "
        f"FROM {table_name} "
        "GROUP BY l_returnflag, l_linestatus"
    )
    return QueryClass("Qg2", sql)


def qg3(table_name: str = "lineitem") -> QueryClass:
    """The three-group-by query ``Q_g3`` of Table 2."""
    sql = (
        "SELECT l_returnflag, l_linestatus, l_shipdate, "
        "sum(l_quantity) AS sum_qty "
        f"FROM {table_name} "
        "GROUP BY l_returnflag, l_linestatus, l_shipdate"
    )
    return QueryClass("Qg3", sql)


def qg0(start: int, count: int, table_name: str = "lineitem") -> QueryClass:
    """One ``Q_g0`` range-selection query: ``s <= l_id <= s + c``."""
    sql = (
        "SELECT sum(l_quantity) AS sum_qty "
        f"FROM {table_name} "
        f"WHERE l_id BETWEEN {start} AND {start + count}"
    )
    return QueryClass(f"Qg0[{start},{start + count}]", sql)


def qg0_set(
    table_size: int,
    num_queries: int = 20,
    selectivity: float = 0.07,
    rng: Optional[np.random.Generator] = None,
    table_name: str = "lineitem",
) -> List[QueryClass]:
    """The paper's set of 20 ``Q_g0`` queries.

    ``c = selectivity * table_size`` tuples per query; start positions are
    uniform over ``[0, table_size - c]`` (the paper's 0..950K at T = 1M).
    """
    if not 0 < selectivity <= 1:
        raise ValueError(f"selectivity must be in (0, 1], got {selectivity}")
    rng = rng if rng is not None else np.random.default_rng()
    count = max(1, int(round(selectivity * table_size)))
    high = max(1, table_size - count)
    return [
        qg0(int(rng.integers(0, high)), count, table_name)
        for __ in range(num_queries)
    ]
