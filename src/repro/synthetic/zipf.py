"""Zipf distribution utilities.

Section 7.1.1: the paper introduces "desired levels of skew into the
distributions of the group-sizes and the data in the aggregated columns ...
using the Zipf distribution", with the z-parameter swept from 0 (uniform)
to 1.5 and the aggregate-column skew fixed at z = 0.86 (a "90-10"
distribution).

A Zipf(z) distribution over ranks ``1..n`` assigns rank ``i`` probability
proportional to ``i^-z``.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

__all__ = ["zipf_weights", "zipf_sizes", "zipf_choice", "ninety_ten_share"]


def zipf_weights(n: int, z: float) -> np.ndarray:
    """Normalized Zipf(z) probabilities over ranks ``1..n``.

    ``z = 0`` gives the uniform distribution.
    """
    if n < 1:
        raise ValueError(f"need n >= 1, got {n}")
    if z < 0:
        raise ValueError(f"need z >= 0, got {z}")
    ranks = np.arange(1, n + 1, dtype=np.float64)
    weights = ranks ** (-z)
    return weights / weights.sum()


def zipf_sizes(total: int, n: int, z: float, min_size: int = 1) -> np.ndarray:
    """Partition ``total`` items into ``n`` Zipf(z)-skewed group sizes.

    Deterministic: sizes are the expected counts rounded by largest
    remainder, then adjusted so every group has at least ``min_size``
    members (the paper's groups are all non-empty).  Sizes sum to ``total``.
    """
    if total < n * min_size:
        raise ValueError(
            f"cannot fit {n} groups of >= {min_size} into {total} tuples"
        )
    weights = zipf_weights(n, z)
    fractional = weights * total
    sizes = np.floor(fractional).astype(np.int64)
    remainder = total - int(sizes.sum())
    if remainder > 0:
        order = np.argsort(-(fractional - sizes), kind="stable")
        sizes[order[:remainder]] += 1
    # Enforce the minimum by taking from the largest groups.
    deficit_idx = np.flatnonzero(sizes < min_size)
    for idx in deficit_idx:
        need = min_size - sizes[idx]
        donors = np.argsort(-sizes, kind="stable")
        for donor in donors:
            if need == 0:
                break
            if donor == idx:
                continue
            available = sizes[donor] - min_size
            take = min(available, need)
            sizes[donor] -= take
            sizes[idx] += take
            need -= take
        if need > 0:
            raise ValueError("could not satisfy minimum group sizes")
    assert int(sizes.sum()) == total
    return sizes


def zipf_choice(
    domain: Sequence,
    z: float,
    size: int,
    rng: Optional[np.random.Generator] = None,
    shuffle_ranks: bool = False,
) -> np.ndarray:
    """Draw ``size`` values from ``domain`` with Zipf(z) rank probabilities.

    Args:
        domain: the candidate values; rank 1 (most likely) is ``domain[0]``
            unless ``shuffle_ranks`` randomizes the rank assignment.
        z: skew parameter.
        size: number of draws.
        rng: numpy generator.
        shuffle_ranks: detach skew from domain order.
    """
    rng = rng if rng is not None else np.random.default_rng()
    domain_arr = np.asarray(domain)
    weights = zipf_weights(len(domain_arr), z)
    if shuffle_ranks:
        weights = weights[rng.permutation(len(weights))]
    return rng.choice(domain_arr, size=size, p=weights)


def ninety_ten_share(n: int, z: float, top_fraction: float = 0.1) -> float:
    """Probability mass held by the top ``top_fraction`` of ranks.

    Diagnostic used to verify the paper's claim that z = 0.86 yields a
    90-10 distribution (the top 10% of groups hold ~90% of the mass) at the
    scales they simulate.
    """
    weights = zipf_weights(n, z)
    top = max(1, int(round(top_fraction * n)))
    return float(weights[:top].sum())
