"""TPC-D--style ``lineitem`` generator (Section 7.1.1, Table 1).

The paper's experiments use the TPC-D ``lineitem`` fact table, restricted to
the columns below, with authors-introduced Zipf skew in both the group-size
distribution and the aggregate columns:

=================  =========  ============
attribute          type       role
=================  =========  ============
``l_id``           int        primary key (introduced by the authors)
``l_returnflag``   int        grouping
``l_linestatus``   int        grouping
``l_shipdate``     date(int)  grouping
``l_quantity``     float      aggregation
``l_extendedprice``float      aggregation
=================  =========  ============

Knobs (Table 1): table size ``T`` (100K-6M, default 1M), number of groups
``NG`` (10-200K, default 1000; each grouping column gets ``NG^(1/3)``
distinct values), group-size skew ``z`` (0-1.5, default 0.86), and the
aggregate-column skew fixed at z = 0.86.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..engine.schema import Column, ColumnType, Schema
from ..engine.table import Table
from .zipf import zipf_choice, zipf_sizes

__all__ = [
    "LINEITEM_SCHEMA",
    "GROUPING_COLUMNS",
    "AGGREGATE_COLUMNS",
    "LineitemConfig",
    "generate_lineitem",
]

LINEITEM_SCHEMA = Schema(
    [
        Column("l_id", ColumnType.INT, "key"),
        Column("l_returnflag", ColumnType.INT, "grouping"),
        Column("l_linestatus", ColumnType.INT, "grouping"),
        Column("l_shipdate", ColumnType.DATE, "grouping"),
        Column("l_quantity", ColumnType.FLOAT, "aggregate"),
        Column("l_extendedprice", ColumnType.FLOAT, "aggregate"),
    ]
)

GROUPING_COLUMNS = ("l_returnflag", "l_linestatus", "l_shipdate")
AGGREGATE_COLUMNS = ("l_quantity", "l_extendedprice")

# Aggregate-value domains, loosely matching TPC-D's dbgen ranges.
_QUANTITY_DOMAIN = np.arange(1, 51, dtype=np.float64)
_PRICE_DOMAIN = np.linspace(900.0, 105_000.0, 200)


@dataclass(frozen=True)
class LineitemConfig:
    """Table 1 of the paper: experiment data parameters.

    Attributes:
        table_size: ``T``, total tuples (paper default 1M).
        num_groups: ``NG``, target group count at the finest partitioning
            (paper default 1000).  Rounded to the nearest achievable
            ``d^3`` where ``d = round(NG^(1/3))`` distinct values per
            grouping column, exactly as the paper constructs it.
        group_skew: ``z`` for group sizes (paper default 0.86).
        aggregate_skew: ``z`` for aggregate values (paper fixes 0.86).
        seed: RNG seed for reproducibility.
    """

    table_size: int = 1_000_000
    num_groups: int = 1000
    group_skew: float = 0.86
    aggregate_skew: float = 0.86
    seed: int = 0

    def __post_init__(self) -> None:
        if self.table_size < 1:
            raise ValueError(f"table_size must be >= 1, got {self.table_size}")
        if self.num_groups < 1:
            raise ValueError(f"num_groups must be >= 1, got {self.num_groups}")
        if self.group_skew < 0 or self.aggregate_skew < 0:
            raise ValueError("skew parameters must be >= 0")

    @property
    def distinct_per_column(self) -> int:
        """``NG^(1/3)`` distinct values per grouping column (>= 1)."""
        return max(1, int(round(self.num_groups ** (1.0 / 3.0))))

    @property
    def actual_num_groups(self) -> int:
        return self.distinct_per_column ** 3


def generate_lineitem(config: LineitemConfig) -> Table:
    """Generate the skewed ``lineitem`` table for an experiment run.

    Group construction follows the paper: pick ``d = NG^(1/3)`` random
    distinct values for each grouping column, form all ``d^3`` groups,
    assign Zipf(``group_skew``) sizes over a random permutation of the
    groups (so skew is not correlated with attribute order), then draw
    aggregate values Zipf(``aggregate_skew``)-skewed over their domains.
    Rows are shuffled and ``l_id`` assigned sequentially from 1, so range
    predicates on ``l_id`` (query set ``Q_g0``) select uniformly.
    """
    rng = np.random.default_rng(config.seed)
    d = config.distinct_per_column
    num_groups = d ** 3
    if config.table_size < num_groups:
        raise ValueError(
            f"table_size {config.table_size} < group count {num_groups}; "
            "each group must be non-empty"
        )

    # Random distinct values per grouping column (paper: "randomly chosen").
    returnflags = rng.choice(10 * d, size=d, replace=False).astype(np.int64)
    linestatuses = rng.choice(10 * d, size=d, replace=False).astype(np.int64)
    # Shipdates: distinct day ordinals within TPC-D's six-year window.
    shipdates = np.sort(rng.choice(2192, size=d, replace=False)).astype(np.int64)

    combos = np.stack(
        np.meshgrid(returnflags, linestatuses, shipdates, indexing="ij"),
        axis=-1,
    ).reshape(-1, 3)

    sizes = zipf_sizes(config.table_size, num_groups, config.group_skew)
    # Detach skew from combo enumeration order.
    sizes = sizes[rng.permutation(num_groups)]

    group_of_row = np.repeat(np.arange(num_groups), sizes)
    # Shuffle rows so l_id ranges are independent of grouping.
    order = rng.permutation(config.table_size)
    group_of_row = group_of_row[order]

    quantity = zipf_choice(
        _QUANTITY_DOMAIN, config.aggregate_skew, config.table_size, rng,
        shuffle_ranks=True,
    )
    price = zipf_choice(
        _PRICE_DOMAIN, config.aggregate_skew, config.table_size, rng,
        shuffle_ranks=True,
    )

    return Table(
        LINEITEM_SCHEMA,
        {
            "l_id": np.arange(1, config.table_size + 1, dtype=np.int64),
            "l_returnflag": combos[group_of_row, 0],
            "l_linestatus": combos[group_of_row, 1],
            "l_shipdate": combos[group_of_row, 2],
            "l_quantity": quantity,
            "l_extendedprice": price,
        },
    )
