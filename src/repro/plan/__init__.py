"""Logical/physical plan IR: one operator tree for every execution path.

The package splits query execution into four stages (see
``docs/ARCHITECTURE.md``):

* :mod:`repro.plan.logical` -- the immutable operator tree (``Scan``,
  ``Filter``, ``Project``, ``Join``, ``GroupBy``, ``ScaleUp``, ``Sort``,
  ``Limit``) with traversal, output-schema inference, and rendering;
* :mod:`repro.plan.planner` -- lowering of :class:`~repro.engine.query.Query`
  and rewrite-strategy :class:`~repro.rewrite.plan.RewrittenPlan` specs into
  logical trees;
* :mod:`repro.plan.optimizer` -- pure ``Plan -> Plan`` rewrite rules
  (constant folding, filter fusion, predicate pushdown, projection pruning)
  under a fixpoint driver;
* :mod:`repro.plan.physical` -- execution of a logical tree against the
  engine catalog, serial or partition-parallel, with per-operator spans.

:class:`PlanCache` memoizes optimized plans under version-aware keys.
"""

from .cache import PlanCache, PlanCacheStats
from .canonical import (
    CanonicalQuery,
    canonicalize,
    canonicalize_expression,
    canonicalize_predicate,
    canonicalize_query,
    predicate_conjuncts,
    predicate_fingerprint,
)
from .cost import CostModel, TableStats, plan_cost, plan_rows
from .logical import (
    Filter,
    GroupBy,
    Join,
    Limit,
    Plan,
    PlanError,
    Project,
    Ratio,
    ScaleUp,
    Scan,
    Sort,
    output_columns,
    render_plan,
    walk,
)
from .optimizer import (
    DEFAULT_RULES,
    fold_constants,
    fuse_filters,
    optimize,
    prune_projections,
    push_down_predicates,
    transform,
)
from .physical import execute_plan
from .planner import lower_query, lower_rewritten

__all__ = [
    "CanonicalQuery",
    "CostModel",
    "DEFAULT_RULES",
    "Filter",
    "GroupBy",
    "Join",
    "Limit",
    "Plan",
    "PlanCache",
    "PlanCacheStats",
    "PlanError",
    "Project",
    "Ratio",
    "ScaleUp",
    "Scan",
    "Sort",
    "TableStats",
    "canonicalize",
    "canonicalize_expression",
    "canonicalize_predicate",
    "canonicalize_query",
    "execute_plan",
    "fold_constants",
    "fuse_filters",
    "lower_query",
    "lower_rewritten",
    "optimize",
    "output_columns",
    "plan_cost",
    "plan_rows",
    "predicate_conjuncts",
    "predicate_fingerprint",
    "prune_projections",
    "push_down_predicates",
    "render_plan",
    "transform",
    "walk",
]
