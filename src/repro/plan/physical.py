"""Physical plan execution: bind a logical tree to the engine.

One recursive evaluator maps each logical operator to the engine machinery
that already existed before the plan IR: :class:`Scan` reads the catalog,
:class:`GroupBy` runs the serial :func:`~repro.engine.groupby.group_by` or
the :class:`~repro.engine.executor.ParallelExecutor`'s partitioned
partial/merge/finalize scan, :class:`Join` calls
:func:`~repro.engine.join.hash_join`, and :class:`ScaleUp` reproduces the
rewrite layer's ratio arithmetic.  Serial, parallel, and cached execution
therefore run the *same operator tree* -- the parallel path differs only
inside the GroupBy node, whose merged output is group-for-group identical
to the serial one.

Every operator runs under an ``op_<kind>`` tracer span carrying its tree
path and output row count; passing ``collect`` additionally records
``path -> (rows, inclusive seconds)``, which is what ``explain(analyze=True)``
joins back onto the rendered tree.
"""

from __future__ import annotations

from time import perf_counter
from typing import Dict, Optional, Tuple

import numpy as np

from ..engine.catalog import Catalog
from ..engine.executor import ParallelExecutor, infer_expression_type
from ..engine.groupby import group_by
from ..engine.join import hash_join
from ..engine.schema import Column, ColumnType, Schema
from ..engine.table import Table
from ..obs.trace import NULL_TRACER
from ..serve.deadline import check_deadline
from .logical import (
    Filter,
    GroupBy,
    Join,
    Limit,
    Plan,
    PlanError,
    Project,
    ScaleUp,
    Scan,
    Sort,
)

__all__ = ["execute_plan"]

Actuals = Dict[Tuple[int, ...], Tuple[int, float]]


def execute_plan(
    plan: Plan,
    catalog: Catalog,
    parallel: Optional[ParallelExecutor] = None,
    tracer=None,
    collect: Optional[Actuals] = None,
) -> Table:
    """Execute a logical plan against ``catalog`` and return the answer.

    Args:
        plan: the (optimized) logical tree.
        catalog: relation store resolving :class:`Scan` names.
        parallel: optional partitioned executor; eligible GroupBy nodes
            (input large enough to split) run partial/merge/finalize on its
            worker pool, everything else stays serial.
        tracer: optional :class:`~repro.obs.Tracer`; each operator gets an
            ``op_<kind>`` span nested to match the tree.
        collect: optional dict filled with ``path -> (rows, seconds)`` per
            operator (seconds are inclusive of children, the EXPLAIN
            ANALYZE convention).
    """
    if tracer is None:
        tracer = NULL_TRACER
    return _exec(plan, (), catalog, parallel, tracer, collect)


def _exec(
    node: Plan,
    path: Tuple[int, ...],
    catalog: Catalog,
    parallel: Optional[ParallelExecutor],
    tracer,
    collect: Optional[Actuals],
) -> Table:
    # Cooperative cancellation: a query whose deadline expired aborts
    # before materializing the next operator, tagged with where it died.
    check_deadline(f"op_{node.kind}")
    start = perf_counter()
    with tracer.span(f"op_{node.kind}", depth=len(path)) as span:
        inputs = [
            _exec(child, path + (i,), catalog, parallel, tracer, collect)
            for i, child in enumerate(node.children)
        ]
        result = _run_node(node, inputs, catalog, parallel, span)
        span.set(rows=result.num_rows)
    if collect is not None:
        collect[path] = (result.num_rows, perf_counter() - start)
    return result


def _run_node(
    node: Plan,
    inputs,
    catalog: Catalog,
    parallel: Optional[ParallelExecutor],
    span,
) -> Table:
    if isinstance(node, Scan):
        span.set(table=node.table)
        table = catalog.get(node.table)
        if node.columns is not None:
            table = table.project(list(node.columns))
        if node.predicate is not None:
            table = table.filter(node.predicate.evaluate(table))
        return table
    if isinstance(node, Filter):
        (table,) = inputs
        return table.filter(node.predicate.evaluate(table))
    if isinstance(node, Project):
        (table,) = inputs
        return _project(node, table)
    if isinstance(node, Join):
        left, right = inputs
        return hash_join(
            left, right, list(node.left_on), list(node.right_on), node.suffix
        )
    if isinstance(node, GroupBy):
        (table,) = inputs
        return _group(node, table, parallel, span)
    if isinstance(node, ScaleUp):
        (table,) = inputs
        return _scale_up(node, table)
    if isinstance(node, Sort):
        (table,) = inputs
        return table.sort_by(list(node.keys))
    if isinstance(node, Limit):
        (table,) = inputs
        return table.head(node.count)
    raise PlanError(f"no physical operator for {type(node).__name__}")


def _project(node: Project, table: Table) -> Table:
    if node.mode == "view":
        # Zero-copy reorder + rename, preserving schema roles -- the exact
        # select-list shaping the serial executor applies after group_by().
        names = [item.expr.name for item in node.items]
        renames = {
            item.expr.name: item.alias
            for item in node.items
            if item.alias != item.expr.name
        }
        result = table.project(names)
        return result.rename(renames) if renames else result
    columns = {}
    schema_cols = []
    for item in node.items:
        values = item.expr.evaluate(table)
        ctype = infer_expression_type(values, item.expr, table)
        schema_cols.append(Column(item.alias, ctype))
        columns[item.alias] = ctype.coerce(values)
    return Table(Schema(schema_cols), columns)


def _group(
    node: GroupBy,
    table: Table,
    parallel: Optional[ParallelExecutor],
    span,
) -> Table:
    aggregates = list(node.aggregates)
    if (
        parallel is not None
        and parallel.partition_count(table.num_rows) >= 2
    ):
        span.set(mode="parallel")
        return parallel.aggregate_table(table, list(node.keys), aggregates)
    if parallel is not None:
        parallel.note_plan_serial_fallback()
    return group_by(table, list(node.keys), aggregates)


def _scale_up(node: ScaleUp, table: Table) -> Table:
    if not node.ratios:
        return table.project(list(node.output))
    columns = dict(table.columns())
    schema_cols = {c.name: c for c in table.schema}
    for ratio in node.ratios:
        num = np.asarray(columns[ratio.numerator], dtype=np.float64)
        den = np.asarray(columns[ratio.denominator], dtype=np.float64)
        with np.errstate(divide="ignore", invalid="ignore"):
            values = np.where(den != 0, num / den, np.nan)
        columns[ratio.alias] = values
        schema_cols[ratio.alias] = Column(ratio.alias, ColumnType.FLOAT)
    schema = Schema([schema_cols[name] for name in node.output])
    return Table(schema, {name: columns[name] for name in node.output})
