"""Lower logical queries and rewrite specs into the plan IR.

Two entry points:

* :func:`lower_query` -- an :class:`~repro.engine.query.Query` (possibly
  nested, the Nested-integrated shape) becomes a ``Scan -> Filter ->
  GroupBy -> Project -> ...`` tree with exactly the serial executor's
  operation order, so plan execution is value-identical to
  :func:`repro.engine.executor.execute`.
* :func:`lower_rewritten` -- a rewrite strategy's
  :class:`~repro.rewrite.plan.RewrittenPlan` (sample-relation query,
  optional pre-aggregation join, post-aggregation ratios, user HAVING /
  ORDER BY / LIMIT) becomes one tree ending in :class:`ScaleUp`.

Both accept an optional catalog purely to stamp ``table_columns`` hints
onto :class:`Scan` leaves; optimizer rules that need schema knowledge
(join-side pushdown, projection pruning) stay pure ``Plan -> Plan``
functions by reading the hint instead of a live catalog.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from ..engine.expressions import Col
from ..engine.query import Projection, Query
from .logical import (
    Filter,
    GroupBy,
    Join,
    Limit,
    Plan,
    Project,
    Ratio,
    ScaleUp,
    Scan,
    Sort,
)

__all__ = ["lower_query", "lower_rewritten"]


def _scan(table: str, catalog) -> Scan:
    """A Scan leaf, with the relation's column list attached when known."""
    table_columns: Optional[Tuple[str, ...]] = None
    if catalog is not None:
        try:
            table_columns = tuple(catalog.get(table).schema.names)
        except Exception:
            table_columns = None
    return Scan(table, table_columns=table_columns)


def lower_query(query: Query, catalog=None) -> Plan:
    """Lower a logical query (and any nested FROM subqueries) to a plan."""
    if isinstance(query.from_item, Query):
        source = lower_query(query.from_item, catalog)
    else:
        source = _scan(query.from_item, catalog)
    return lower_query_onto(query, source)


def lower_query_onto(query: Query, source: Plan) -> Plan:
    """Lower ``query``'s clauses onto an already-planned input relation.

    Mirrors :func:`repro.engine.executor._run` clause for clause: WHERE,
    then aggregation with select-list shaping and HAVING (or a plain
    computed projection), then ORDER BY and LIMIT.
    """
    plan = source
    if query.where is not None:
        plan = Filter(plan, query.where)
    if query.has_aggregates() or query.group_by:
        plan = GroupBy(
            plan, tuple(query.group_by), tuple(query.aggregates())
        )
        # group_by emits keys-then-aggregates; restore select-list order
        # and apply key aliases, exactly as the serial executor does.
        items: List[Projection] = []
        for item in query.select:
            if isinstance(item, Projection):
                items.append(item)  # bare Col, enforced by Query
            else:
                items.append(Projection(Col(item.alias), item.alias))
        plan = Project(plan, tuple(items), mode="view")
        if query.having is not None:
            plan = Filter(plan, query.having)
    else:
        plan = Project(plan, tuple(query.select), mode="compute")
    if query.order_by:
        plan = Sort(plan, tuple(query.order_by))
    if query.limit is not None:
        plan = Limit(plan, query.limit)
    return plan


def lower_rewritten(rewritten, catalog=None) -> Plan:
    """Lower a :class:`~repro.rewrite.plan.RewrittenPlan` to a plan tree.

    The spec is duck-typed (``query`` / ``join`` / ``ratios`` / ``output``
    / ``having`` / ``order_by`` / ``limit`` attributes) so this module has
    no import dependency on :mod:`repro.rewrite`.
    """
    query: Query = rewritten.query
    if rewritten.join is not None:
        join = rewritten.join
        source: Plan = Join(
            _scan(join.left, catalog),
            _scan(join.right, catalog),
            tuple(join.left_on),
            tuple(join.right_on),
        )
        plan = lower_query_onto(query, source)
    else:
        plan = lower_query(query, catalog)

    # Always a ScaleUp, even with no ratios (it degenerates to the output
    # projection): every rewritten plan carries the paper's scale-up stage
    # as an explicit operator, which explain() and the span tree surface.
    plan = ScaleUp(
        plan,
        tuple(
            Ratio(r.alias, r.numerator, r.denominator)
            for r in rewritten.ratios
        ),
        tuple(rewritten.output),
    )
    if rewritten.having is not None:
        plan = Filter(plan, rewritten.having)
    if rewritten.order_by:
        plan = Sort(plan, tuple(rewritten.order_by))
    if rewritten.limit is not None:
        plan = Limit(plan, rewritten.limit)
    return plan
