"""A cardinality-seeded cost model for logical plans.

PR 5's optimizer applied its rules unconditionally: every rewrite the rule
set could express was assumed to be an improvement.  ``BENCH_planner.json``
showed the assumption failing on the paper's own Qg0 shape (speedup
0.93x): a rewrite that is usually a win can lose on a particular
cardinality profile.  This module makes rule application *cost-gated*:

* :class:`TableStats` carries per-relation row/width estimates.  They can
  be seeded from a live catalog (:meth:`CostModel.from_catalog`) or -- the
  portfolio planner's path -- from a synopsis' own stratum cardinalities
  plus the :class:`~repro.aqua.workload_log.QueryLog` history (via the
  constructor's ``selectivity`` hook).
* :meth:`CostModel.rows` estimates per-operator output cardinality.
* :meth:`CostModel.cost` folds cardinalities into a scalar "cells touched"
  work estimate: rows scanned times columns materialized, plus predicate
  evaluations, hash-aggregation, join probes, and sort work.
* :func:`repro.plan.optimizer.optimize` accepts a ``cost_model`` and then
  keeps a rule's output **only when the model predicts it is no slower**
  than the plan it replaces -- a rule predicted to slow the plan is never
  applied (asserted by ``tests/plan/test_cost_model.py``).

The absolute numbers are arbitrary units; only the ordering matters, and
only between a plan and its rewrites (the gate never compares across
queries).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Dict, Mapping, Optional

from ..engine.predicates import And, Predicate
from .logical import (
    Filter,
    GroupBy,
    Join,
    Limit,
    Plan,
    Project,
    ScaleUp,
    Scan,
    Sort,
    output_columns,
)

__all__ = ["CostModel", "TableStats", "plan_cost", "plan_rows"]

#: Fallbacks when a relation is unknown to the model: assume a mid-sized
#: relation so unknown scans dominate known-small synopsis scans.
_DEFAULT_ROWS = 100_000
_DEFAULT_WIDTH = 8

#: A predicate conjunct keeps about this fraction of its input (matches the
#: renderer's display heuristic; replaced per-table by measured
#: selectivities when the portfolio planner seeds the model).
_CONJUNCT_SELECTIVITY = 1 / 3

#: A GROUP BY collapses to about the square root of its input.
_GROUP_COLLAPSE = 0.5  # exponent


@dataclass(frozen=True)
class TableStats:
    """What the model knows about one relation.

    Attributes:
        rows: estimated row count.
        width: estimated column count (cells per row).
        selectivity: optional measured predicate-keep fraction for this
            relation (the portfolio planner estimates it by evaluating the
            query's WHERE clause against the synopsis sample); ``None``
            falls back to the per-conjunct heuristic.
    """

    rows: int
    width: int = _DEFAULT_WIDTH
    selectivity: Optional[float] = None


def _conjuncts(predicate: Predicate) -> int:
    if isinstance(predicate, And):
        return _conjuncts(predicate.left) + _conjuncts(predicate.right)
    return 1


class CostModel:
    """Estimate operator cardinalities and total plan work.

    Args:
        tables: per-relation :class:`TableStats`.  Missing relations use
            conservative defaults.
        selectivity: optional override hook ``(table, predicate) ->
            fraction-kept`` consulted before the per-table/heuristic
            estimates (the portfolio planner passes sample-measured
            selectivities through this).
    """

    def __init__(
        self,
        tables: Optional[Mapping[str, TableStats]] = None,
        selectivity: Optional[
            Callable[[str, Predicate], Optional[float]]
        ] = None,
    ):
        self._tables: Dict[str, TableStats] = dict(tables or {})
        self._selectivity = selectivity

    @classmethod
    def from_catalog(cls, catalog) -> "CostModel":
        """Seed row/width stats from every relation in a live catalog."""
        tables = {}
        for name in catalog.names():
            table = catalog.get(name)
            tables[name] = TableStats(
                rows=table.num_rows, width=len(table.schema.names)
            )
        return cls(tables)

    def stats(self, table: str) -> TableStats:
        return self._tables.get(
            table, TableStats(rows=_DEFAULT_ROWS, width=_DEFAULT_WIDTH)
        )

    def set_stats(self, table: str, stats: TableStats) -> None:
        self._tables[table] = stats

    # -- cardinality ---------------------------------------------------------

    def _keep_fraction(self, table: str, predicate: Predicate) -> float:
        if self._selectivity is not None:
            measured = self._selectivity(table, predicate)
            if measured is not None:
                return min(max(measured, 0.0), 1.0)
        stats = self._tables.get(table)
        if stats is not None and stats.selectivity is not None:
            return min(max(stats.selectivity, 0.0), 1.0)
        return _CONJUNCT_SELECTIVITY ** _conjuncts(predicate)

    def rows(self, plan: Plan) -> float:
        """Estimated output rows of ``plan`` (>= 1)."""
        if isinstance(plan, Scan):
            rows = float(self.stats(plan.table).rows)
            if plan.predicate is not None:
                rows *= self._keep_fraction(plan.table, plan.predicate)
            return max(rows, 1.0)
        if isinstance(plan, Filter):
            table = _scan_table(plan.child)
            fraction = (
                self._keep_fraction(table, plan.predicate)
                if table is not None
                else _CONJUNCT_SELECTIVITY ** _conjuncts(plan.predicate)
            )
            return max(self.rows(plan.child) * fraction, 1.0)
        if isinstance(plan, GroupBy):
            collapsed = self.rows(plan.child) ** _GROUP_COLLAPSE
            return max(collapsed, 1.0)
        if isinstance(plan, Join):
            return max(self.rows(plan.left), self.rows(plan.right))
        if isinstance(plan, Limit):
            return max(min(self.rows(plan.child), float(plan.count)), 1.0)
        if plan.children:
            return self.rows(plan.children[0])
        return 1.0

    # -- width ---------------------------------------------------------------

    def _width(self, plan: Plan) -> float:
        columns = output_columns(plan)
        if columns is not None:
            return float(max(len(columns), 1))
        if isinstance(plan, Scan):
            return float(max(self.stats(plan.table).width, 1))
        if plan.children:
            return self._width(plan.children[0])
        return float(_DEFAULT_WIDTH)

    # -- work ----------------------------------------------------------------

    def cost(self, plan: Plan) -> float:
        """Total predicted work of executing ``plan``, in cells touched.

        Per operator (children included recursively):

        * ``Scan`` -- materialize ``rows_out x width`` cells, plus one
          predicate pass over the *unfiltered* rows per conjunct (the
          pushed-down predicate still reads every stored row).
        * ``Filter`` -- one predicate pass over the input, plus a
          ``rows_out x width`` copy of the survivors.
        * ``Project`` -- free in ``view`` mode (column reorder), one pass
          per computed item otherwise.
        * ``GroupBy`` -- hash every input row into ``keys + aggregates``
          cells.
        * ``Join`` -- build + probe linear passes plus output copy.
        * ``Sort`` -- ``n log n`` key comparisons.
        """
        total = 0.0
        for node, inputs in _walk_with_inputs(plan, self):
            total += self._node_cost(node, inputs)
        return total

    def _node_cost(self, node: Plan, input_rows: float) -> float:
        out_rows = self.rows(node)
        width = self._width(node)
        if isinstance(node, Scan):
            base = float(self.stats(node.table).rows)
            cost = out_rows * width  # materialized cells
            if node.predicate is not None:
                cost += base * _conjuncts(node.predicate)
            return cost
        if isinstance(node, Filter):
            return (
                input_rows * _conjuncts(node.predicate)
                + out_rows * self._width(node.child)
            )
        if isinstance(node, Project):
            if node.mode == "view":
                return 0.0
            return input_rows * len(node.items)
        if isinstance(node, GroupBy):
            return input_rows * (len(node.keys) + len(node.aggregates) + 1)
        if isinstance(node, Join):
            return (
                self.rows(node.left)
                + self.rows(node.right)
                + out_rows * width
            )
        if isinstance(node, Sort):
            return input_rows * max(math.log2(max(input_rows, 2.0)), 1.0)
        if isinstance(node, ScaleUp):
            return input_rows * max(len(node.ratios), 1)
        if isinstance(node, Limit):
            return 0.0
        return input_rows


def _scan_table(plan: Plan) -> Optional[str]:
    """The single base relation under a linear operator chain, if any."""
    while True:
        if isinstance(plan, Scan):
            return plan.table
        if len(plan.children) != 1:
            return None
        plan = plan.children[0]


def _walk_with_inputs(plan: Plan, model: CostModel):
    """Yield ``(node, input_rows)`` pairs depth-first."""
    inputs = (
        sum(model.rows(child) for child in plan.children)
        if plan.children
        else 0.0
    )
    yield plan, inputs
    for child in plan.children:
        yield from _walk_with_inputs(child, model)


def plan_rows(plan: Plan, catalog) -> float:
    """Convenience: estimated output rows against a live catalog."""
    return CostModel.from_catalog(catalog).rows(plan)


def plan_cost(plan: Plan, catalog) -> float:
    """Convenience: estimated work against a live catalog."""
    return CostModel.from_catalog(catalog).cost(plan)
