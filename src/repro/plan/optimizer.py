"""Rule-based logical-plan optimizer.

Every rule is a pure ``Plan -> Plan`` function: no catalog access, no
mutation, no hidden state.  :func:`optimize` drives the rule set to a
fixpoint (plans are frozen dataclasses, so "no rule changed anything" is a
plain equality test).

Rules:

* :func:`fold_constants` -- evaluate constant arithmetic and comparisons at
  plan time; drop always-true filters.
* :func:`fuse_filters` -- collapse ``Filter(Filter(x))`` stacks into one
  conjunctive predicate.
* :func:`push_down_predicates` -- move filters into :class:`Scan` leaves
  and through :class:`Join` inputs whose columns cover the predicate.
* :func:`prune_projections` -- compute the columns each operator actually
  needs and restrict every Scan to materializing only those numpy arrays.

All rules are semantics-preserving: for any plan the optimized tree
produces the same rows in the same order (asserted by randomized property
tests in ``tests/plan``).
"""

from __future__ import annotations

from dataclasses import replace
from functools import reduce
from typing import Callable, FrozenSet, List, Optional, Tuple

from ..engine.expressions import BinaryOp, Expression, Func, Lit, UnaryOp
from ..engine.predicates import (
    And,
    Between,
    Comparison,
    InList,
    Not,
    Or,
    Predicate,
    TruePredicate,
)
from ..engine.query import Projection
from .logical import (
    Filter,
    GroupBy,
    Join,
    Limit,
    Plan,
    Project,
    ScaleUp,
    Scan,
    Sort,
    output_columns,
)

__all__ = [
    "DEFAULT_RULES",
    "fold_constants",
    "fuse_filters",
    "optimize",
    "prune_projections",
    "push_down_predicates",
    "transform",
]

Rule = Callable[[Plan], Plan]


def transform(plan: Plan, fn: Callable[[Plan], Plan]) -> Plan:
    """Rebuild ``plan`` bottom-up, applying ``fn`` to every node."""
    children = tuple(transform(child, fn) for child in plan.children)
    if children != plan.children:
        plan = plan.with_children(children)
    return fn(plan)


# -- constant folding --------------------------------------------------------

_FOLD_OPS = {
    "+": lambda a, b: a + b,
    "-": lambda a, b: a - b,
    "*": lambda a, b: a * b,
    "/": lambda a, b: a / b,
}
_COMPARE_OPS = {
    "=": lambda a, b: a == b,
    "!=": lambda a, b: a != b,
    "<": lambda a, b: a < b,
    "<=": lambda a, b: a <= b,
    ">": lambda a, b: a > b,
    ">=": lambda a, b: a >= b,
}
_NUMERIC = (int, float)


def _fold_expression(expr: Expression) -> Expression:
    if isinstance(expr, BinaryOp):
        left = _fold_expression(expr.left)
        right = _fold_expression(expr.right)
        if (
            isinstance(left, Lit)
            and isinstance(right, Lit)
            and isinstance(left.value, _NUMERIC)
            and isinstance(right.value, _NUMERIC)
            and not isinstance(left.value, bool)
            and not isinstance(right.value, bool)
            and not (expr.op == "/" and right.value == 0)
        ):
            return Lit(_FOLD_OPS[expr.op](left.value, right.value))
        if left is not expr.left or right is not expr.right:
            return BinaryOp(expr.op, left, right)
        return expr
    if isinstance(expr, UnaryOp):
        operand = _fold_expression(expr.operand)
        if isinstance(operand, Lit) and isinstance(operand.value, _NUMERIC):
            return Lit(-operand.value)
        if operand is not expr.operand:
            return UnaryOp(expr.op, operand)
        return expr
    if isinstance(expr, Func):
        operand = _fold_expression(expr.operand)
        if operand is not expr.operand:
            return Func(expr.name, operand)
        return expr
    return expr


def _is_false(predicate: Predicate) -> bool:
    return isinstance(predicate, Not) and isinstance(
        predicate.operand, TruePredicate
    )


_FALSE = Not(TruePredicate())


def _fold_predicate(predicate: Predicate) -> Predicate:
    if isinstance(predicate, Comparison):
        left = _fold_expression(predicate.left)
        right = _fold_expression(predicate.right)
        if (
            isinstance(left, Lit)
            and isinstance(right, Lit)
            and type(left.value) is type(right.value)
        ):
            return (
                TruePredicate()
                if _COMPARE_OPS[predicate.op](left.value, right.value)
                else _FALSE
            )
        return Comparison(predicate.op, left, right)
    if isinstance(predicate, Between):
        return Between(
            _fold_expression(predicate.expr),
            _fold_expression(predicate.low),
            _fold_expression(predicate.high),
        )
    if isinstance(predicate, InList):
        return InList(_fold_expression(predicate.expr), predicate.values)
    if isinstance(predicate, And):
        left = _fold_predicate(predicate.left)
        right = _fold_predicate(predicate.right)
        if isinstance(left, TruePredicate):
            return right
        if isinstance(right, TruePredicate):
            return left
        if _is_false(left) or _is_false(right):
            return _FALSE
        return And(left, right)
    if isinstance(predicate, Or):
        left = _fold_predicate(predicate.left)
        right = _fold_predicate(predicate.right)
        if isinstance(left, TruePredicate) or isinstance(right, TruePredicate):
            return TruePredicate()
        if _is_false(left):
            return right
        if _is_false(right):
            return left
        return Or(left, right)
    if isinstance(predicate, Not):
        operand = _fold_predicate(predicate.operand)
        if isinstance(operand, Not):
            return operand.operand
        return Not(operand)
    return predicate


def fold_constants(plan: Plan) -> Plan:
    """Evaluate constant sub-expressions; drop always-true filters."""

    def fn(node: Plan) -> Plan:
        if isinstance(node, Filter):
            predicate = _fold_predicate(node.predicate)
            if isinstance(predicate, TruePredicate):
                return node.child
            if predicate != node.predicate:
                return replace(node, predicate=predicate)
            return node
        if isinstance(node, Scan) and node.predicate is not None:
            predicate = _fold_predicate(node.predicate)
            if isinstance(predicate, TruePredicate):
                return replace(node, predicate=None)
            if predicate != node.predicate:
                return replace(node, predicate=predicate)
            return node
        if isinstance(node, Project) and node.mode == "compute":
            items = tuple(
                Projection(_fold_expression(item.expr), item.alias)
                for item in node.items
            )
            if items != node.items:
                return replace(node, items=items)
            return node
        if isinstance(node, GroupBy):
            aggregates = tuple(
                replace(agg, expr=_fold_expression(agg.expr))
                for agg in node.aggregates
            )
            if aggregates != node.aggregates:
                return replace(node, aggregates=aggregates)
            return node
        return node

    return transform(plan, fn)


# -- filter fusion -----------------------------------------------------------


def fuse_filters(plan: Plan) -> Plan:
    """``Filter(Filter(x, p1), p2)`` -> ``Filter(x, p1 AND p2)``.

    Predicates are row-local, so evaluating both masks against the
    pre-filter table is equivalent to evaluating them in sequence.
    """

    def fn(node: Plan) -> Plan:
        if isinstance(node, Filter) and isinstance(node.child, Filter):
            return Filter(
                node.child.child, And(node.child.predicate, node.predicate)
            )
        return node

    return transform(plan, fn)


# -- predicate pushdown ------------------------------------------------------


def _split_and(predicate: Predicate) -> List[Predicate]:
    if isinstance(predicate, And):
        return _split_and(predicate.left) + _split_and(predicate.right)
    return [predicate]


def _conjoin(predicates: List[Predicate]) -> Predicate:
    return reduce(And, predicates)


def _push_into_join(node: Filter, join: Join) -> Plan:
    """Route a join-top filter's conjuncts to the sides that cover them.

    An inner join commutes with filters on either input: dropping a left
    row before the join removes exactly the output rows that the same
    predicate would have dropped after it (and preserves row order, since
    the probe side is scanned in order).  Conjuncts referencing columns of
    both sides -- or right columns that the join output renames with the
    collision suffix -- stay above the join.
    """
    left_cols = output_columns(join.left)
    right_cols = output_columns(join.right)
    if left_cols is None or right_cols is None:
        return node
    left_set = frozenset(left_cols)
    # Right columns usable for pushdown: join keys are dropped from the
    # output (they equal the left keys) and collision-suffixed columns no
    # longer carry their input name, so neither can be routed right.
    right_set = (
        frozenset(right_cols) - frozenset(join.right_on) - left_set
    )
    to_left: List[Predicate] = []
    to_right: List[Predicate] = []
    remain: List[Predicate] = []
    for conjunct in _split_and(node.predicate):
        refs = frozenset(conjunct.referenced_columns())
        if refs <= left_set:
            to_left.append(conjunct)
        elif refs <= right_set:
            to_right.append(conjunct)
        else:
            remain.append(conjunct)
    if not to_left and not to_right:
        return node
    left = Filter(join.left, _conjoin(to_left)) if to_left else join.left
    right = Filter(join.right, _conjoin(to_right)) if to_right else join.right
    pushed: Plan = replace(join, left=left, right=right)
    if remain:
        pushed = Filter(pushed, _conjoin(remain))
    return pushed


def push_down_predicates(plan: Plan) -> Plan:
    """Move filters into Scan leaves and through Join inputs."""

    def fn(node: Plan) -> Plan:
        if not isinstance(node, Filter):
            return node
        child = node.child
        if isinstance(child, Scan):
            merged = (
                node.predicate
                if child.predicate is None
                else And(child.predicate, node.predicate)
            )
            return replace(child, predicate=merged)
        if isinstance(child, Join):
            return _push_into_join(node, child)
        return node

    return transform(plan, fn)


# -- projection pruning ------------------------------------------------------


def _required_for_items(items: Tuple[Projection, ...]) -> FrozenSet[str]:
    refs: List[str] = []
    for item in items:
        refs.extend(item.expr.referenced_columns())
    return frozenset(refs)


def prune_projections(plan: Plan) -> Plan:
    """Restrict every Scan to the columns the plan actually reads.

    A top-down pass computes, per operator, which input columns its output
    depends on; Scans with a ``table_columns`` hint then materialize only
    that subset (kept in table order, so downstream schema order stays
    deterministic).  Scans without the hint are left untouched -- the rule
    never needs a live catalog.
    """
    return _prune(plan, None)


def _prune(plan: Plan, required: Optional[FrozenSet[str]]) -> Plan:
    if isinstance(plan, Scan):
        if required is None or plan.table_columns is None:
            return plan
        needed = set(required)
        if plan.predicate is not None:
            needed.update(plan.predicate.referenced_columns())
        columns = tuple(c for c in plan.table_columns if c in needed)
        if not columns:
            # A zero-column table loses its row count; COUNT(*)-only scans
            # must keep one column to preserve cardinality.
            columns = plan.table_columns[:1]
        if len(columns) == len(plan.table_columns):
            columns = None  # nothing pruned; keep the simpler node
        if columns == plan.columns:
            return plan
        return replace(plan, columns=columns)
    if isinstance(plan, Filter):
        child_req = (
            None
            if required is None
            else required | frozenset(plan.predicate.referenced_columns())
        )
        return plan.with_children((_prune(plan.child, child_req),))
    if isinstance(plan, Project):
        return plan.with_children(
            (_prune(plan.child, _required_for_items(plan.items)),)
        )
    if isinstance(plan, GroupBy):
        refs: List[str] = list(plan.keys)
        for agg in plan.aggregates:
            refs.extend(agg.expr.referenced_columns())
        return plan.with_children((_prune(plan.child, frozenset(refs)),))
    if isinstance(plan, ScaleUp):
        ratio_aliases = {r.alias for r in plan.ratios}
        needed = {name for name in plan.output if name not in ratio_aliases}
        for ratio in plan.ratios:
            needed.add(ratio.numerator)
            needed.add(ratio.denominator)
        return plan.with_children((_prune(plan.child, frozenset(needed)),))
    if isinstance(plan, Sort):
        child_req = (
            None if required is None else required | frozenset(plan.keys)
        )
        return plan.with_children((_prune(plan.child, child_req),))
    if isinstance(plan, Limit):
        return plan.with_children((_prune(plan.child, required),))
    if isinstance(plan, Join):
        left_cols = output_columns(plan.left)
        right_cols = output_columns(plan.right)
        if required is None or left_cols is None or right_cols is None:
            return plan.with_children(
                (_prune(plan.left, None), _prune(plan.right, None))
            )
        left_req = {c for c in left_cols if c in required}
        left_req.update(plan.left_on)
        suffix = plan.suffix
        right_req = set()
        for name in right_cols:
            if name in required or (name + suffix) in required:
                right_req.add(name)
        right_req.update(plan.right_on)
        return plan.with_children(
            (
                _prune(plan.left, frozenset(left_req)),
                _prune(plan.right, frozenset(right_req)),
            )
        )
    return plan


# -- the fixpoint driver -----------------------------------------------------

DEFAULT_RULES: Tuple[Rule, ...] = (
    fold_constants,
    fuse_filters,
    push_down_predicates,
    prune_projections,
)


def optimize(
    plan: Plan,
    rules: Tuple[Rule, ...] = DEFAULT_RULES,
    max_passes: int = 10,
    cost_model=None,
) -> Plan:
    """Apply ``rules`` round-robin until the plan stops changing.

    Frozen-dataclass equality is the fixpoint test; ``max_passes`` bounds
    pathological rule interactions (none exist in the default set, which
    converges in two passes on every query class the system serves).

    With a ``cost_model`` (a :class:`repro.plan.cost.CostModel`), rule
    application is *cost-gated*: each rule's rewrite is kept only when the
    model predicts it is no more expensive than the plan it replaces, so a
    rule the model predicts to slow the plan is never applied.  Every rule
    in :data:`DEFAULT_RULES` is semantics-preserving, so rejecting its
    output is always safe -- the gate trades a possible speedup for a
    guaranteed non-regression (the Qg0 fix: ``BENCH_planner.json`` once
    recorded an unconditional rewrite losing 7% on the paper's own
    single-group query shape).
    """
    cost = cost_model.cost(plan) if cost_model is not None else None
    for _ in range(max_passes):
        before = plan
        for rule in rules:
            candidate = rule(plan)
            if candidate == plan:
                continue
            if cost_model is None:
                plan = candidate
                continue
            candidate_cost = cost_model.cost(candidate)
            if candidate_cost <= cost:
                plan, cost = candidate, candidate_cost
        if plan == before:
            return plan
    return plan
