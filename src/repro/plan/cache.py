"""Bounded LRU cache for optimized logical plans.

Planning is cheap next to scanning, but dashboard workloads re-issue the
same queries, and the optimizer's fixpoint driver re-walks the tree on
every pass; memoizing the *optimized plan* (not the answer -- that is
:class:`~repro.aqua.cache.AnswerCache`'s job) removes lower + optimize from
the hot path entirely.

The key mirrors the answer-cache discipline: it embeds the base table's
data version, so a refresh or re-registration -- which may change synopsis
schemas and therefore correct plans -- invalidates at lookup time, plus the
rewrite-strategy name and the *canonical plan fingerprint*
(:func:`repro.plan.canonicalize`).  Fingerprint keying means trivially
equivalent spellings -- reordered conjuncts, folded constants -- compile
once and share the optimized plan; there is no query-text normalization
anywhere in the path.  Stats mirror to
``aqua_plan_cache_{hits,misses,evictions}_total`` when a metrics registry
is attached.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import Hashable, Optional

from ..obs import MetricsRegistry
from .logical import Plan

__all__ = ["PlanCache", "PlanCacheStats"]


@dataclass(frozen=True)
class PlanCacheStats:
    """Cumulative plan-cache effectiveness counters."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    size: int = 0
    capacity: int = 0

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def describe(self) -> str:
        return (
            f"plan cache: {self.size}/{self.capacity} entries, "
            f"{self.hits} hits / {self.misses} misses "
            f"({self.hit_rate:.0%} hit rate), {self.evictions} evicted"
        )


class PlanCache:
    """A bounded least-recently-used optimized-plan store.

    Keys are opaque hashables built by the caller (see
    :meth:`~repro.aqua.system.AquaSystem._plan_key`): ``(table, version,
    strategy, relation, canonical plan fingerprint)``.  ``get`` promotes
    on hit; ``put`` evicts
    the least-recently-used entry once ``capacity`` is exceeded.  Plans are
    immutable (frozen dataclasses), so entries are shared safely.

    Thread-safe: concurrent serving workers plan against one shared cache,
    so all entry-map access (``get`` included -- LRU promotion mutates the
    order) runs under one lock.
    """

    def __init__(
        self,
        capacity: int = 256,
        metrics: Optional[MetricsRegistry] = None,
    ):
        if capacity < 1:
            raise ValueError(f"cache capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self._entries: "OrderedDict[Hashable, Plan]" = OrderedDict()
        self._metrics = metrics
        self._lock = threading.RLock()
        self._hits = 0
        self._misses = 0
        self._evictions = 0

    def attach_metrics(self, metrics: Optional[MetricsRegistry]) -> None:
        """(Re)bind the registry the cache mirrors its counters into."""
        self._metrics = metrics

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def get(self, key: Hashable) -> Optional[Plan]:
        """The cached plan for ``key`` (promoted to most-recent), or None."""
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                self._misses += 1
                self._count("aqua_plan_cache_misses_total")
                return None
            self._entries.move_to_end(key)
            self._hits += 1
            self._count("aqua_plan_cache_hits_total")
            return entry

    def put(self, key: Hashable, plan: Plan) -> None:
        """Store ``plan``, evicting the LRU entry when over capacity."""
        with self._lock:
            self._entries[key] = plan
            self._entries.move_to_end(key)
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)
                self._evictions += 1
                self._count("aqua_plan_cache_evictions_total")

    def invalidate(self, table: Optional[str] = None) -> int:
        """Drop entries (all, or those whose key starts with ``table``)."""
        with self._lock:
            if table is None:
                dropped = len(self._entries)
                self._entries.clear()
                return dropped
            doomed = [
                key
                for key in self._entries
                if isinstance(key, tuple) and key and key[0] == table
            ]
            for key in doomed:
                del self._entries[key]
            return len(doomed)

    @property
    def stats(self) -> PlanCacheStats:
        with self._lock:
            return PlanCacheStats(
                hits=self._hits,
                misses=self._misses,
                evictions=self._evictions,
                size=len(self._entries),
                capacity=self.capacity,
            )

    def _count(self, name: str) -> None:
        if self._metrics is None or not self._metrics.enabled:
            return
        self._metrics.counter(
            name,
            "Plan-cache lookups by outcome (see repro.plan.cache).",
        ).inc()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"PlanCache({len(self._entries)}/{self.capacity})"
