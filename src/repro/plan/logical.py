"""Logical plan IR: the relational operator tree all execution paths share.

The paper's Aqua middleware answers every query -- approximate, exact
fallback, or guard-repaired -- by running *some* query over *some* relation
(Section 5).  This module gives those queries one common shape: an
immutable tree of relational operators that the planner
(:mod:`repro.plan.planner`) produces, the rule-based optimizer
(:mod:`repro.plan.optimizer`) rewrites, and the physical executor
(:mod:`repro.plan.physical`) runs against the engine's catalog.

Operators (leaf first):

* :class:`Scan` -- read a catalog relation, optionally applying a pushed-down
  predicate and materializing only the listed numpy columns.
* :class:`Filter` -- drop rows failing a predicate.
* :class:`Project` -- shape the select list: ``"view"`` mode reorders /
  renames existing columns, ``"compute"`` mode evaluates scalar expressions
  into fresh columns.
* :class:`Join` -- inner hash equi-join of two subplans.
* :class:`GroupBy` -- hash aggregation producing keys-then-aggregates.
* :class:`ScaleUp` -- post-aggregation ratio columns (the ``sum(Q*SF) /
  sum(SF)`` of AVG rewrites) plus final output projection.
* :class:`Sort` / :class:`Limit` -- output ordering and row cap.

Every node is a frozen dataclass, so plans are hashable, comparable (the
optimizer's fixpoint test), and safe to cache.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Iterator, List, Optional, Tuple

from ..engine.aggregates import Aggregate
from ..engine.predicates import Predicate
from ..engine.query import Projection
from ..errors import AquaError

__all__ = [
    "Filter",
    "GroupBy",
    "Join",
    "Limit",
    "Plan",
    "PlanError",
    "Project",
    "Ratio",
    "ScaleUp",
    "Scan",
    "Sort",
    "output_columns",
    "render_plan",
    "walk",
]


class PlanError(AquaError, ValueError):
    """Raised for structurally invalid logical plans."""


@dataclass(frozen=True)
class Ratio:
    """A post-aggregation derived column ``alias = numerator / denominator``."""

    alias: str
    numerator: str
    denominator: str


@dataclass(frozen=True)
class Plan:
    """Base class for logical operators."""

    kind = "plan"

    @property
    def children(self) -> Tuple["Plan", ...]:
        return ()

    def with_children(self, children: Tuple["Plan", ...]) -> "Plan":
        if children:
            raise PlanError(f"{type(self).__name__} takes no children")
        return self


@dataclass(frozen=True)
class Scan(Plan):
    """Read catalog relation ``table``.

    Attributes:
        table: catalog name of the relation.
        predicate: optional pushed-down row filter, applied after the
            column projection (so it may only reference kept columns --
            the pruning rule guarantees this).
        columns: optional column subset to materialize (projection
            pruning); ``None`` keeps every column.
        table_columns: planner hint -- the relation's full column list at
            planning time.  Purely informational: rules that need schema
            knowledge (join-side pushdown, pruning) are no-ops without it,
            which keeps every rule a pure ``Plan -> Plan`` function.
    """

    table: str
    predicate: Optional[Predicate] = None
    columns: Optional[Tuple[str, ...]] = None
    table_columns: Optional[Tuple[str, ...]] = None

    kind = "scan"


@dataclass(frozen=True)
class Filter(Plan):
    """Keep only rows of ``child`` satisfying ``predicate``."""

    child: Plan
    predicate: Predicate

    kind = "filter"

    @property
    def children(self) -> Tuple[Plan, ...]:
        return (self.child,)

    def with_children(self, children: Tuple[Plan, ...]) -> "Filter":
        (child,) = children
        return replace(self, child=child)


@dataclass(frozen=True)
class Project(Plan):
    """Shape the select list of ``child``.

    ``mode="view"`` requires every item to be a bare column reference and
    executes as a zero-copy reorder/rename of existing columns (preserving
    schema roles) -- the shaping step after a GROUP BY.  ``mode="compute"``
    evaluates each item's expression into a fresh column -- a plain
    (non-aggregate) SELECT list.
    """

    child: Plan
    items: Tuple[Projection, ...]
    mode: str = "view"

    kind = "project"

    def __post_init__(self) -> None:
        if self.mode not in ("view", "compute"):
            raise PlanError(
                f"Project mode must be view or compute, got {self.mode!r}"
            )
        if not self.items:
            raise PlanError("Project needs at least one item")
        if self.mode == "view":
            from ..engine.expressions import Col

            for item in self.items:
                if not isinstance(item.expr, Col):
                    raise PlanError(
                        "view-mode Project items must be bare columns; "
                        f"got {item.expr!r}"
                    )

    @property
    def children(self) -> Tuple[Plan, ...]:
        return (self.child,)

    def with_children(self, children: Tuple[Plan, ...]) -> "Project":
        (child,) = children
        return replace(self, child=child)


@dataclass(frozen=True)
class Join(Plan):
    """Inner hash equi-join of ``left`` and ``right``.

    Mirrors :func:`repro.engine.join.hash_join`: the output carries all
    left columns plus non-key right columns (collisions suffixed).
    """

    left: Plan
    right: Plan
    left_on: Tuple[str, ...]
    right_on: Tuple[str, ...]
    suffix: str = "_r"

    kind = "join"

    def __post_init__(self) -> None:
        if len(self.left_on) != len(self.right_on) or not self.left_on:
            raise PlanError(
                f"join keys mismatch: {self.left_on} vs {self.right_on}"
            )

    @property
    def children(self) -> Tuple[Plan, ...]:
        return (self.left, self.right)

    def with_children(self, children: Tuple[Plan, ...]) -> "Join":
        left, right = children
        return replace(self, left=left, right=right)


@dataclass(frozen=True)
class GroupBy(Plan):
    """Hash aggregation: output columns are ``keys`` then aggregate aliases."""

    child: Plan
    keys: Tuple[str, ...]
    aggregates: Tuple[Aggregate, ...]

    kind = "group_by"

    def __post_init__(self) -> None:
        if not self.keys and not self.aggregates:
            raise PlanError("GroupBy needs keys or aggregates")

    @property
    def children(self) -> Tuple[Plan, ...]:
        return (self.child,)

    def with_children(self, children: Tuple[Plan, ...]) -> "GroupBy":
        (child,) = children
        return replace(self, child=child)


@dataclass(frozen=True)
class ScaleUp(Plan):
    """Compute ratio columns and project to the final ``output`` aliases."""

    child: Plan
    ratios: Tuple[Ratio, ...]
    output: Tuple[str, ...]

    kind = "scale_up"

    def __post_init__(self) -> None:
        if not self.output:
            raise PlanError("ScaleUp needs output columns")

    @property
    def children(self) -> Tuple[Plan, ...]:
        return (self.child,)

    def with_children(self, children: Tuple[Plan, ...]) -> "ScaleUp":
        (child,) = children
        return replace(self, child=child)


@dataclass(frozen=True)
class Sort(Plan):
    """Stable lexicographic sort by ``keys``."""

    child: Plan
    keys: Tuple[str, ...]

    kind = "sort"

    def __post_init__(self) -> None:
        if not self.keys:
            raise PlanError("Sort needs at least one key")

    @property
    def children(self) -> Tuple[Plan, ...]:
        return (self.child,)

    def with_children(self, children: Tuple[Plan, ...]) -> "Sort":
        (child,) = children
        return replace(self, child=child)


@dataclass(frozen=True)
class Limit(Plan):
    """First ``count`` rows of ``child``."""

    child: Plan
    count: int

    kind = "limit"

    def __post_init__(self) -> None:
        if self.count < 0:
            raise PlanError(f"Limit must be >= 0, got {self.count}")

    @property
    def children(self) -> Tuple[Plan, ...]:
        return (self.child,)

    def with_children(self, children: Tuple[Plan, ...]) -> "Limit":
        (child,) = children
        return replace(self, child=child)


# -- traversal ---------------------------------------------------------------


def walk(plan: Plan, path: Tuple[int, ...] = ()) -> Iterator[
    Tuple[Tuple[int, ...], Plan]
]:
    """Yield ``(path, node)`` pairs depth-first, parents before children.

    ``path`` is the child-index route from the root (``()`` for the root
    itself); it identifies a node stably across the logical tree and its
    physical execution, which is how ``explain(analyze=True)`` matches
    measured per-operator rows/timings back to rendered tree lines.
    """
    yield path, plan
    for i, child in enumerate(plan.children):
        yield from walk(child, path + (i,))


def output_columns(plan: Plan) -> Optional[Tuple[str, ...]]:
    """The column names ``plan`` produces, or None when unknown.

    Scans only know their output when the planner attached a
    ``table_columns`` hint; everything above propagates structurally.
    """
    if isinstance(plan, Scan):
        if plan.columns is not None:
            return plan.columns
        return plan.table_columns
    if isinstance(plan, (Filter, Sort, Limit)):
        return output_columns(plan.child)
    if isinstance(plan, Project):
        return tuple(item.alias for item in plan.items)
    if isinstance(plan, GroupBy):
        return plan.keys + tuple(a.alias for a in plan.aggregates)
    if isinstance(plan, ScaleUp):
        return plan.output
    if isinstance(plan, Join):
        left = output_columns(plan.left)
        right = output_columns(plan.right)
        if left is None or right is None:
            return None
        out: List[str] = list(left)
        key_set = set(plan.right_on)
        left_set = set(left)
        for name in right:
            if name in key_set:
                continue
            out.append(name + plan.suffix if name in left_set else name)
        return tuple(out)
    return None


# -- cardinality estimation & rendering --------------------------------------

# Rough-cut planner constants: a predicate keeps about a third of its input,
# a GROUP BY collapses to about the square root of its input.  The numbers
# only order operators for display -- nothing cost-based hangs off them yet.
_FILTER_SELECTIVITY = 1 / 3


def _estimate(plan: Plan, catalog) -> Optional[int]:
    """Estimated output rows against ``catalog`` (None if unknowable)."""
    if isinstance(plan, Scan):
        try:
            rows = catalog.get(plan.table).num_rows
        except Exception:
            return None
        if plan.predicate is not None:
            rows = int(rows * _FILTER_SELECTIVITY)
        return max(rows, 1)
    child = [_estimate(c, catalog) for c in plan.children]
    if any(c is None for c in child):
        return None
    if isinstance(plan, Filter):
        return max(int(child[0] * _FILTER_SELECTIVITY), 1)
    if isinstance(plan, GroupBy):
        return max(int(child[0] ** 0.5), 1)
    if isinstance(plan, Join):
        return max(child[0], child[1])
    if isinstance(plan, Limit):
        return min(child[0], plan.count)
    return child[0]


def _describe(plan: Plan) -> str:
    """One-line operator description (predicates/expressions rendered)."""
    from ..engine.render import render_expression, render_predicate

    if isinstance(plan, Scan):
        parts = [f"Scan {plan.table}"]
        if plan.predicate is not None:
            parts.append(f"WHERE {render_predicate(plan.predicate)}")
        if plan.columns is not None:
            parts.append("cols=[" + ", ".join(plan.columns) + "]")
        return " ".join(parts)
    if isinstance(plan, Filter):
        return f"Filter {render_predicate(plan.predicate)}"
    if isinstance(plan, Project):
        rendered = []
        for item in plan.items:
            expr = render_expression(item.expr)
            rendered.append(
                expr if expr == item.alias else f"{expr} AS {item.alias}"
            )
        return f"Project[{plan.mode}] " + ", ".join(rendered)
    if isinstance(plan, Join):
        on = ", ".join(
            f"{l} = {r}" for l, r in zip(plan.left_on, plan.right_on)
        )
        return f"Join ON {on}"
    if isinstance(plan, GroupBy):
        aggs = ", ".join(
            f"{a.func}({render_expression(a.expr)}) AS {a.alias}"
            for a in plan.aggregates
        )
        keys = ", ".join(plan.keys) if plan.keys else "()"
        return f"GroupBy [{keys}] {aggs}"
    if isinstance(plan, ScaleUp):
        ratios = ", ".join(
            f"{r.alias} = {r.numerator} / {r.denominator}" for r in plan.ratios
        )
        out = ", ".join(plan.output)
        return f"ScaleUp {ratios or '(no ratios)'} -> [{out}]"
    if isinstance(plan, Sort):
        return "Sort [" + ", ".join(plan.keys) + "]"
    if isinstance(plan, Limit):
        return f"Limit {plan.count}"
    return type(plan).__name__


def render_plan(
    plan: Plan,
    catalog=None,
    actuals=None,
) -> str:
    """Render the operator tree, one indented line per node.

    Args:
        plan: the tree to render.
        catalog: when given, each line carries an estimated output
            cardinality (``~rows=N``) derived from catalog row counts and
            fixed selectivity heuristics.
        actuals: optional mapping of node path (see :func:`walk`) to a
            ``(rows, seconds)`` pair -- the ``explain(analyze=True)`` view
            of what each operator actually produced and cost.
    """
    lines = []
    for path, node in walk(plan):
        line = "  " * len(path) + _describe(node)
        if catalog is not None:
            estimate = _estimate(node, catalog)
            if estimate is not None:
                line += f"  ~rows={estimate}"
        if actuals is not None and path in actuals:
            rows, seconds = actuals[path]
            line += f"  rows={rows} time={seconds * 1000:.2f}ms"
        lines.append(line)
    return "\n".join(lines)
