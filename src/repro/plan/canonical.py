"""Canonical forms and fingerprints for plans and queries.

Semantically equivalent queries should share cache entries.  The answer
cache, plan cache, and streaming cache used to key on rendered SQL text,
so ``WHERE a = 1 AND b = 2`` and ``WHERE b = 2 AND a = 1`` compiled and
cached twice.  This module provides pure canonicalization:

* :func:`canonicalize_predicate` -- fold constants, flatten and sort
  AND/OR chains, sort IN lists, and orient comparisons column-first.
  Boolean masks over a table are evaluated fully (no short-circuiting),
  so reordering commutative operands never changes the result.
* :func:`canonicalize` -- canonicalize every predicate inside a logical
  plan and hash the result into a stable fingerprint.  Runs after
  lowering (and again after ``optimize``), so the :class:`PlanCache`
  keys on ``(table, version, strategy, fingerprint)`` instead of text.
* :func:`canonicalize_query` -- query-level canonical form with two
  fingerprints: a *semantic* one that is alias-insensitive and ignores
  GROUP BY column order (the answer cache reconciles aliases and row
  order on a hit), and a *structural* one that keeps aliases and group
  order (used where the cached value bakes in the output schema, e.g.
  streaming answers).

Deliberate asymmetry: plan fingerprints stay alias-*sensitive* because
a compiled plan's Project/GroupBy nodes bake output column names into
the physical schema; renaming columns inside a cached plan could
collide with base-table names.  Alias insensitivity therefore lives
only in the answer-cache fingerprint, where a hit is reconciled by
renaming result columns (see :mod:`repro.aqua.system`).

Everything here is deterministic and pure: same input object graph,
same fingerprint, across processes and platforms.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, replace
from functools import reduce
from typing import Dict, List, Optional, Tuple, Union

from ..engine.aggregates import Aggregate
from ..engine.expressions import Expression, Lit
from ..engine.predicates import (
    And,
    Comparison,
    InList,
    Not,
    Or,
    Predicate,
    TruePredicate,
)
from ..engine.query import Projection, Query
from ..engine.render import render_expression, render_predicate
from .logical import Filter, Plan, Scan
from .optimizer import (
    _conjoin,
    _fold_expression,
    _fold_predicate,
    _split_and,
    fold_constants,
    transform,
)

__all__ = [
    "CanonicalQuery",
    "canonicalize",
    "canonicalize_expression",
    "canonicalize_predicate",
    "canonicalize_query",
    "predicate_conjuncts",
    "predicate_fingerprint",
]

# Mirror table for orienting ``literal <op> column`` comparisons
# column-first: the comparator flips, the operands swap.
_MIRRORED_OPS = {"=": "=", "!=": "!=", "<": ">", "<=": ">=", ">": "<", ">=": "<="}


def _digest(text: str) -> str:
    return hashlib.sha256(text.encode("utf-8")).hexdigest()[:20]


def canonicalize_expression(expr: Expression) -> Expression:
    """Fold constant sub-expressions (``1 + 2`` -> ``3``)."""
    return _fold_expression(expr)


def _split_or(predicate: Predicate) -> List[Predicate]:
    if isinstance(predicate, Or):
        return _split_or(predicate.left) + _split_or(predicate.right)
    return [predicate]


def _sorted_unique(parts: List[Predicate]) -> List[Predicate]:
    seen = set()
    unique = []
    for part in parts:
        if part not in seen:
            seen.add(part)
            unique.append(part)
    unique.sort(key=render_predicate)
    return unique


def _normalize(predicate: Predicate) -> Predicate:
    if isinstance(predicate, And):
        parts: List[Predicate] = []
        for part in _split_and(predicate):
            parts.extend(_split_and(_normalize(part)))
        return _conjoin(_sorted_unique(parts))
    if isinstance(predicate, Or):
        parts = []
        for part in _split_or(predicate):
            parts.extend(_split_or(_normalize(part)))
        return reduce(Or, _sorted_unique(parts))
    if isinstance(predicate, Not):
        return Not(_normalize(predicate.operand))
    if isinstance(predicate, Comparison):
        if isinstance(predicate.left, Lit) and not isinstance(
            predicate.right, Lit
        ):
            return Comparison(
                _MIRRORED_OPS[predicate.op], predicate.right, predicate.left
            )
        return predicate
    if isinstance(predicate, InList):
        ordered = sorted(
            set(predicate.values), key=lambda v: (type(v).__name__, repr(v))
        )
        return InList(predicate.expr, tuple(ordered))
    return predicate


def canonicalize_predicate(predicate: Predicate) -> Predicate:
    """Canonical form of a predicate: folded, flattened, sorted.

    Idempotent, and evaluation-equivalent to the input on every table
    (predicates evaluate to full boolean masks; AND/OR are commutative
    and associative over masks, and duplicate conjuncts are absorbing).
    """
    return _normalize(_fold_predicate(predicate))


def predicate_conjuncts(predicate: Optional[Predicate]) -> Tuple[str, ...]:
    """The canonical conjunct set of ``predicate`` as sorted rendered text.

    ``None`` (no WHERE clause) and ``TruePredicate`` both canonicalize to
    the empty conjunct set.  The roll-up subsumption check compares these
    sets: an entry whose conjuncts are a subset of the probe's covers a
    superset of the probe's rows.
    """
    if predicate is None:
        return ()
    canonical = canonicalize_predicate(predicate)
    if isinstance(canonical, TruePredicate):
        return ()
    return tuple(render_predicate(part) for part in _split_and(canonical))


def predicate_fingerprint(predicate: Optional[Predicate]) -> str:
    """Stable digest of a predicate's canonical form ('' for no WHERE)."""
    conjuncts = predicate_conjuncts(predicate)
    if not conjuncts:
        return ""
    return _digest("\x1f".join(conjuncts))


# -- plan-level canonicalization ------------------------------------------


def canonicalize(plan: Plan) -> Tuple[Plan, str]:
    """Canonicalize a logical plan and fingerprint it.

    Folds constants (dropping always-true filters) and rewrites every
    Filter/Scan predicate into canonical form.  GroupBy keys and Project
    items are *not* reordered -- their order determines output row and
    column order, which is execution semantics, not spelling.

    Returns ``(canonical_plan, fingerprint)``.  Idempotent: running it on
    its own output returns an equal plan and the same fingerprint.
    """

    def fn(node: Plan) -> Plan:
        if isinstance(node, Filter):
            return replace(
                node, predicate=canonicalize_predicate(node.predicate)
            )
        if isinstance(node, Scan) and node.predicate is not None:
            return replace(
                node, predicate=canonicalize_predicate(node.predicate)
            )
        return node

    canonical = transform(fold_constants(plan), fn)
    return canonical, _digest(repr(canonical))


# -- query-level canonicalization -----------------------------------------


@dataclass(frozen=True)
class CanonicalQuery:
    """Canonical form of a :class:`~repro.engine.query.Query`.

    Attributes:
        query: the query with canonical predicates and folded select
            expressions.  Select order, aliases, GROUP BY order, and
            ORDER BY are preserved -- they affect output shape.
        fingerprint: alias-insensitive semantic digest.  Two queries that
            differ only in output aliases, predicate spelling, or GROUP BY
            column order share it.  Used by the answer cache, which
            reconciles aliases/row order on a hit.
        structural: alias-sensitive digest preserving GROUP BY order.
            Used where the cached value bakes in the output schema
            (plan cache, streaming cache).
        aliases: the query's output aliases in select order, recorded so
            a semantic cache hit can rename result columns.
    """

    query: Query
    fingerprint: str
    structural: str
    aliases: Tuple[str, ...]


def _canonical_select(
    select: Tuple[Union[Projection, Aggregate], ...]
) -> Tuple[Union[Projection, Aggregate], ...]:
    items: List[Union[Projection, Aggregate]] = []
    for item in select:
        if isinstance(item, Aggregate):
            items.append(
                Aggregate(item.func, _fold_expression(item.expr), item.alias)
            )
        else:
            items.append(Projection(_fold_expression(item.expr), item.alias))
    return tuple(items)


def canonicalize_query(query: Query) -> CanonicalQuery:
    """Canonicalize a query and compute both fingerprints."""
    where = (
        canonicalize_predicate(query.where)
        if query.where is not None
        else None
    )
    if isinstance(where, TruePredicate):
        where = None
    having = (
        canonicalize_predicate(query.having)
        if query.having is not None
        else None
    )
    from_item = query.from_item
    if isinstance(from_item, Query):
        from_item = canonicalize_query(from_item).query
    canonical = replace(
        query,
        select=_canonical_select(query.select),
        from_item=from_item,
        where=where,
        having=having,
    )
    return CanonicalQuery(
        query=canonical,
        fingerprint=_digest(_fingerprint_text(canonical, False)),
        structural=_digest(_fingerprint_text(canonical, True)),
        aliases=tuple(query.output_aliases()),
    )


def _fingerprint_text(query: Query, alias_sensitive: bool) -> str:
    # HAVING references output aliases and grouping columns through one
    # namespace, which makes positional alias substitution ambiguous --
    # fall back to the alias-sensitive spelling for those queries (they
    # simply get fewer semantic cache hits).
    if query.having is not None:
        alias_sensitive = True
    placeholders: Dict[str, str] = {}
    if not alias_sensitive:
        placeholders = {
            item.alias: f"${position}"
            for position, item in enumerate(query.select)
        }
    select_parts = []
    for position, item in enumerate(query.select):
        name = item.alias if alias_sensitive else f"${position}"
        if isinstance(item, Aggregate):
            select_parts.append(
                f"{item.func}({render_expression(item.expr)})->{name}"
            )
        else:
            select_parts.append(f"{render_expression(item.expr)}->{name}")
    if isinstance(query.from_item, Query):
        # A subquery's aliases are the outer query's column namespace:
        # renaming them changes outer semantics, so keep them.
        source = "(" + _fingerprint_text(query.from_item, True) + ")"
    else:
        source = query.from_item
    group = sorted(query.group_by) if not alias_sensitive else query.group_by
    parts = [
        "from=" + source,
        "select=" + "; ".join(select_parts),
        "where="
        + (render_predicate(query.where) if query.where is not None else ""),
        "group=" + ",".join(group),
        "having="
        + (
            render_predicate(query.having)
            if query.having is not None
            else ""
        ),
        "order="
        + ",".join(placeholders.get(name, name) for name in query.order_by),
        "limit=" + str(query.limit),
    ]
    return "\n".join(parts)
