"""The MAC (Match-And-Compare) error of [IP99], for contrast.

Section 3.2 of the paper: "The MAC error ... for quantifying the error in
set-valued query answers works by matching the closest pairs in the exact
and approximate answers and then suitably aggregating their differences.
However, it is inadequate for our purpose because it does not necessarily
match corresponding groups in the two answers."

We implement a standard greedy variant -- repeatedly match the closest
remaining (exact, approximate) value pair, penalize unmatched values by
their magnitude -- so the paper's criticism can be demonstrated
empirically: two answers with *swapped* group values score near-zero MAC
error while the group-matched metric correctly reports large errors (see
``tests/metrics/test_mac_error.py``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

import numpy as np

from ..engine.table import Table

__all__ = ["MacError", "mac_error", "mac_error_values"]


@dataclass(frozen=True)
class MacError:
    """MAC error summary: matched-pair distances + unmatched penalties."""

    matched_pairs: Tuple[Tuple[float, float], ...]
    unmatched_exact: Tuple[float, ...]
    unmatched_approx: Tuple[float, ...]

    @property
    def total(self) -> float:
        """Sum of matched |differences| and unmatched magnitudes."""
        matched = sum(abs(a - b) for a, b in self.matched_pairs)
        penalty = sum(abs(v) for v in self.unmatched_exact) + sum(
            abs(v) for v in self.unmatched_approx
        )
        return matched + penalty

    @property
    def mean(self) -> float:
        """Total divided by the number of exact values (0 if none)."""
        count = len(self.matched_pairs) + len(self.unmatched_exact)
        if count == 0:
            return 0.0
        return self.total / count


def mac_error_values(
    exact: Sequence[float], approx: Sequence[float]
) -> MacError:
    """Greedy closest-pair MAC error between two value multisets."""
    remaining_exact = sorted(float(v) for v in exact)
    remaining_approx = sorted(float(v) for v in approx)
    pairs: List[Tuple[float, float]] = []
    # Greedy: sorted sequences -> repeatedly take the globally closest pair,
    # which for sorted multisets is found among aligned candidates.  A full
    # optimal matching of sorted sequences pairs them in order when lengths
    # match; with unequal lengths we pair in order and leave the tail
    # unmatched from the longer side (minimizes total distance for sorted
    # inputs under the standard MAC formulation).
    matched = min(len(remaining_exact), len(remaining_approx))
    for i in range(matched):
        pairs.append((remaining_exact[i], remaining_approx[i]))
    return MacError(
        matched_pairs=tuple(pairs),
        unmatched_exact=tuple(remaining_exact[matched:]),
        unmatched_approx=tuple(remaining_approx[matched:]),
    )


def mac_error(
    exact: Table, approx: Table, value_column: str
) -> MacError:
    """MAC error between the value columns of two answer tables.

    Deliberately ignores the grouping keys -- that is the point: MAC
    matches *values*, not groups.
    """
    return mac_error_values(
        np.asarray(exact.column(value_column), dtype=np.float64).tolist(),
        np.asarray(approx.column(value_column), dtype=np.float64).tolist(),
    )
