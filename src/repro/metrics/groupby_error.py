"""Error metrics for group-by answers (Section 3.2, Definition 3.1).

Per-group error is the percentage relative error (Equation 1)::

    eps_i = |c_i - c'_i| / |c_i| * 100

and the query-level error is an L-norm over the groups:

* ``eps_inf`` -- worst group,
* ``eps_l1``  -- mean over groups,
* ``eps_l2``  -- root mean square over groups.

The paper's first user requirement -- every exact-answer group must appear
in the approximate answer -- is tracked via ``missing_groups``; by default a
missing group counts as 100% error (its estimate is effectively zero
knowledge), which is also how we score House's empty small groups.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

import numpy as np

from ..engine.table import Table
from ..sampling.groups import GroupKey, make_key

__all__ = ["GroupByError", "relative_error_pct", "groupby_error", "mean_errors"]

MISSING_GROUP_ERROR_PCT = 100.0


def relative_error_pct(exact: float, approx: float) -> float:
    """Equation 1.  An exact value of 0 yields 0% iff approx is 0, else inf."""
    if exact == 0:
        return 0.0 if approx == 0 else float("inf")
    return abs(exact - approx) / abs(exact) * 100.0


@dataclass(frozen=True)
class GroupByError:
    """Error summary for one group-by query answer."""

    per_group: Dict[GroupKey, float]
    missing_groups: Tuple[GroupKey, ...]
    extra_groups: Tuple[GroupKey, ...]

    @property
    def num_groups(self) -> int:
        return len(self.per_group)

    def _values(self) -> np.ndarray:
        return np.array(list(self.per_group.values()), dtype=np.float64)

    @property
    def eps_inf(self) -> float:
        """Definition 3.1: worst-group error."""
        values = self._values()
        return float(values.max()) if len(values) else 0.0

    @property
    def eps_l1(self) -> float:
        """Definition 3.1: mean group error."""
        values = self._values()
        return float(values.mean()) if len(values) else 0.0

    @property
    def eps_l2(self) -> float:
        """Definition 3.1: RMS group error."""
        values = self._values()
        return float(np.sqrt(np.mean(values ** 2))) if len(values) else 0.0

    @property
    def coverage(self) -> float:
        """Fraction of exact-answer groups present in the approximation."""
        total = len(self.per_group)
        if total == 0:
            return 1.0
        return 1.0 - len(self.missing_groups) / total


def _answers_by_key(
    table: Table, key_columns: Sequence[str], value_column: str
) -> Dict[GroupKey, float]:
    keys = [table.column(name) for name in key_columns]
    values = table.column(value_column)
    out: Dict[GroupKey, float] = {}
    for i in range(table.num_rows):
        key = make_key(tuple(arr[i] for arr in keys))
        out[key] = float(values[i])
    return out


def groupby_error(
    exact: Table,
    approx: Table,
    key_columns: Sequence[str],
    value_column: str,
    missing_error_pct: float = MISSING_GROUP_ERROR_PCT,
) -> GroupByError:
    """Match groups between exact and approximate answers and score them.

    Unlike the MAC error the paper rejects, groups are matched by *key
    equality*, so errors are attributed to the right group.  Groups present
    only in the exact answer score ``missing_error_pct``; groups present
    only in the approximation are reported but not scored (they don't exist
    in the exact answer, which the paper's metrics don't penalize).
    """
    exact_by_key = _answers_by_key(exact, key_columns, value_column)
    approx_by_key = _answers_by_key(approx, key_columns, value_column)

    per_group: Dict[GroupKey, float] = {}
    missing: List[GroupKey] = []
    for key, exact_value in exact_by_key.items():
        if key in approx_by_key:
            per_group[key] = relative_error_pct(exact_value, approx_by_key[key])
        else:
            per_group[key] = missing_error_pct
            missing.append(key)
    extra = tuple(k for k in approx_by_key if k not in exact_by_key)
    return GroupByError(
        per_group=per_group,
        missing_groups=tuple(missing),
        extra_groups=extra,
    )


def mean_errors(errors: Sequence[GroupByError]) -> Dict[str, float]:
    """Average the three norms over a set of queries (the ``Q_g0`` set)."""
    if not errors:
        return {"eps_inf": 0.0, "eps_l1": 0.0, "eps_l2": 0.0}
    return {
        "eps_inf": float(np.mean([e.eps_inf for e in errors])),
        "eps_l1": float(np.mean([e.eps_l1 for e in errors])),
        "eps_l2": float(np.mean([e.eps_l2 for e in errors])),
    }
