"""Group-by answer quality metrics (Definition 3.1)."""

from .mac_error import MacError, mac_error, mac_error_values
from .groupby_error import (
    GroupByError,
    MISSING_GROUP_ERROR_PCT,
    groupby_error,
    mean_errors,
    relative_error_pct,
)

__all__ = [
    "GroupByError",
    "MacError",
    "mac_error",
    "mac_error_values",
    "MISSING_GROUP_ERROR_PCT",
    "groupby_error",
    "mean_errors",
    "relative_error_pct",
]
