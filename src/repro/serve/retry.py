"""Retry with jittered exponential backoff for transient serving faults.

Only errors the policy declares *retryable* (by default the
:class:`~repro.errors.TransientError` family -- what the deterministic
fault injector's error bursts raise) are retried; everything else
propagates immediately.  Backoff is exponential with full jitter
(AWS-style: ``uniform(0, min(cap, base * mult**attempt))``), and sleeps
are deadline-aware -- the policy never sleeps past the ambient deadline's
remaining budget, and gives up with the last error once the budget is
gone.

Determinism for tests: the jitter source (``random.Random``) and the
sleep function are both injectable, so tests assert exact backoff
sequences without waiting on wall time.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass, field
from typing import Callable, Optional, Tuple, Type, TypeVar

from ..errors import TransientError
from .deadline import Deadline

__all__ = ["RetryPolicy", "RetryOutcome"]

T = TypeVar("T")


@dataclass(frozen=True)
class RetryPolicy:
    """How many times to retry transient faults, and how long to wait.

    Attributes:
        max_attempts: total attempts including the first (1 = no retries).
        base_delay: backoff scale for the first retry, in seconds.
        multiplier: exponential growth factor per retry.
        max_delay: cap on any single backoff sleep.
        jitter: 0 disables jitter (sleep exactly the exponential delay);
            1 draws the sleep uniformly from ``[0, delay]`` (full jitter).
        retryable: exception classes worth retrying.
    """

    max_attempts: int = 3
    base_delay: float = 0.02
    multiplier: float = 2.0
    max_delay: float = 0.5
    jitter: float = 1.0
    retryable: Tuple[Type[BaseException], ...] = (TransientError,)

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError(
                f"max_attempts must be >= 1, got {self.max_attempts}"
            )
        if self.base_delay < 0 or self.max_delay < 0:
            raise ValueError("delays must be >= 0")
        if self.multiplier < 1.0:
            raise ValueError(f"multiplier must be >= 1, got {self.multiplier}")
        if not 0.0 <= self.jitter <= 1.0:
            raise ValueError(f"jitter must be in [0, 1], got {self.jitter}")

    def delay(self, retry_index: int, rng: Optional[random.Random] = None) -> float:
        """The backoff before retry ``retry_index`` (0-based), with jitter."""
        raw = min(
            self.max_delay, self.base_delay * self.multiplier**retry_index
        )
        if self.jitter == 0.0 or raw == 0.0:
            return raw
        rng = rng if rng is not None else random
        # Full jitter scaled by the jitter fraction: jitter=1 draws from
        # [0, raw]; jitter=0.5 from [raw/2, raw].
        floor = raw * (1.0 - self.jitter)
        return floor + rng.uniform(0.0, raw - floor)

    def call(
        self,
        fn: Callable[[], T],
        *,
        deadline: Optional[Deadline] = None,
        sleep: Callable[[float], None] = time.sleep,
        rng: Optional[random.Random] = None,
        on_retry: Optional[Callable[[int, BaseException], None]] = None,
    ) -> T:
        """Run ``fn`` with retries; returns its result or raises the last error.

        ``on_retry(retry_index, error)`` fires before each backoff sleep
        (the service counts retries through it).  With a ``deadline``, a
        sleep is clamped to the remaining budget and an exhausted budget
        re-raises the last transient error rather than burning attempts a
        caller can no longer use.
        """
        last: Optional[BaseException] = None
        for attempt in range(self.max_attempts):
            try:
                return fn()
            except self.retryable as exc:  # type: ignore[misc]
                last = exc
                if attempt == self.max_attempts - 1:
                    raise
                if on_retry is not None:
                    on_retry(attempt, exc)
                pause = self.delay(attempt, rng=rng)
                if deadline is not None:
                    remaining = deadline.remaining
                    if remaining <= 0:
                        raise
                    pause = min(pause, remaining)
                if pause > 0:
                    sleep(pause)
        raise last if last is not None else RuntimeError("unreachable")


@dataclass
class RetryOutcome:
    """Bookkeeping for one retried call (used by the service's stats)."""

    attempts: int = 1
    retried_errors: list = field(default_factory=list)
