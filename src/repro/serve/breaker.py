"""Per-table circuit breaker driving graceful degradation.

Unlike the textbook breaker that *rejects* while open, this one feeds the
service's degradation ladder: an open circuit means "stop exercising the
expensive escalation machinery for this table" -- serve the raw synopsis
answer (or a cheaper fallback synopsis) instead of hammering base-table
repairs and exact fallbacks that are evidently failing or overloaded.

Two signals trip it:

* **failures** -- typed errors out of the answer pipeline (corrupt
  synopsis, deadline blown mid-scan, ...); ``failure_threshold``
  consecutive failures open the circuit;
* **guard escalations** -- answers that *succeeded* but only by repairing
  groups or falling back to exact.  Each one costs a base-table scan, so
  ``escalation_threshold`` consecutive escalations also open the circuit:
  under pressure it is better to serve honest synopsis-only answers than
  to let every query pay for exactness.

After ``cooldown_seconds`` the breaker goes **half-open** and lets
``half_open_probes`` requests run the full ladder; a clean success closes
it, any failure re-opens.  The clock is injectable, so tests step through
the state machine with a :class:`~repro.serve.deadline.ManualClock`.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass
from typing import Callable, Optional

__all__ = ["BreakerConfig", "CircuitBreaker", "CLOSED", "OPEN", "HALF_OPEN"]

Clock = Callable[[], float]

CLOSED = "closed"
OPEN = "open"
HALF_OPEN = "half_open"


@dataclass(frozen=True)
class BreakerConfig:
    """Thresholds for one per-table circuit breaker.

    Attributes:
        failure_threshold: consecutive pipeline failures that open the
            circuit (0 disables the failure signal).
        escalation_threshold: consecutive guard escalations (repaired or
            exact-fallback answers) that open the circuit (0 disables).
        cooldown_seconds: how long an open circuit waits before probing.
        half_open_probes: full-ladder probe requests allowed while
            half-open; the first failed probe re-opens, a success closes.
    """

    failure_threshold: int = 5
    escalation_threshold: int = 3
    cooldown_seconds: float = 30.0
    half_open_probes: int = 1

    def __post_init__(self) -> None:
        if self.failure_threshold < 0:
            raise ValueError(
                f"failure_threshold must be >= 0, got {self.failure_threshold}"
            )
        if self.escalation_threshold < 0:
            raise ValueError(
                "escalation_threshold must be >= 0, "
                f"got {self.escalation_threshold}"
            )
        if self.cooldown_seconds < 0:
            raise ValueError(
                f"cooldown_seconds must be >= 0, got {self.cooldown_seconds}"
            )
        if self.half_open_probes < 1:
            raise ValueError(
                f"half_open_probes must be >= 1, got {self.half_open_probes}"
            )


class CircuitBreaker:
    """Thread-safe three-state breaker for one table."""

    def __init__(
        self,
        config: Optional[BreakerConfig] = None,
        clock: Optional[Clock] = None,
    ):
        self.config = config if config is not None else BreakerConfig()
        self._clock: Clock = clock if clock is not None else time.monotonic
        self._lock = threading.Lock()
        self._state = CLOSED
        self._failures = 0
        self._escalations = 0
        self._opened_at = 0.0
        self._probes_in_flight = 0
        self._open_reason = ""
        self.transitions = 0

    # -- state ---------------------------------------------------------------

    @property
    def state(self) -> str:
        """Current state, applying the cooldown transition lazily."""
        with self._lock:
            return self._state_locked()

    @property
    def open_reason(self) -> str:
        """Why the circuit last opened (empty while closed)."""
        with self._lock:
            return self._open_reason if self._state != CLOSED else ""

    def _state_locked(self) -> str:
        if (
            self._state == OPEN
            and self._clock() - self._opened_at >= self.config.cooldown_seconds
        ):
            self._state = HALF_OPEN
            self._probes_in_flight = 0
            self.transitions += 1
        return self._state

    def _open_locked(self, reason: str) -> None:
        self._state = OPEN
        self._opened_at = self._clock()
        self._failures = 0
        self._escalations = 0
        self._probes_in_flight = 0
        self._open_reason = reason
        self.transitions += 1

    # -- request-time decision ----------------------------------------------

    def allow_full_service(self) -> bool:
        """Should this request run the full guard ladder?

        True while closed; while half-open, true for up to
        ``half_open_probes`` concurrent probes (the caller must report the
        probe's outcome); false while open -- the caller should degrade.
        """
        with self._lock:
            state = self._state_locked()
            if state == CLOSED:
                return True
            if state == HALF_OPEN:
                if self._probes_in_flight < self.config.half_open_probes:
                    self._probes_in_flight += 1
                    return True
                return False
            return False

    # -- outcome reporting ---------------------------------------------------

    def record_success(self) -> None:
        """A full-service answer came back clean (pure synopsis answer)."""
        with self._lock:
            state = self._state_locked()
            if state == HALF_OPEN:
                self._state = CLOSED
                self._open_reason = ""
                self.transitions += 1
            self._failures = 0
            self._escalations = 0

    def record_escalation(self) -> None:
        """A full-service answer needed guard repair or exact fallback."""
        with self._lock:
            state = self._state_locked()
            threshold = self.config.escalation_threshold
            if state == HALF_OPEN:
                # A probe that still escalates has not recovered.
                self._open_locked("probe escalated to base-table work")
                return
            self._escalations += 1
            self._failures = 0
            if threshold and self._escalations >= threshold:
                self._open_locked(
                    f"{self._escalations} consecutive guard escalations"
                )

    def record_failure(self) -> None:
        """A full-service answer raised out of the pipeline."""
        with self._lock:
            state = self._state_locked()
            if state == HALF_OPEN:
                self._open_locked("probe failed")
                return
            threshold = self.config.failure_threshold
            self._failures += 1
            self._escalations = 0
            if threshold and self._failures >= threshold:
                self._open_locked(f"{self._failures} consecutive failures")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"CircuitBreaker({self.state})"
