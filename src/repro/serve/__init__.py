"""Concurrent serving layer for :class:`~repro.aqua.system.AquaSystem`.

The robustness seam between "a correct approximate-answering library" and
"a service thousands of clients can hit at once":

* :mod:`~repro.serve.deadline` -- per-query deadlines with cooperative,
  stage-aware cancellation (plus the :class:`ManualClock` the whole layer
  uses for deterministic tests);
* :mod:`~repro.serve.limiter` -- per-tenant token buckets;
* :mod:`~repro.serve.breaker` -- per-table circuit breakers that trigger
  degradation, not rejection;
* :mod:`~repro.serve.retry` -- jittered exponential backoff for transient
  faults;
* :mod:`~repro.serve.service` -- :class:`QueryService`, the admission-
  controlled worker pool tying it together;
* :mod:`~repro.serve.http` -- a stdlib HTTP front-end over the service.

``deadline`` is deliberately import-light (stdlib + the error taxonomy):
the plan executor and parallel scanner import it on their hot paths.  The
service/http layers, which import the full Aqua stack, are loaded lazily
(PEP 562) so ``repro.plan -> repro.serve.deadline`` never drags the
serving stack -- or a circular ``repro.aqua`` import -- into every query.
"""

from .breaker import CLOSED, HALF_OPEN, OPEN, BreakerConfig, CircuitBreaker
from .deadline import (
    Deadline,
    ManualClock,
    check_deadline,
    current_deadline,
    deadline_scope,
)
from .limiter import TenantRateLimiter, TokenBucket
from .retry import RetryPolicy

__all__ = [
    "BreakerConfig",
    "CircuitBreaker",
    "CLOSED",
    "HALF_OPEN",
    "OPEN",
    "Deadline",
    "ManualClock",
    "check_deadline",
    "current_deadline",
    "deadline_scope",
    "TenantRateLimiter",
    "TokenBucket",
    "RetryPolicy",
    # lazily loaded (see __getattr__):
    "DEFAULT_TENANT",
    "QueryService",
    "ServeResult",
    "ServiceConfig",
    "ServiceStats",
    "ServingHTTPServer",
    "serve_http",
]

_LAZY = {
    "DEFAULT_TENANT": "service",
    "QueryService": "service",
    "ServeResult": "service",
    "ServiceConfig": "service",
    "ServiceStats": "service",
    "ServingHTTPServer": "http",
    "serve_http": "http",
}


def __getattr__(name: str):
    module_name = _LAZY.get(name)
    if module_name is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    from importlib import import_module

    return getattr(import_module(f".{module_name}", __name__), name)


def __dir__():
    return sorted(__all__)
