"""Run a demo serving endpoint over the synthetic census warehouse.

Usage::

    python -m repro.serve                     # 127.0.0.1:8080, census data
    python -m repro.serve --port 9000 --workers 8 --deadline 2.0

Then::

    curl -s localhost:8080/query -d '{"sql": "SELECT state, SUM(income) AS s
        FROM census GROUP BY state"}'
    curl -s localhost:8080/stats
    curl -s localhost:8080/metrics
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from ..aqua.system import AquaSystem
from ..synthetic.census import CensusConfig, generate_census
from .http import serve_http
from .service import QueryService, ServiceConfig


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.serve",
        description="Serve approximate answers over HTTP (demo warehouse).",
    )
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=8080)
    parser.add_argument(
        "--budget", type=int, default=5000, help="sample tuples to keep"
    )
    parser.add_argument(
        "--population", type=int, default=100_000,
        help="synthetic census rows to generate",
    )
    parser.add_argument(
        "--workers", type=int, default=4, help="service worker threads"
    )
    parser.add_argument(
        "--queue-depth", type=int, default=16,
        help="admission queue slots beyond the workers",
    )
    parser.add_argument(
        "--deadline", type=float, default=None,
        help="default per-query deadline in seconds",
    )
    parser.add_argument(
        "--tenant-rate", type=float, default=None,
        help="per-tenant rate limit in queries/second (default: unlimited)",
    )
    args = parser.parse_args(argv)

    system = AquaSystem(space_budget=args.budget, telemetry=True)
    census = generate_census(
        CensusConfig(population=args.population, seed=1)
    )
    system.register_table("census", census)
    service = QueryService(
        system,
        ServiceConfig(
            workers=args.workers,
            queue_depth=args.queue_depth,
            default_deadline_seconds=args.deadline,
            tenant_rate=args.tenant_rate,
        ),
    )
    server = serve_http(service, host=args.host, port=args.port)
    print(f"serving census warehouse on {server.url} (Ctrl-C to stop)")
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        server.shutdown()
        server.server_close()
        service.close()
    return 0


if __name__ == "__main__":
    sys.exit(main())
