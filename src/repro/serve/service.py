"""The concurrent query service fronting :class:`AquaSystem`.

:class:`QueryService` is the "millions of users" seam from the ROADMAP: a
bounded worker pool behind an explicit admission queue, per-tenant token
buckets, per-query deadlines, retry-with-jittered-backoff for transient
faults, and a per-table circuit breaker that degrades gracefully under
pressure instead of queueing without bound.  It is transport-agnostic --
:meth:`QueryService.query` is the in-process client the tests and shell
use, and :mod:`repro.serve.http` exposes the same service over HTTP.

The request lifecycle::

    submit ──rate limit──▶ admission queue ──worker──▶ answer
       │429 RateLimitExceeded   │429 OverloadError        │
       ▼                        ▼                         ▼
    rejected                 rejected            retry → breaker → degrade

Degradation ladder (cheapest honest answer under duress):

1. **full service** -- the normal guard ladder (synopsis → per-group
   repair → exact fallback);
2. **degraded** -- triggered by a deep queue (*load shedding*) or an open
   per-table circuit breaker: the query is answered from the cheapest
   available synopsis (a configured lower-budget ``degraded_system`` if
   one is attached, else the primary synopsis served unguarded, skipping
   base-table repair and exact fallback entirely); every answer group is
   tagged with ``degraded`` provenance so the caller knows exactly what it
   got;
3. **rejection** -- admission control refuses new work outright rather
   than letting queue delay masquerade as query latency.

Every decision is recorded in ``serve_*`` metrics and (when the tracer is
enabled) a ``serve_request`` span wrapping the answer pipeline's spans.
"""

from __future__ import annotations

import random
import threading
import time
from concurrent.futures import Future, ThreadPoolExecutor
from dataclasses import dataclass, replace as dataclass_replace
from typing import Callable, Dict, Optional, Tuple, Union

from ..aqua.guard import PROVENANCE_DEGRADED, GuardPolicy
from ..aqua.system import ApproximateAnswer, AquaSystem
from ..engine.query import Query, QueryError
from ..engine.schema import Column, ColumnType
from ..engine.sql import SqlError, parse_query
from ..engine.table import Table
from ..errors import (
    AquaError,
    CircuitOpenError,
    DeadlineExceeded,
    OverloadError,
    RateLimitExceeded,
    ServeError,
    StreamError,
    SynopsisMissingError,
    TableNotRegisteredError,
)
from .breaker import BreakerConfig, CircuitBreaker, CLOSED, HALF_OPEN, OPEN
from .deadline import Deadline, deadline_scope
from .limiter import TenantRateLimiter
from .retry import RetryPolicy

__all__ = [
    "DEFAULT_TENANT",
    "QueryService",
    "ServeResult",
    "ServiceConfig",
    "ServiceStats",
]

DEFAULT_TENANT = "default"

#: Breaker states to gauge values for ``serve_breaker_state``.
_BREAKER_GAUGE = {CLOSED: 0.0, HALF_OPEN: 0.5, OPEN: 1.0}

#: Outcomes a request can end in (the ``outcome`` label of
#: ``serve_requests_total``).
OUTCOME_OK = "ok"
OUTCOME_ESCALATED = "escalated"  # served, but guard repaired / fell back
OUTCOME_DEGRADED = "degraded"
OUTCOME_DEADLINE = "deadline"
OUTCOME_ERROR = "error"
OUTCOME_INVALID = "invalid"  # client error: bad SQL / unknown table
OUTCOME_REJECTED_OVERLOAD = "rejected_overload"
OUTCOME_REJECTED_RATE_LIMIT = "rejected_rate_limit"
OUTCOME_BREAKER_OPEN = "breaker_open"


@dataclass(frozen=True)
class ServiceConfig:
    """Sizing and policy knobs for one :class:`QueryService`.

    Attributes:
        workers: worker threads executing answers concurrently.
        queue_depth: admitted-but-waiting requests beyond the in-flight
            ones; total admission capacity is ``workers + queue_depth``.
        admission_timeout_seconds: how long ``submit`` may block waiting
            for a free slot before rejecting with
            :class:`~repro.errors.OverloadError` (0 = reject immediately).
        default_deadline_seconds: deadline applied to requests that do not
            bring their own (None = unbounded).
        tenant_rate: default token-bucket refill rate per tenant in
            queries/second (None disables rate limiting).
        tenant_burst: default token-bucket capacity per tenant.
        degrade_queue_fraction: when the admission queue is at least this
            full at admission time, the request is served degraded (load
            shedding); None never sheds.
        degrade_on_breaker: serve degraded answers while a table's breaker
            is open; when False, raise
            :class:`~repro.errors.CircuitOpenError` instead.
    """

    workers: int = 4
    queue_depth: int = 16
    admission_timeout_seconds: float = 0.0
    default_deadline_seconds: Optional[float] = None
    tenant_rate: Optional[float] = None
    tenant_burst: float = 10.0
    degrade_queue_fraction: Optional[float] = 0.75
    degrade_on_breaker: bool = True

    def __post_init__(self) -> None:
        if self.workers < 1:
            raise ValueError(f"workers must be >= 1, got {self.workers}")
        if self.queue_depth < 0:
            raise ValueError(
                f"queue_depth must be >= 0, got {self.queue_depth}"
            )
        if self.admission_timeout_seconds < 0:
            raise ValueError(
                "admission_timeout_seconds must be >= 0, "
                f"got {self.admission_timeout_seconds}"
            )
        if (
            self.default_deadline_seconds is not None
            and self.default_deadline_seconds <= 0
        ):
            raise ValueError(
                "default_deadline_seconds must be > 0 or None, "
                f"got {self.default_deadline_seconds}"
            )
        if self.tenant_rate is not None and self.tenant_rate < 0:
            raise ValueError(
                f"tenant_rate must be >= 0 or None, got {self.tenant_rate}"
            )
        if self.degrade_queue_fraction is not None and not (
            0.0 < self.degrade_queue_fraction <= 1.0
        ):
            raise ValueError(
                "degrade_queue_fraction must be in (0, 1] or None, "
                f"got {self.degrade_queue_fraction}"
            )

    @property
    def capacity(self) -> int:
        """Total admission capacity (in-flight plus queued)."""
        return self.workers + self.queue_depth


@dataclass
class ServeResult:
    """One served answer plus the service's view of how it was produced.

    Attributes:
        answer: the underlying :class:`ApproximateAnswer`.
        tenant: who asked.
        degraded: True when the degradation ladder served this answer; the
            result table's provenance column is then ``degraded`` for
            every group.
        degradation: why (``"load_shed"`` / ``"breaker_open"``), or None.
        attempts: answer attempts including retries.
        queued_seconds: time spent waiting for a worker.
        served_seconds: worker time (retries included).
        budget_satisfied: ``None`` when the request carried no budget;
            otherwise whether the served answer honored it.  A degraded
            answer under a ``max_rel_error`` budget is *always* ``False``
            -- degradation strips the accuracy promise, and it must never
            satisfy an error budget silently.
    """

    answer: ApproximateAnswer
    tenant: str = DEFAULT_TENANT
    degraded: bool = False
    degradation: Optional[str] = None
    attempts: int = 1
    queued_seconds: float = 0.0
    served_seconds: float = 0.0
    budget_satisfied: Optional[bool] = None

    @property
    def result(self) -> Table:
        return self.answer.result


@dataclass(frozen=True)
class ServiceStats:
    """A point-in-time snapshot of the service's counters."""

    workers: int
    capacity: int
    pending: int
    admitted: int
    rejected_overload: int
    rejected_rate_limit: int
    retries: int
    outcomes: Dict[str, int]
    breakers: Dict[str, str]
    tenants: Dict[str, float]

    @property
    def completed(self) -> int:
        return sum(self.outcomes.values())

    @property
    def degraded(self) -> int:
        return self.outcomes.get(OUTCOME_DEGRADED, 0)

    @property
    def rejected(self) -> int:
        return self.rejected_overload + self.rejected_rate_limit

    def describe(self) -> str:
        lines = [
            f"serving: {self.pending} in flight / capacity {self.capacity} "
            f"({self.workers} workers)",
            f"admitted {self.admitted}, rejected {self.rejected} "
            f"(overload {self.rejected_overload}, "
            f"rate-limit {self.rejected_rate_limit}), retries {self.retries}",
        ]
        if self.outcomes:
            rendered = ", ".join(
                f"{outcome} {count}"
                for outcome, count in sorted(self.outcomes.items())
            )
            lines.append(f"outcomes: {rendered}")
        for table, state in sorted(self.breakers.items()):
            lines.append(f"breaker[{table}]: {state}")
        for tenant, tokens in sorted(self.tenants.items()):
            lines.append(f"tenant[{tenant}]: {tokens:.1f} tokens")
        return "\n".join(lines)


@dataclass
class _Request:
    sql: Union[str, Query]
    tenant: str
    deadline: Optional[Deadline]
    enqueued: float
    load_shed: bool = False
    max_rel_error: Optional[float] = None
    max_ms: Optional[float] = None


class QueryService:
    """Admission-controlled, deadline-aware concurrent serving layer."""

    def __init__(
        self,
        system: AquaSystem,
        config: Optional[ServiceConfig] = None,
        *,
        retry: Optional[RetryPolicy] = None,
        breaker: Optional[BreakerConfig] = None,
        degraded_policy: Union[GuardPolicy, bool, None] = False,
        degraded_system: Optional[AquaSystem] = None,
        tenant_overrides: Optional[Dict[str, Tuple[float, float]]] = None,
        clock: Optional[Callable[[], float]] = None,
        sleep: Callable[[float], None] = time.sleep,
        rng: Optional[random.Random] = None,
    ):
        """Args:
        system: the primary :class:`AquaSystem` answers come from.
        config: sizing/policy knobs (defaults: 4 workers, queue of 16).
        retry: backoff policy for transient faults (default: 3 attempts).
        breaker: per-table circuit-breaker thresholds.
        degraded_policy: the guard setting used for degraded answers on
            the primary system -- ``False`` (default) serves the raw
            synopsis answer unguarded, i.e. no base-table repair or
            exact fallback; a :class:`GuardPolicy` customizes.
        degraded_system: optional cheaper system (e.g. a lower-budget /
            lower-SP synopsis over the same tables) that degraded
            requests are routed to instead.
        tenant_overrides: per-tenant ``(rate, burst)`` rate-limit
            overrides.
        clock: injectable monotonic clock shared by deadlines, buckets,
            and breakers (tests pass a
            :class:`~repro.serve.deadline.ManualClock`).
        sleep: injectable sleep for retry backoff.
        rng: injectable jitter source for retry backoff.
        """
        self.system = system
        self.config = config if config is not None else ServiceConfig()
        self._retry = retry if retry is not None else RetryPolicy()
        self._breaker_config = breaker if breaker is not None else BreakerConfig()
        self._degraded_policy = degraded_policy
        self._degraded_system = degraded_system
        self._clock = clock if clock is not None else time.monotonic
        self._sleep = sleep
        self._rng = rng if rng is not None else random.Random()
        self._limiter = TenantRateLimiter(
            self.config.tenant_rate,
            self.config.tenant_burst,
            overrides=tenant_overrides,
            clock=self._clock,
        )
        self._breakers: Dict[str, CircuitBreaker] = {}
        self._breakers_lock = threading.Lock()
        # Admission slots: _pending counts admitted-but-unfinished requests
        # under _slots; waiters block on it up to the admission timeout.
        self._slots = threading.Condition()
        self._pending = 0
        self._stats_lock = threading.Lock()
        self._admitted = 0
        self._rejected_overload = 0
        self._rejected_rate_limit = 0
        self._retries = 0
        self._outcomes: Dict[str, int] = {}
        self._closed = False
        self._pool = ThreadPoolExecutor(
            max_workers=self.config.workers, thread_name_prefix="aqua-serve"
        )

    # -- lifecycle -----------------------------------------------------------

    def close(self, wait: bool = True) -> None:
        """Stop admitting and (by default) wait for in-flight work."""
        self._closed = True
        self._pool.shutdown(wait=wait)

    def __enter__(self) -> "QueryService":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    # -- the client API ------------------------------------------------------

    def submit(
        self,
        sql: Union[str, Query],
        *,
        tenant: str = DEFAULT_TENANT,
        deadline: Union[Deadline, float, None] = None,
        max_rel_error: Optional[float] = None,
        max_ms: Optional[float] = None,
    ) -> "Future[ServeResult]":
        """Admit a query and return a future for its :class:`ServeResult`.

        Raises *at submission time* -- the 429 path -- when the tenant's
        token bucket is empty (:class:`RateLimitExceeded`) or no admission
        slot frees up within the admission timeout
        (:class:`OverloadError`).  Execution-time failures (deadline,
        pipeline errors) surface through the returned future.

        ``max_rel_error`` / ``max_ms`` are per-query budgets resolved
        against the table's synopsis portfolio (see
        :meth:`AquaSystem.build_portfolio`); the result's
        ``budget_satisfied`` reports whether the served answer honored
        them.  Degraded answers never satisfy a ``max_rel_error`` budget.
        """
        if self._closed:
            raise ServeError("query service is shut down")
        try:
            self._limiter.admit(tenant)
        except RateLimitExceeded:
            self._note_rejected(OUTCOME_REJECTED_RATE_LIMIT, tenant)
            raise
        admitted_depth = self._acquire_slot()
        if admitted_depth is None:
            self._note_rejected(OUTCOME_REJECTED_OVERLOAD, tenant)
            raise OverloadError(
                f"admission queue is full ({self.config.capacity} slots: "
                f"{self.config.workers} workers + "
                f"{self.config.queue_depth} queued); query rejected after "
                f"{self.config.admission_timeout_seconds:.3f}s",
                retry_after_seconds=max(
                    self.config.admission_timeout_seconds, 0.05
                ),
            )
        shed_at = self.config.degrade_queue_fraction
        request = _Request(
            sql=sql,
            tenant=tenant,
            deadline=self._resolve_deadline(deadline),
            enqueued=self._clock(),
            load_shed=(
                shed_at is not None
                and admitted_depth >= shed_at * self.config.capacity
            ),
            max_rel_error=max_rel_error,
            max_ms=max_ms,
        )
        self._note_admitted(admitted_depth)
        try:
            future = self._pool.submit(self._run, request)
        except RuntimeError:
            self._release_slot()
            raise ServeError("query service is shut down") from None
        future.add_done_callback(lambda _f: self._release_slot())
        return future

    def query(
        self,
        sql: Union[str, Query],
        *,
        tenant: str = DEFAULT_TENANT,
        deadline: Union[Deadline, float, None] = None,
        max_rel_error: Optional[float] = None,
        max_ms: Optional[float] = None,
    ) -> ServeResult:
        """Blocking convenience wrapper: submit and wait for the answer."""
        return self.submit(
            sql,
            tenant=tenant,
            deadline=deadline,
            max_rel_error=max_rel_error,
            max_ms=max_ms,
        ).result()

    def stream(
        self,
        sql: Union[str, Query],
        *,
        tenant: str = DEFAULT_TENANT,
        deadline: Union[Deadline, float, None] = None,
        chunk_rows: int = 1024,
        until_rel_error: Optional[float] = None,
    ):
        """Serve a query progressively: a generator of ``StreamingAnswer``s.

        Admission mirrors :meth:`submit` -- rate limiting, one admission
        slot (held for the whole stream, released when the generator
        closes), and the same 429 rejections -- but streams never degrade:
        they are *already* the progressive answer, so a deep queue or an
        open circuit breaker refuses new streams outright with
        :class:`~repro.errors.OverloadError` instead of shedding quality.
        The stream runs on the consumer's thread (each ``next()`` computes
        one chunk), so a slow consumer costs itself, not a pool worker.

        A deadline expiring mid-stream ends the stream with the last
        complete answer re-emitted under ``partial`` provenance (see
        :meth:`AquaSystem.sql_stream`); the breaker records that as a
        success -- the contract was honored, only the budget ran out.
        """
        if self._closed:
            raise ServeError("query service is shut down")
        try:
            self._limiter.admit(tenant)
        except RateLimitExceeded:
            self._note_rejected(OUTCOME_REJECTED_RATE_LIMIT, tenant)
            raise
        query = parse_query(sql) if isinstance(sql, str) else sql
        table = query.base_table_name()
        breaker = self.breaker(table)
        if not breaker.allow_full_service():
            self._note_rejected(OUTCOME_REJECTED_OVERLOAD, tenant)
            raise OverloadError(
                f"circuit breaker for table {table!r} is open "
                f"({breaker.open_reason}); streams have no degraded mode, "
                "retry shortly",
                retry_after_seconds=0.05,
            )
        admitted_depth = self._acquire_slot()
        if admitted_depth is None:
            self._note_rejected(OUTCOME_REJECTED_OVERLOAD, tenant)
            raise OverloadError(
                f"admission queue is full ({self.config.capacity} slots); "
                "stream rejected",
                retry_after_seconds=max(
                    self.config.admission_timeout_seconds, 0.05
                ),
            )
        shed_at = self.config.degrade_queue_fraction
        if (
            shed_at is not None
            and admitted_depth >= shed_at * self.config.capacity
        ):
            self._release_slot()
            self._note_rejected(OUTCOME_REJECTED_OVERLOAD, tenant)
            raise OverloadError(
                f"admission queue is {admitted_depth}/{self.config.capacity} "
                "deep; new streams are shed under load",
                retry_after_seconds=max(
                    self.config.admission_timeout_seconds, 0.05
                ),
            )
        self._note_admitted(admitted_depth)
        return self._stream(
            query,
            tenant=tenant,
            table=table,
            breaker=breaker,
            deadline=self._resolve_deadline(deadline),
            chunk_rows=chunk_rows,
            until_rel_error=until_rel_error,
        )

    def _stream(
        self,
        query: Query,
        *,
        tenant: str,
        table: str,
        breaker: CircuitBreaker,
        deadline: Optional[Deadline],
        chunk_rows: int,
        until_rel_error: Optional[float],
    ):
        """The post-admission generator half of :meth:`stream`.

        Split out so admission errors raise at call time (before the first
        ``next()``), the way :meth:`submit` raises its 429s eagerly.
        """
        start = self._clock()
        outcome = OUTCOME_OK
        stage: Optional[str] = None
        try:
            answers = self.system.sql_stream(
                query,
                chunk_rows=chunk_rows,
                until_rel_error=until_rel_error,
                deadline=deadline,
            )
            last = None
            for answer in answers:
                last = answer
                yield answer
            if last is not None and last.provenance == "partial":
                outcome = OUTCOME_DEADLINE
                stage = "stream_chunk"
            breaker.record_success()
        except DeadlineExceeded as exc:
            # Expired before the first complete answer: nothing to re-emit.
            outcome, stage = OUTCOME_DEADLINE, exc.stage
            breaker.record_success()
            raise
        except (SqlError, QueryError, StreamError, TableNotRegisteredError):
            outcome = OUTCOME_INVALID
            raise
        except AquaError:
            outcome = OUTCOME_ERROR
            breaker.record_failure()
            raise
        finally:
            self._observe_breaker(table, breaker)
            self._note_outcome(
                outcome, tenant, seconds=self._clock() - start, stage=stage
            )
            self._release_slot()

    # -- admission -----------------------------------------------------------

    def _resolve_deadline(
        self, deadline: Union[Deadline, float, None]
    ) -> Optional[Deadline]:
        if deadline is None:
            deadline = self.config.default_deadline_seconds
        return Deadline.resolve(deadline, clock=self._clock)

    def _acquire_slot(self) -> Optional[int]:
        """Take an admission slot; None when full past the timeout.

        Returns the queue depth *including* this request, which the load-
        shedding decision keys on.
        """
        timeout = self.config.admission_timeout_seconds
        capacity = self.config.capacity
        with self._slots:
            if self._pending < capacity:
                self._pending += 1
                return self._pending
            if timeout <= 0:
                return None
            end = time.monotonic() + timeout
            while self._pending >= capacity:
                remaining = end - time.monotonic()
                if remaining <= 0:
                    return None
                self._slots.wait(remaining)
            self._pending += 1
            return self._pending

    def _release_slot(self) -> None:
        with self._slots:
            self._pending = max(0, self._pending - 1)
            depth = self._pending
            self._slots.notify()
        metrics = self.system.metrics
        if metrics.enabled:
            self._queue_gauge().set(depth)

    @property
    def pending(self) -> int:
        """Admitted requests not yet finished (in flight + queued)."""
        with self._slots:
            return self._pending

    # -- execution -----------------------------------------------------------

    def _run(self, request: _Request) -> ServeResult:
        tracer = self.system.tracer
        with tracer.span("serve_request", tenant=request.tenant) as span:
            queued = self._clock() - request.enqueued
            self._observe_queue_wait(queued)
            try:
                result = self._serve(request, queued, span)
            except DeadlineExceeded as exc:
                self._note_outcome(
                    OUTCOME_DEADLINE, request.tenant, stage=exc.stage
                )
                span.set(outcome=OUTCOME_DEADLINE, stage=exc.stage)
                raise
            except (SqlError, QueryError, TableNotRegisteredError,
                    SynopsisMissingError):
                self._note_outcome(OUTCOME_INVALID, request.tenant)
                span.set(outcome=OUTCOME_INVALID)
                raise
            except CircuitOpenError:
                self._note_outcome(OUTCOME_BREAKER_OPEN, request.tenant)
                span.set(outcome=OUTCOME_BREAKER_OPEN)
                raise
            except AquaError:
                self._note_outcome(OUTCOME_ERROR, request.tenant)
                span.set(outcome=OUTCOME_ERROR)
                raise
            outcome = (
                OUTCOME_DEGRADED
                if result.degraded
                else (
                    OUTCOME_ESCALATED
                    if result.answer.guard is not None
                    and result.answer.guard.degraded
                    else OUTCOME_OK
                )
            )
            self._note_outcome(
                outcome, request.tenant, seconds=result.served_seconds
            )
            span.set(outcome=outcome, attempts=result.attempts)
            return result

    def _serve(self, request: _Request, queued: float, span) -> ServeResult:
        if request.deadline is not None:
            request.deadline.check("queue")
        query = (
            parse_query(request.sql)
            if isinstance(request.sql, str)
            else request.sql
        )
        table = query.base_table_name()
        breaker = self.breaker(table)
        degradation: Optional[str] = None
        if request.load_shed:
            degradation = "load_shed"
        elif not breaker.allow_full_service():
            if not self.config.degrade_on_breaker:
                raise CircuitOpenError(
                    f"circuit breaker for table {table!r} is open "
                    f"({breaker.open_reason}) and degradation is disabled"
                )
            degradation = "breaker_open"
        if degradation is not None:
            span.set(degradation=degradation)
            self._note_degraded(degradation, table)

        start = self._clock()
        attempts = [0]

        def on_retry(_index: int, _error: BaseException) -> None:
            attempts[0] += 1
            self._note_retry(table)

        # Degradation ladder: a dedicated cheaper system first; failing
        # that, the portfolio's coarsest member (still a principled
        # congressional sample, still cheap); only then the unguarded
        # primary synopsis.
        use_synopsis: Optional[str] = None
        if degradation is None:
            target, guard = self.system, None
        elif self._degraded_system is not None:
            target, guard = self._degraded_system, None
        elif self.system.has_portfolio(table):
            target, guard = self.system, self._degraded_policy
            use_synopsis = self.system.portfolio(table).coarsest().name
        else:
            target, guard = self.system, self._degraded_policy

        try:
            with deadline_scope(request.deadline):
                # Degraded answers are audit-exempt: they carry no accuracy
                # promise, so they must reach neither the accuracy auditor
                # nor the SLO monitor's clean-serve stream (the service
                # records them as degraded below instead).  Budgets are
                # only resolved on the clean path: a degraded answer has no
                # promise to resolve against (its budget_satisfied is
                # computed -- and pinned False for error budgets -- below).
                answer = self._retry.call(
                    lambda: target.answer(
                        query,
                        guard=guard,
                        audit=degradation is None,
                        max_rel_error=(
                            request.max_rel_error
                            if degradation is None
                            else None
                        ),
                        max_ms=(
                            request.max_ms if degradation is None else None
                        ),
                        use_synopsis=use_synopsis,
                    ),
                    deadline=request.deadline,
                    sleep=self._sleep,
                    rng=self._rng,
                    on_retry=on_retry,
                )
        except Exception:
            if degradation is None:
                breaker.record_failure()
                self._observe_breaker(table, breaker)
            raise
        if degradation is None:
            if answer.guard is not None and answer.guard.degraded:
                breaker.record_escalation()
            else:
                breaker.record_success()
        else:
            answer = self._mark_degraded(answer)
            target.telemetry.events.annotate(
                answer.trace_id, degraded=True, degradation=degradation
            )
            slo = getattr(self.system, "slo", None)
            if slo is not None:
                slo.record_served(True)
        self._observe_breaker(table, breaker)
        served_seconds = self._clock() - start
        return ServeResult(
            answer=answer,
            tenant=request.tenant,
            degraded=degradation is not None,
            degradation=degradation,
            attempts=attempts[0] + 1,
            queued_seconds=queued,
            served_seconds=served_seconds,
            budget_satisfied=self._budget_satisfied(
                request, answer, degradation, served_seconds
            ),
        )

    @staticmethod
    def _budget_satisfied(
        request: _Request,
        answer: ApproximateAnswer,
        degradation: Optional[str],
        served_seconds: float,
    ) -> Optional[bool]:
        """Did the served answer honor the request's budgets?

        ``None`` without budgets.  A degraded answer under an error budget
        is pinned ``False``: degradation strips the accuracy promise, so
        it must never satisfy ``max_rel_error`` silently, no matter what
        the (unguarded) error columns happen to say.
        """
        if request.max_rel_error is None and request.max_ms is None:
            return None
        if degradation is not None and request.max_rel_error is not None:
            return False
        satisfied = True
        if request.max_rel_error is not None:
            promised = answer.promised_rel_error
            # No finite promise means every surviving group is exact-grade
            # (zero half-widths are a 0.0 promise, not None).
            satisfied = promised is None or promised <= (
                request.max_rel_error * (1.0 + 1e-9)
            )
        if satisfied and request.max_ms is not None:
            satisfied = served_seconds * 1000.0 <= request.max_ms
        return satisfied

    def _mark_degraded(self, answer: ApproximateAnswer) -> ApproximateAnswer:
        """Tag every answer group with ``degraded`` provenance.

        A degraded answer skipped the guard ladder, so whatever quality
        story the provenance column usually tells does not apply; honest
        provenance is the contract that makes degradation graceful.
        """
        result = answer.result
        tags = [PROVENANCE_DEGRADED] * result.num_rows
        name = "provenance"
        if isinstance(self._degraded_policy, GuardPolicy):
            name = self._degraded_policy.provenance_column
        if name in result.schema:
            columns = result.columns()
            columns[name] = result.schema.column(name).ctype.coerce(tags)
            result = Table(result.schema, columns)
        else:
            result = result.with_column(Column(name, ColumnType.STR), tags)
        return dataclass_replace(answer, result=result)

    # -- breakers ------------------------------------------------------------

    def breaker(self, table: str) -> CircuitBreaker:
        """The (lazily created) circuit breaker for one table."""
        with self._breakers_lock:
            breaker = self._breakers.get(table)
            if breaker is None:
                breaker = CircuitBreaker(self._breaker_config, clock=self._clock)
                self._breakers[table] = breaker
            return breaker

    # -- stats & metrics -----------------------------------------------------

    @property
    def stats(self) -> ServiceStats:
        with self._stats_lock:
            outcomes = dict(self._outcomes)
            admitted = self._admitted
            rejected_overload = self._rejected_overload
            rejected_rate_limit = self._rejected_rate_limit
            retries = self._retries
        with self._breakers_lock:
            breakers = {
                table: breaker.state
                for table, breaker in self._breakers.items()
            }
        return ServiceStats(
            workers=self.config.workers,
            capacity=self.config.capacity,
            pending=self.pending,
            admitted=admitted,
            rejected_overload=rejected_overload,
            rejected_rate_limit=rejected_rate_limit,
            retries=retries,
            outcomes=outcomes,
            breakers=breakers,
            tenants=self._limiter.tenants(),
        )

    def _queue_gauge(self):
        return self.system.metrics.gauge(
            "serve_queue_depth",
            "Admitted requests in flight or waiting for a worker.",
        )

    def _note_admitted(self, depth: int) -> None:
        with self._stats_lock:
            self._admitted += 1
        metrics = self.system.metrics
        if metrics.enabled:
            self._queue_gauge().set(depth)

    def _note_rejected(self, reason: str, tenant: str) -> None:
        with self._stats_lock:
            if reason == OUTCOME_REJECTED_OVERLOAD:
                self._rejected_overload += 1
            else:
                self._rejected_rate_limit += 1
        metrics = self.system.metrics
        if metrics.enabled:
            metrics.counter(
                "serve_rejected_total",
                "Queries refused at admission, by reason.",
                ("reason", "tenant"),
            ).inc(reason=reason, tenant=tenant)

    def _note_outcome(
        self,
        outcome: str,
        tenant: str,
        seconds: Optional[float] = None,
        stage: Optional[str] = None,
    ) -> None:
        with self._stats_lock:
            self._outcomes[outcome] = self._outcomes.get(outcome, 0) + 1
        metrics = self.system.metrics
        if not metrics.enabled:
            return
        metrics.counter(
            "serve_requests_total",
            "Requests that reached a worker, by tenant and outcome.",
            ("tenant", "outcome"),
        ).inc(tenant=tenant, outcome=outcome)
        if seconds is not None:
            metrics.histogram(
                "serve_latency_seconds",
                "Worker-side serve latency (retries included).",
                ("outcome",),
            ).observe(seconds, outcome=outcome)
        if stage is not None:
            metrics.counter(
                "serve_deadline_total",
                "Deadline expiries, by the stage the query died in.",
                ("stage",),
            ).inc(stage=str(stage))

    def _note_retry(self, table: str) -> None:
        with self._stats_lock:
            self._retries += 1
        metrics = self.system.metrics
        if metrics.enabled:
            metrics.counter(
                "serve_retries_total",
                "Transient-fault retries, per table.",
                ("table",),
            ).inc(table=table)

    def _note_degraded(self, reason: str, table: str) -> None:
        metrics = self.system.metrics
        if metrics.enabled:
            metrics.counter(
                "serve_degraded_total",
                "Requests served through the degradation ladder, by reason.",
                ("reason", "table"),
            ).inc(reason=reason, table=table)

    def _observe_queue_wait(self, seconds: float) -> None:
        metrics = self.system.metrics
        if metrics.enabled:
            metrics.histogram(
                "serve_queue_wait_seconds",
                "Time between admission and a worker picking the query up.",
            ).observe(seconds)

    def _observe_breaker(self, table: str, breaker: CircuitBreaker) -> None:
        metrics = self.system.metrics
        if metrics.enabled:
            metrics.gauge(
                "serve_breaker_state",
                "Circuit-breaker state per table "
                "(0 closed, 0.5 half-open, 1 open).",
                ("table",),
            ).set(_BREAKER_GAUGE[breaker.state], table=table)
