"""Per-query deadlines with cooperative, stage-aware cancellation.

A :class:`Deadline` is an absolute expiry on an injectable monotonic clock
(tests pass a :class:`ManualClock` so nothing depends on wall time).  The
active deadline travels through the pipeline in a :mod:`contextvars`
context variable rather than as a parameter on every engine call:

* :func:`deadline_scope` installs a deadline for a ``with`` block;
* :func:`current_deadline` reads it anywhere below (the plan executor
  checks it before every operator, the parallel executor before every
  partition scan, :meth:`AquaSystem.answer` between pipeline stages);
* :func:`check_deadline` raises a typed
  :class:`~repro.errors.DeadlineExceeded` carrying the *stage* the query
  died in, so a query killed mid-scan is distinguishable from one that
  expired while queued.

Thread handoff is explicit: worker pools do not inherit the submitting
thread's context, so coordinators (e.g. the parallel executor) capture
``current_deadline()`` once and close over it -- which is also what keeps
per-partition checks cheap.

This module sits *below* the rest of :mod:`repro.serve` (stdlib plus the
error taxonomy only) so the engine and plan layers can import it without
pulling the serving stack into every query.
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager
from contextvars import ContextVar
from typing import Callable, Iterator, Optional, Union

from ..errors import DeadlineExceeded

__all__ = [
    "Deadline",
    "ManualClock",
    "check_deadline",
    "current_deadline",
    "deadline_scope",
]

Clock = Callable[[], float]


class ManualClock:
    """A monotonic clock advanced explicitly -- deterministic time for tests.

    Callable (``clock()`` returns the current reading) so it drops in
    wherever ``time.monotonic`` is expected: deadlines, token buckets,
    circuit breakers, and the fault injector's slow scans all take a
    ``clock`` argument.
    """

    def __init__(self, start: float = 0.0):
        self._now = float(start)
        self._lock = threading.Lock()

    def __call__(self) -> float:
        with self._lock:
            return self._now

    def advance(self, seconds: float) -> float:
        """Move time forward (never backward) and return the new reading."""
        if seconds < 0:
            raise ValueError(f"cannot advance a clock by {seconds}")
        with self._lock:
            self._now += float(seconds)
            return self._now


class Deadline:
    """An absolute time budget for one query on an injectable clock."""

    __slots__ = ("seconds", "_clock", "_started", "_expires")

    def __init__(self, seconds: float, clock: Optional[Clock] = None):
        if seconds < 0:
            raise ValueError(f"deadline must be >= 0 seconds, got {seconds}")
        self.seconds = float(seconds)
        self._clock: Clock = clock if clock is not None else time.monotonic
        self._started = self._clock()
        self._expires = self._started + self.seconds

    @classmethod
    def resolve(
        cls,
        value: Union["Deadline", float, int, None],
        clock: Optional[Clock] = None,
    ) -> Optional["Deadline"]:
        """Coerce an API argument (seconds, Deadline, or None) to a Deadline."""
        if value is None:
            return None
        if isinstance(value, Deadline):
            return value
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            raise TypeError(
                f"deadline must be a Deadline, seconds, or None; got {value!r}"
            )
        return cls(float(value), clock=clock)

    @property
    def elapsed(self) -> float:
        return self._clock() - self._started

    @property
    def remaining(self) -> float:
        """Seconds left before expiry (negative once expired)."""
        return self._expires - self._clock()

    @property
    def expired(self) -> bool:
        return self._clock() >= self._expires

    def check(self, stage: str) -> None:
        """Raise :class:`DeadlineExceeded` tagged with ``stage`` if expired."""
        now = self._clock()
        if now >= self._expires:
            raise DeadlineExceeded(
                f"deadline of {self.seconds:.3f}s exceeded after "
                f"{now - self._started:.3f}s (in {stage})",
                stage=stage,
                elapsed_seconds=now - self._started,
            )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Deadline({self.seconds}s, remaining={self.remaining:.3f}s)"


_CURRENT: ContextVar[Optional[Deadline]] = ContextVar(
    "repro_serve_deadline", default=None
)


def current_deadline() -> Optional[Deadline]:
    """The deadline installed by the innermost :func:`deadline_scope`."""
    return _CURRENT.get()


@contextmanager
def deadline_scope(deadline: Optional[Deadline]) -> Iterator[Optional[Deadline]]:
    """Install ``deadline`` as the ambient deadline for the ``with`` body.

    ``None`` is accepted and installs nothing, so call sites can wrap
    unconditionally.  Scopes nest; the inner scope wins until it exits.
    """
    if deadline is None:
        yield None
        return
    token = _CURRENT.set(deadline)
    try:
        yield deadline
    finally:
        _CURRENT.reset(token)


def check_deadline(stage: str) -> None:
    """Check the ambient deadline (no-op when none is installed)."""
    deadline = _CURRENT.get()
    if deadline is not None:
        deadline.check(stage)
