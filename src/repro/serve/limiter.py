"""Per-tenant token-bucket rate limiting for the query service.

Classic token bucket: each tenant owns a bucket holding up to ``burst``
tokens refilled at ``rate`` tokens/second; admitting a query spends one
token, and an empty bucket rejects with a typed
:class:`~repro.errors.RateLimitExceeded` that carries a retry-after hint.
Refill is computed lazily from an injectable monotonic clock, so tests
drive it with a :class:`~repro.serve.deadline.ManualClock` and never sleep.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass
from typing import Callable, Dict, Optional, Tuple

from ..errors import RateLimitExceeded

__all__ = ["TokenBucket", "TenantRateLimiter"]

Clock = Callable[[], float]


class TokenBucket:
    """A thread-safe token bucket: ``burst`` capacity, ``rate``/s refill."""

    def __init__(
        self,
        rate: float,
        burst: float,
        clock: Optional[Clock] = None,
    ):
        if rate < 0:
            raise ValueError(f"rate must be >= 0 tokens/s, got {rate}")
        if burst <= 0:
            raise ValueError(f"burst must be > 0 tokens, got {burst}")
        self.rate = float(rate)
        self.burst = float(burst)
        self._clock: Clock = clock if clock is not None else time.monotonic
        self._tokens = self.burst
        self._updated = self._clock()
        self._lock = threading.Lock()

    def _refill_locked(self) -> None:
        now = self._clock()
        elapsed = now - self._updated
        if elapsed > 0:
            self._tokens = min(self.burst, self._tokens + elapsed * self.rate)
            self._updated = now

    def try_acquire(self, tokens: float = 1.0) -> bool:
        """Spend ``tokens`` if available; never blocks."""
        with self._lock:
            self._refill_locked()
            if self._tokens >= tokens:
                self._tokens -= tokens
                return True
            return False

    def retry_after(self, tokens: float = 1.0) -> float:
        """Seconds until ``tokens`` will be available (0 when they are)."""
        with self._lock:
            self._refill_locked()
            deficit = tokens - self._tokens
            if deficit <= 0:
                return 0.0
            if self.rate == 0:
                return float("inf")
            return deficit / self.rate

    @property
    def available(self) -> float:
        """Current token balance (after lazy refill)."""
        with self._lock:
            self._refill_locked()
            return self._tokens


@dataclass(frozen=True)
class _Limits:
    rate: float
    burst: float


class TenantRateLimiter:
    """One token bucket per tenant, created on first sight.

    ``rate``/``burst`` are the defaults for unknown tenants; ``overrides``
    maps tenant names to ``(rate, burst)`` pairs for per-tenant SLAs.  A
    ``rate`` of ``None`` disables limiting entirely (every admit succeeds),
    which is the service default -- limits are opt-in.
    """

    def __init__(
        self,
        rate: Optional[float] = None,
        burst: float = 10.0,
        overrides: Optional[Dict[str, Tuple[float, float]]] = None,
        clock: Optional[Clock] = None,
    ):
        self._default = None if rate is None else _Limits(rate, burst)
        self._overrides = {
            tenant: _Limits(r, b)
            for tenant, (r, b) in (overrides or {}).items()
        }
        self._clock = clock
        self._buckets: Dict[str, TokenBucket] = {}
        self._lock = threading.Lock()

    @property
    def enabled(self) -> bool:
        return self._default is not None or bool(self._overrides)

    def bucket(self, tenant: str) -> Optional[TokenBucket]:
        """The tenant's bucket (None when the tenant is unlimited)."""
        limits = self._overrides.get(tenant, self._default)
        if limits is None:
            return None
        with self._lock:
            bucket = self._buckets.get(tenant)
            if bucket is None:
                bucket = TokenBucket(
                    limits.rate, limits.burst, clock=self._clock
                )
                self._buckets[tenant] = bucket
            return bucket

    def admit(self, tenant: str) -> None:
        """Spend one token for ``tenant`` or raise :class:`RateLimitExceeded`."""
        bucket = self.bucket(tenant)
        if bucket is None or bucket.try_acquire():
            return
        retry_after = bucket.retry_after()
        raise RateLimitExceeded(
            f"tenant {tenant!r} exceeded its rate limit of "
            f"{bucket.rate:g} queries/s (burst {bucket.burst:g}); "
            f"retry in {retry_after:.3f}s",
            tenant=tenant,
            retry_after_seconds=retry_after,
        )

    def tenants(self) -> Dict[str, float]:
        """Current token balance per tenant seen so far (for ``.serve``)."""
        with self._lock:
            buckets = dict(self._buckets)
        return {tenant: bucket.available for tenant, bucket in buckets.items()}
