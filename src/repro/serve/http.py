"""A stdlib HTTP front-end over :class:`~repro.serve.service.QueryService`.

``ThreadingHTTPServer`` gives one handler thread per connection; every
handler forwards into the *shared* :class:`QueryService`, so admission
control, tenant rate limits, deadlines, and the degradation ladder apply
identically over HTTP and in-process.  The error taxonomy maps onto HTTP
status codes the way a load balancer expects:

=============================  ======  =========================
error                          status  notes
=============================  ======  =========================
``OverloadError``              429     ``Retry-After`` header
``RateLimitExceeded``          429     ``Retry-After`` header
``DeadlineExceeded``           504     body carries the stage
``CircuitOpenError``           503
``SqlError`` / ``QueryError``  400
table/synopsis missing         404
any other ``AquaError``        500
=============================  ======  =========================

Endpoints::

    POST /query    {"sql": ..., "tenant": ..., "deadline_seconds": ...,
                    "max_rel_error": ..., "max_ms": ...}
                   budgets resolve against the table's synopsis portfolio;
                   the response carries "chosen_synopsis",
                   "predicted_rel_error", and "budget_satisfied"
    POST /query?stream=1
                   progressive answers as chunked NDJSON, one event per
                   emission (body may add "chunk_rows", "until_rel_error")
    GET  /stats    service counters as JSON
    GET  /health   liveness + in-flight count
    GET  /metrics  Prometheus text exposition of the system registry
                   (``?format=openmetrics`` adds trace exemplars)
    GET  /events   recent query events (``?limit=N&table=T&status=S``
                   plus ``violations=1`` for audited bound violations)
    GET  /slo      SLO compliance + burn-rate alerts (404 when no
                   monitor is attached)

Run a demo server with ``python -m repro.serve``.
"""

from __future__ import annotations

import itertools
import json
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Tuple
from urllib.parse import parse_qs

from ..engine.query import QueryError
from ..engine.sql import SqlError
from ..errors import (
    AquaError,
    CircuitOpenError,
    DeadlineExceeded,
    OverloadError,
    RateLimitExceeded,
    StreamError,
    SynopsisMissingError,
    TableNotRegisteredError,
)
from .service import QueryService, ServeResult

__all__ = ["ServingHTTPServer", "serve_http"]

_MAX_BODY_BYTES = 1 << 20  # 1 MiB of SQL is a client error, not a workload


def _json_value(value):
    """Numpy scalars -> plain Python so ``json`` can serialize rows."""
    item = getattr(value, "item", None)
    return item() if callable(item) else value


def _result_payload(result: ServeResult) -> dict:
    table = result.result
    return {
        "columns": list(table.schema.names),
        "rows": [
            [_json_value(value) for value in row] for row in table.iter_rows()
        ],
        "confidence": result.answer.confidence,
        "degraded": result.degraded,
        "degradation": result.degradation,
        "provenance_counts": result.answer.provenance_counts,
        "attempts": result.attempts,
        "queued_seconds": result.queued_seconds,
        "served_seconds": result.served_seconds,
        "chosen_synopsis": result.answer.chosen_synopsis,
        "predicted_rel_error": result.answer.predicted_rel_error,
        "budget_satisfied": result.budget_satisfied,
        "cache_hit": result.answer.cache_hit,
        "cache_tier": result.answer.cache_tier,
        "reused_from": result.answer.reused_from,
    }


def _stream_event(answer) -> dict:
    """One NDJSON event for a ``StreamingAnswer`` emission."""
    table = answer.result
    max_rel = answer.max_rel_halfwidth
    return {
        "columns": list(table.schema.names),
        "rows": [
            [_json_value(value) for value in row] for row in table.iter_rows()
        ],
        "chunk_index": answer.chunk_index,
        "chunks_total": answer.chunks_total,
        "rows_seen": answer.rows_seen,
        "rows_total": answer.rows_total,
        "fraction": answer.fraction,
        "provenance": answer.provenance,
        "final": answer.final,
        "converged": answer.converged,
        "max_rel_halfwidth": None if max_rel != max_rel else max_rel,
        "confidence": answer.confidence,
        "bound_method": answer.bound_method,
        "elapsed_seconds": answer.elapsed_seconds,
        "cache_hit": answer.cache_hit,
    }


def _status_for(error: BaseException) -> Tuple[int, str]:
    """(HTTP status, machine-readable error kind) for a taxonomy error."""
    if isinstance(error, (OverloadError, RateLimitExceeded)):
        return 429, type(error).__name__
    if isinstance(error, DeadlineExceeded):
        return 504, "DeadlineExceeded"
    if isinstance(error, CircuitOpenError):
        return 503, "CircuitOpenError"
    if isinstance(error, (TableNotRegisteredError, SynopsisMissingError)):
        return 404, type(error).__name__
    if isinstance(error, (SqlError, QueryError, StreamError)):
        return 400, type(error).__name__
    return 500, type(error).__name__


class _Handler(BaseHTTPRequestHandler):
    protocol_version = "HTTP/1.1"

    @property
    def service(self) -> QueryService:
        return self.server.service  # type: ignore[attr-defined]

    # -- plumbing ------------------------------------------------------------

    def log_message(self, format, *args):  # noqa: A002 - stdlib signature
        pass  # request logging goes through serve_* metrics, not stderr

    def _send_json(self, status: int, payload: dict, headers=()) -> None:
        body = json.dumps(payload).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        for name, value in headers:
            self.send_header(name, value)
        self.end_headers()
        self.wfile.write(body)

    def _send_error_json(self, error: BaseException) -> None:
        status, kind = _status_for(error)
        payload = {"error": kind, "message": str(error)}
        headers = []
        retry_after = getattr(error, "retry_after_seconds", None)
        if status == 429 and retry_after is not None:
            headers.append(("Retry-After", f"{max(retry_after, 0.0):.3f}"))
            payload["retry_after_seconds"] = max(retry_after, 0.0)
        stage = getattr(error, "stage", None)
        if stage is not None:
            payload["stage"] = stage
        self._send_json(status, payload, headers)

    # -- endpoints -----------------------------------------------------------

    def do_POST(self) -> None:  # noqa: N802 - stdlib naming
        raw_path, _, raw_query = self.path.partition("?")
        if raw_path.rstrip("/") != "/query":
            self._send_json(404, {"error": "NotFound", "message": self.path})
            return
        options = parse_qs(raw_query)
        streaming = options.get("stream", [""])[0] in ("1", "true")
        try:
            length = int(self.headers.get("Content-Length", "0"))
            if length > _MAX_BODY_BYTES:
                raise ValueError(f"request body of {length} bytes is too large")
            request = json.loads(self.rfile.read(length) or b"{}")
            sql = request["sql"]
            if not isinstance(sql, str):
                raise ValueError("'sql' must be a string")
            tenant = request.get("tenant", "default")
            deadline = request.get("deadline_seconds")
            chunk_rows = int(request.get("chunk_rows", 1024))
            until_rel_error = request.get("until_rel_error")
            max_rel_error = request.get("max_rel_error")
            if max_rel_error is not None:
                max_rel_error = float(max_rel_error)
            max_ms = request.get("max_ms")
            if max_ms is not None:
                max_ms = float(max_ms)
        except (ValueError, KeyError, TypeError, json.JSONDecodeError) as exc:
            self._send_json(
                400, {"error": "BadRequest", "message": str(exc)}
            )
            return
        if streaming:
            self._stream_query(
                sql,
                tenant=tenant,
                deadline=deadline,
                chunk_rows=chunk_rows,
                until_rel_error=until_rel_error,
            )
            return
        try:
            result = self.service.query(
                sql,
                tenant=tenant,
                deadline=deadline,
                max_rel_error=max_rel_error,
                max_ms=max_ms,
            )
        except (AquaError, SqlError, QueryError, TypeError) as exc:
            self._send_error_json(exc)
            return
        self._send_json(200, _result_payload(result))

    def _stream_query(
        self, sql, *, tenant, deadline, chunk_rows, until_rel_error
    ) -> None:
        """``POST /query?stream=1``: chunked NDJSON, one event per answer.

        Admission failures (429s), bad SQL, and un-streamable queries
        surface as ordinary JSON error responses: the first emission is
        pulled eagerly, before the 200 is committed, so any error that
        precedes it still maps through ``_status_for``.  Once the chunked
        framing is committed, a mid-stream failure can only truncate the
        stream -- clients detect completeness by the terminal event's
        ``final``/``converged``/``provenance`` fields.
        """
        try:
            answers = iter(
                self.service.stream(
                    sql,
                    tenant=tenant,
                    deadline=deadline,
                    chunk_rows=chunk_rows,
                    until_rel_error=until_rel_error,
                )
            )
            first = next(answers, None)
        except (AquaError, SqlError, QueryError, TypeError) as exc:
            self._send_error_json(exc)
            return
        self.send_response(200)
        self.send_header("Content-Type", "application/x-ndjson")
        self.send_header("Transfer-Encoding", "chunked")
        self.end_headers()
        try:
            replay = () if first is None else (first,)
            for answer in itertools.chain(replay, answers):
                self._write_chunk(
                    json.dumps(_stream_event(answer)).encode("utf-8") + b"\n"
                )
        except AquaError:
            # Mid-stream failure after headers: close the chunked framing
            # so the client sees a complete (if short) stream; the last
            # event's flags tell it whether the answer was final.
            pass
        self._write_chunk(b"")

    def _write_chunk(self, data: bytes) -> None:
        """One HTTP/1.1 chunked-transfer frame (empty data = terminator)."""
        self.wfile.write(f"{len(data):X}\r\n".encode("ascii"))
        self.wfile.write(data + b"\r\n")
        self.wfile.flush()

    def do_GET(self) -> None:  # noqa: N802 - stdlib naming
        raw_path, _, raw_query = self.path.partition("?")
        path = raw_path.rstrip("/") or "/"
        query = parse_qs(raw_query)
        if path == "/health":
            self._send_json(
                200, {"status": "ok", "pending": self.service.pending}
            )
        elif path == "/stats":
            stats = self.service.stats
            payload = {
                "workers": stats.workers,
                "capacity": stats.capacity,
                "pending": stats.pending,
                "admitted": stats.admitted,
                "rejected_overload": stats.rejected_overload,
                "rejected_rate_limit": stats.rejected_rate_limit,
                "retries": stats.retries,
                "outcomes": stats.outcomes,
                "breakers": stats.breakers,
                "tenants": stats.tenants,
            }
            cache = self.service.system.answer_cache
            if cache is not None:
                cstats = cache.stats
                payload["answer_cache"] = {
                    "size": cstats.size,
                    "capacity": cstats.capacity,
                    "hits": cstats.hits,
                    "misses": cstats.misses,
                    "evictions": cstats.evictions,
                    "hit_rate": cstats.hit_rate,
                    "tiers": {
                        "exact": cstats.exact_hits,
                        "canonical": cstats.canonical_hits,
                        "rollup": cstats.rollup_hits,
                    },
                    "semantic_hit_rate": cstats.semantic_hit_rate,
                }
            rollup = self.service.system.rollup_index
            if rollup is not None:
                rstats = rollup.stats()
                payload["rollup_index"] = {
                    "entries": rstats.entries,
                    "hits": rstats.hits,
                    "misses": rstats.misses,
                    "registrations": rstats.registrations,
                    "invalidations": rstats.invalidations,
                }
            self._send_json(200, payload)
        elif path == "/metrics":
            registry = self.service.system.metrics
            if query.get("format", [""])[0] == "openmetrics":
                body = registry.to_openmetrics().encode("utf-8")
                content_type = (
                    "application/openmetrics-text; version=1.0.0; "
                    "charset=utf-8"
                )
            else:
                body = registry.to_prometheus().encode("utf-8")
                content_type = "text/plain; version=0.0.4; charset=utf-8"
            self.send_response(200)
            self.send_header("Content-Type", content_type)
            self.send_header("Content-Length", str(len(body)))
            self.end_headers()
            self.wfile.write(body)
        elif path == "/events":
            events = self.service.system.telemetry.events
            try:
                limit = int(query.get("limit", ["50"])[0])
            except ValueError:
                self._send_json(
                    400,
                    {"error": "BadRequest", "message": "limit must be int"},
                )
                return
            table = query.get("table", [None])[0]
            status = query.get("status", [None])[0]
            violations = query.get("violations", [""])[0] in ("1", "true")
            self._send_json(
                200,
                {
                    "enabled": events.enabled,
                    "events": [
                        event.to_dict()
                        for event in events.events(
                            limit=limit,
                            table=table,
                            status=status,
                            violations_only=violations,
                        )
                    ],
                },
            )
        elif path == "/slo":
            slo = getattr(self.service.system, "slo", None)
            if slo is None:
                self._send_json(
                    404,
                    {
                        "error": "NotFound",
                        "message": "no SLO monitor attached",
                    },
                )
                return
            self._send_json(200, slo.to_dict())
        else:
            self._send_json(404, {"error": "NotFound", "message": self.path})


class ServingHTTPServer(ThreadingHTTPServer):
    """One handler thread per connection, all sharing one service."""

    daemon_threads = True

    def __init__(self, address: Tuple[str, int], service: QueryService):
        super().__init__(address, _Handler)
        self.service = service

    @property
    def url(self) -> str:
        host, port = self.server_address[:2]
        return f"http://{host}:{port}"


def serve_http(
    service: QueryService, host: str = "127.0.0.1", port: int = 0
) -> ServingHTTPServer:
    """Bind a serving HTTP server (``port=0`` picks a free port).

    The caller owns the loop: ``server.serve_forever()`` to block, or run
    it in a thread and ``server.shutdown()`` to stop (the tests do the
    latter).
    """
    return ServingHTTPServer((host, port), service)
