"""Incremental maintenance of Basic Congress samples (Section 6, Thm 6.1).

State: a single reservoir of size ``Y`` over the whole relation, per-group
counts ``x_g`` of reservoir members, and per-group *delta samples*
``Δ_g`` -- uniform samples holding the Senate top-up
``max(0, Y/m - x_g)`` extra tuples for under-represented groups.

On inserting tuple ``τ`` (paper's four cases):

1. ``τ`` not selected for the reservoir: usually nothing (but see 4).
2. Selected, evicting ``τ'`` of the *same* group: nothing else.
3. Selected, evicting ``τ'`` of another group ``g'``: increment ``x_g`` and
   evict one random ``Δ_g`` member if any; decrement ``x_{g'}`` and recycle
   ``τ'`` into ``Δ_{g'}`` if ``x_{g'}`` fell below ``Y/m``.
4. Small groups (``n_g < Y/m``): tuples not selected for the reservoir go
   straight into ``Δ_g`` (so tiny groups are fully retained).  When a brand
   new group arrives, ``m`` grows and delta samples are evicted down so
   ``|Δ_h| + x_h >= Y/(m+1)`` is not over-satisfied.

Theorem 6.1: every ``Δ_g`` remains a uniform random sample of group ``g``,
because evicted reservoir tuples are themselves uniform picks and direct
adds happen only while the group is fully enumerated.

The maintained size floats with the data distribution (the paper's point:
a *fixed* total size cannot be maintained without touching the base
relation); :mod:`repro.maintenance.onepass` subsamples to a fixed ``X``.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..engine.schema import Schema
from ..sampling.groups import GroupKey
from ..sampling.reservoir import ReservoirSampler
from .base import MaintainedSample, SampleMaintainer

__all__ = ["BasicCongressMaintainer"]


class BasicCongressMaintainer(SampleMaintainer):
    """Reservoir + per-group delta samples (the paper's algorithm)."""

    def __init__(
        self,
        schema: Schema,
        grouping_columns: Sequence[str],
        budget: int,
        rng: Optional[np.random.Generator] = None,
    ):
        super().__init__(schema, grouping_columns)
        if budget < 0:
            raise ValueError(f"budget must be >= 0, got {budget}")
        self._budget = budget  # the paper's Y
        self._rng = rng if rng is not None else np.random.default_rng()
        # Reservoir entries are (serial, row) so identical rows stay distinct.
        self._reservoir: ReservoirSampler = ReservoirSampler(budget, self._rng)
        self._serial = 0
        self._x: Dict[GroupKey, int] = {}  # reservoir members per group
        self._delta: Dict[GroupKey, List[Tuple]] = {}
        self._populations: Dict[GroupKey, int] = {}

    @property
    def budget(self) -> int:
        return self._budget

    @property
    def num_groups(self) -> int:
        return len(self._populations)

    def _senate_target(self) -> float:
        m = max(1, len(self._populations))
        return self._budget / m

    def _evict_random_delta(self, key: GroupKey) -> None:
        members = self._delta.get(key)
        if members:
            slot = int(self._rng.integers(0, len(members)))
            members[slot] = members[-1]
            members.pop()

    def _trim_delta_to_target(self, key: GroupKey, target: float) -> None:
        """Restore ``|Δ_g| <= max(0, Y/m - x_g)`` after ``x_g`` grew.

        Only evicts when the group is *above* its invariant size -- a group
        still in deficit (e.g. fully enumerated because ``n_g < Y/m``) must
        keep every tuple, otherwise small groups leak samples over time.
        """
        members = self._delta.get(key)
        if not members:
            return
        allowed = max(0.0, target - self._x.get(key, 0))
        while members and len(members) > allowed:
            self._evict_random_delta(key)

    def _trim_deltas_for_new_group(self) -> None:
        """Shrink delta samples after ``m`` grew (paper's lazy eviction)."""
        target = self._senate_target()
        for key, members in self._delta.items():
            allowed = max(0, int(np.ceil(target)) - self._x.get(key, 0))
            while len(members) > allowed:
                self._evict_random_delta(key)

    def insert(self, row: Sequence) -> None:
        row = tuple(row)
        key = self._key_of(row)
        is_new_group = key not in self._populations
        self._populations[key] = self._populations.get(key, 0) + 1
        if is_new_group:
            # m grows; existing groups' Senate share shrinks.
            self._trim_deltas_for_new_group()

        target = self._senate_target()
        self._serial += 1
        entry = (self._serial, key, row)
        evicted = self._reservoir.offer(entry)

        if evicted is entry:
            # Case 1 / 4: not selected for the reservoir.
            if self._populations[key] <= target:
                # Group is still smaller than its Senate share: retain every
                # tuple (reservoir members + delta == whole group).
                self._delta.setdefault(key, []).append(row)
            return

        # Selected for the reservoir.
        self._x[key] = self._x.get(key, 0) + 1
        if evicted is None:
            # Reservoir still filling; no eviction side to handle.
            self._trim_delta_to_target(key, target)
            return

        __, evicted_key, evicted_row = evicted
        if evicted_key == key:
            # Case 2: same group in, same group out; x_g net unchanged.
            self._x[key] -= 1
            return

        # Case 3: cross-group replacement.
        self._trim_delta_to_target(key, target)
        self._x[evicted_key] = self._x.get(evicted_key, 0) - 1
        if self._x[evicted_key] < target:
            delta = self._delta.setdefault(evicted_key, [])
            if len(delta) + self._x[evicted_key] < target:
                delta.append(evicted_row)

    def snapshot(self) -> MaintainedSample:
        rows_by_group: Dict[GroupKey, List[Tuple]] = {}
        for __, key, row in self._reservoir.items():
            rows_by_group.setdefault(key, []).append(row)
        for key, members in self._delta.items():
            if members:
                rows_by_group.setdefault(key, []).extend(members)
        return MaintainedSample(
            schema=self.schema,
            grouping_columns=self.grouping_columns,
            rows_by_group=rows_by_group,
            populations=dict(self._populations),
        )

    # -- introspection for tests ---------------------------------------------

    def reservoir_count(self, key: GroupKey) -> int:
        return self._x.get(key, 0)

    def delta_count(self, key: GroupKey) -> int:
        return len(self._delta.get(key, []))
