"""Shared machinery for the streaming sample maintainers of Section 6.

All maintainers consume a stream of row tuples (values in schema order) via
:meth:`SampleMaintainer.insert` and can, at any point, produce a
:class:`MaintainedSample`: per-finest-group sampled rows plus the true group
populations seen so far.  ``MaintainedSample.to_stratified()`` converts to
the standard :class:`~repro.sampling.stratified.StratifiedSample` container
(the base table being the sampled rows themselves, with populations carried
from the stream counters), so estimators and rewrite strategies work
unchanged on maintained samples.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Dict, Iterable, List, Sequence, Tuple

import numpy as np

from ..engine.schema import Schema
from ..engine.table import Table
from ..sampling.groups import GroupKey, make_key
from ..sampling.stratified import StratifiedSample, Stratum

__all__ = ["MaintainedSample", "SampleMaintainer", "KeyExtractor"]


class KeyExtractor:
    """Extract the finest-partition group key from a row tuple."""

    def __init__(self, schema: Schema, grouping_columns: Sequence[str]):
        self._positions = tuple(
            schema.position(name) for name in grouping_columns
        )

    def __call__(self, row: Sequence) -> GroupKey:
        return make_key(tuple(row[i] for i in self._positions))


@dataclass
class MaintainedSample:
    """Output of a maintainer: sampled rows and populations per group."""

    schema: Schema
    grouping_columns: Tuple[str, ...]
    rows_by_group: Dict[GroupKey, List[Tuple]]
    populations: Dict[GroupKey, int]

    @property
    def total_sample_size(self) -> int:
        return sum(len(rows) for rows in self.rows_by_group.values())

    @property
    def total_population(self) -> int:
        """Total rows observed on the stream across all groups."""
        return sum(int(p) for p in self.populations.values())

    def sample_sizes(self) -> Dict[GroupKey, int]:
        return {key: len(rows) for key, rows in self.rows_by_group.items()}

    def to_stratified(self) -> StratifiedSample:
        """Repackage as a :class:`StratifiedSample`.

        The "base table" is the concatenation of the sampled rows; each
        stratum's ``population`` is the true group size observed on the
        stream, so scale factors are correct even though the full relation
        was never materialized.
        """
        ordered = sorted(self.rows_by_group.items())
        all_rows: List[Tuple] = []
        strata: Dict[GroupKey, Stratum] = {}
        cursor = 0
        for key, rows in ordered:
            population = int(self.populations.get(key, len(rows)))
            indices = np.arange(cursor, cursor + len(rows), dtype=np.int64)
            strata[key] = Stratum(key, population, indices)
            all_rows.extend(rows)
            cursor += len(rows)
        base = Table.from_rows(self.schema, all_rows)
        return StratifiedSample(base, self.grouping_columns, strata)


class SampleMaintainer(ABC):
    """Interface for the incremental maintenance algorithms of Section 6."""

    def __init__(self, schema: Schema, grouping_columns: Sequence[str]):
        for name in grouping_columns:
            schema.column(name)
        self.schema = schema
        self.grouping_columns = tuple(grouping_columns)
        self._key_of = KeyExtractor(schema, grouping_columns)
        #: Rows consumed so far; :class:`~repro.aqua.guard.SynopsisHealth`
        #: reports it to show how far the maintainer tracks the stream.
        self.inserts_seen = 0

    @abstractmethod
    def insert(self, row: Sequence) -> None:
        """Process one newly-inserted relation tuple."""

    def insert_many(self, rows: Iterable[Sequence]) -> None:
        for row in rows:
            self.insert(row)
            self.inserts_seen += 1

    def insert_table(self, table: Table) -> None:
        """Stream an entire table through the maintainer."""
        self.insert_many(table.iter_rows())

    @abstractmethod
    def snapshot(self) -> MaintainedSample:
        """Produce the current sample (without disturbing internal state)."""
