"""The Section 4.6 "top-up" construction of a congressional sample.

The paper's third definition of Congress is the pseudocode::

    compute f using Equation 6
    for i = 0, 1, ..., |G|
      for each T ⊆ G with |T| = i
        for each nonempty group g under grouping T
          let s_g be the number of sampled tuples selected for g in any
              previous sampling for a grouping T' ⊂ T
          if (s_g < f * X / m_T) then
            select f*X/m_T - s_g additional tuples uniformly at random
            from group g

It "explicitly exploits the fact that a uniform random sample for a group
g under grouping T can use the sampled tuples from g in any previously
selected uniform random sample for a grouping T' ⊂ T": groupings are
visited coarse-to-fine, and each group only *tops up* what coarser
groupings already contributed.

The result is a per-finest-group sample whose expected sizes match
Congress's Equation 5 targets ("in practice, the difference between these
approaches is negligible" -- verified in the ablation benchmark).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Set

import numpy as np

from ..core.congress import Congress
from ..engine.table import Table
from ..sampling.groups import (
    GroupKey,
    all_groupings,
    finest_group_ids,
    project_key,
)
from ..sampling.stratified import StratifiedSample, Stratum

__all__ = ["construct_congress_topup"]


def construct_congress_topup(
    table: Table,
    grouping_columns: Sequence[str],
    budget: float,
    rng: Optional[np.random.Generator] = None,
) -> StratifiedSample:
    """Build a congressional sample by coarse-to-fine top-up sampling.

    Args:
        table: base relation.
        grouping_columns: the grouping set ``G``.
        budget: the space budget ``X``.
        rng: numpy generator.

    Returns:
        A :class:`StratifiedSample` over the finest partitioning whose
        strata hold the union of all top-up draws.
    """
    rng = rng if rng is not None else np.random.default_rng()
    grouping_columns = tuple(grouping_columns)

    ids, keys = finest_group_ids(table, grouping_columns)
    bincounts = np.bincount(ids, minlength=len(keys))
    counts = {key: int(bincounts[i]) for i, key in enumerate(keys)}

    # Equation 6's scale-down factor from the standard Congress allocation.
    allocation = Congress().allocate(counts, grouping_columns, budget)
    factor = allocation.scale_down_factor

    # Per finest group: row indices (into the table) and the selected set.
    order = np.argsort(ids, kind="stable")
    boundaries = np.searchsorted(ids[order], np.arange(len(keys) + 1))
    members: Dict[GroupKey, np.ndarray] = {
        key: order[boundaries[i] : boundaries[i + 1]]
        for i, key in enumerate(keys)
    }
    selected: Dict[GroupKey, Set[int]] = {key: set() for key in keys}

    # Visit groupings coarse-to-fine (all_groupings orders by subset size).
    for target in all_groupings(grouping_columns):
        # Group the finest keys by their projection under `target`.
        by_coarse: Dict[GroupKey, List[GroupKey]] = {}
        for key in keys:
            coarse = project_key(key, grouping_columns, target)
            by_coarse.setdefault(coarse, []).append(key)
        m_t = len(by_coarse)
        share = factor * budget / m_t
        for coarse, subgroup_keys in by_coarse.items():
            already = sum(len(selected[key]) for key in subgroup_keys)
            deficit = share - already
            if deficit <= 0:
                continue
            # Candidates: group members not yet selected, across subgroups.
            candidates = np.concatenate(
                [
                    members[key][
                        ~np.isin(
                            members[key],
                            np.fromiter(selected[key], dtype=np.int64,
                                        count=len(selected[key])),
                        )
                    ]
                    if selected[key]
                    else members[key]
                    for key in subgroup_keys
                ]
            )
            want = min(int(round(deficit)), len(candidates))
            if want <= 0:
                continue
            chosen = rng.choice(candidates, size=want, replace=False)
            for row_index in chosen.tolist():
                selected[keys[ids[row_index]]].add(int(row_index))

    strata = {
        key: Stratum(
            key,
            counts[key],
            np.asarray(sorted(selected[key]), dtype=np.int64),
        )
        for key in keys
    }
    return StratifiedSample(table, grouping_columns, strata)
