"""Incremental maintenance of Congress samples via Equation 8 (Section 6).

Invariant: every tuple ``τ`` of the relation is in the sample with
probability ``p(τ) = min(1, max_{T ⊆ G} Y / (m_T * n_{g(τ,T)}))``, where the
``m_T`` and ``n_h`` counters live in a :class:`CountDataCube`.

Because both ``m_T`` and ``n_h`` only grow under insertions, ``p(τ)`` only
*decreases* over time, so the invariant can be restored without touching the
base relation: when a group's selection probability has dropped from ``p``
to ``q`` since its members were last reconciled, each member survives an
independent coin flip with probability ``q/p`` (the [GM98] process the paper
cites).  All tuples of the same finest group share one probability, so we
store a single ``p`` per group and *settle* groups lazily:

* the inserted tuple's own group is settled on every insert (cheap: its
  probability was just recomputed anyway);
* all groups are settled in :meth:`snapshot`.

Per-insert bookkeeping is ``O(2^|G|)`` counter updates, exactly as the paper
notes.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..engine.schema import Schema
from ..sampling.bernoulli import thin_to_probability
from ..sampling.groups import GroupKey
from .base import MaintainedSample, SampleMaintainer
from .datacube import CountDataCube

__all__ = ["CongressMaintainer"]


class CongressMaintainer(SampleMaintainer):
    """Probability-based Congress maintenance (Equation 8)."""

    def __init__(
        self,
        schema: Schema,
        grouping_columns: Sequence[str],
        budget: float,
        rng: Optional[np.random.Generator] = None,
        settle_every: int = 0,
    ):
        """Args:
        schema: relation schema.
        grouping_columns: the stratification columns ``G``.
        budget: the paper's ``Y`` -- the target (pre-scale-down) size knob.
        rng: numpy generator.
        settle_every: if > 0, settle *all* groups each time this many
            inserts have accumulated (bounds staleness between snapshots;
            0 = settle only the touched group, plus at snapshot time).
        """
        super().__init__(schema, grouping_columns)
        if budget < 0:
            raise ValueError(f"budget must be >= 0, got {budget}")
        self._budget = float(budget)
        self._rng = rng if rng is not None else np.random.default_rng()
        self._cube = CountDataCube(grouping_columns)
        self._members: Dict[GroupKey, List[Tuple]] = {}
        self._stored_p: Dict[GroupKey, float] = {}
        self._settle_every = settle_every
        self._since_settle = 0

    @property
    def budget(self) -> float:
        return self._budget

    @property
    def cube(self) -> CountDataCube:
        return self._cube

    def current_probability(self, key: GroupKey) -> float:
        """The Eq. 8 selection probability for tuples of group ``key`` now."""
        return self._cube.selection_probability(tuple(key), self._budget)

    def _settle(self, key: GroupKey) -> float:
        """Re-flip group members down to the current probability.

        Returns the (settled) current probability.  Members were uniformly
        retained at the stored probability ``p >= q``; after thinning each
        survives with marginal probability exactly ``q``.
        """
        current = self.current_probability(key)
        stored = self._stored_p.get(key)
        if stored is None:
            self._stored_p[key] = current
            return current
        if current < stored - 1e-15:
            members = self._members.get(key, [])
            if members:
                self._members[key] = thin_to_probability(
                    members, stored, current, self._rng
                )
            self._stored_p[key] = current
        return self._stored_p[key]

    def settle_all(self) -> None:
        """Reconcile every group with the current counters."""
        for key in list(self._stored_p):
            self._settle(key)
        self._since_settle = 0

    def insert(self, row: Sequence) -> None:
        row = tuple(row)
        key = self._key_of(row)
        self._cube.observe(key)
        probability = self._settle(key)
        if self._rng.random() < probability:
            self._members.setdefault(key, []).append(row)
        self._since_settle += 1
        if self._settle_every and self._since_settle >= self._settle_every:
            self.settle_all()

    def snapshot(self) -> MaintainedSample:
        self.settle_all()
        rows_by_group = {
            key: list(members)
            for key, members in self._members.items()
            if members
        }
        return MaintainedSample(
            schema=self.schema,
            grouping_columns=self.grouping_columns,
            rows_by_group=rows_by_group,
            populations=self._cube.finest_counts(),
        )

    # -- introspection ---------------------------------------------------

    def expected_sizes(self) -> Dict[GroupKey, float]:
        """Current ``n_g * p_g`` per group (the pre-scale-down targets)."""
        out = {}
        for key, n_g in self._cube.finest_counts().items():
            out[key] = n_g * self.current_probability(key)
        return out
