"""Count data cube over all groupings of the grouping attributes.

Section 6 of the paper: "Given a data cube of the counts of each group in
all possible groupings, the target sizes are known, and any of our biased
samples can be constructed in one pass."  This module provides that cube --
for every grouping ``T ⊆ G`` it tracks ``m_T`` (the number of non-empty
groups under ``T``) and ``n_h`` for each group ``h`` -- maintained
incrementally at O(2^|G|) counter updates per inserted tuple, which is also
exactly the bookkeeping the Eq. 8 Congress maintainer needs.
"""

from __future__ import annotations

from typing import Dict, Mapping, Sequence, Tuple

from ..engine.table import Table
from ..sampling.groups import GroupKey, all_groupings, group_counts

__all__ = ["CountDataCube"]


class CountDataCube:
    """Group counts for every grouping ``T ⊆ G``, incrementally updated."""

    def __init__(self, grouping_columns: Sequence[str]):
        self._grouping_columns = tuple(grouping_columns)
        self._groupings: Tuple[Tuple[str, ...], ...] = tuple(
            all_groupings(self._grouping_columns)
        )
        # Precompute key positions per grouping to avoid per-insert lookups.
        positions = {name: i for i, name in enumerate(self._grouping_columns)}
        self._projections: Dict[Tuple[str, ...], Tuple[int, ...]] = {
            target: tuple(positions[name] for name in target)
            for target in self._groupings
        }
        self._counts: Dict[Tuple[str, ...], Dict[GroupKey, int]] = {
            target: {} for target in self._groupings
        }
        self._total = 0

    # -- construction --------------------------------------------------------

    @classmethod
    def from_table(
        cls, table: Table, grouping_columns: Sequence[str]
    ) -> "CountDataCube":
        """Build the cube from a materialized relation in one pass."""
        cube = cls(grouping_columns)
        finest = group_counts(table, grouping_columns)
        cube.observe_counts(finest)
        return cube

    def observe(self, key: GroupKey) -> None:
        """Record one tuple belonging to finest group ``key``."""
        self.observe_counts({tuple(key): 1})

    def observe_counts(self, finest_counts: Mapping[GroupKey, int]) -> None:
        """Record many tuples at once from finest-group counts."""
        for key, count in finest_counts.items():
            if count < 0:
                raise ValueError(f"negative count for group {key}: {count}")
            self._total += count
            for target in self._groupings:
                positions = self._projections[target]
                projected = tuple(key[i] for i in positions)
                bucket = self._counts[target]
                bucket[projected] = bucket.get(projected, 0) + count

    # -- accessors -----------------------------------------------------------

    @property
    def grouping_columns(self) -> Tuple[str, ...]:
        return self._grouping_columns

    @property
    def groupings(self) -> Tuple[Tuple[str, ...], ...]:
        return self._groupings

    @property
    def total(self) -> int:
        """Total number of tuples observed (``|R|``)."""
        return self._total

    def num_groups(self, target: Sequence[str]) -> int:
        """``m_T``: non-empty groups under grouping ``target``."""
        return len(self._counts[tuple(target)])

    def count(self, target: Sequence[str], group: GroupKey) -> int:
        """``n_h`` for group ``h`` under grouping ``target`` (0 if unseen)."""
        return self._counts[tuple(target)].get(tuple(group), 0)

    def counts(self, target: Sequence[str]) -> Dict[GroupKey, int]:
        """All group counts under ``target`` (copy)."""
        return dict(self._counts[tuple(target)])

    def finest_counts(self) -> Dict[GroupKey, int]:
        """Counts at the finest partitioning (grouping = ``G``)."""
        return dict(self._counts[self._grouping_columns])

    def selection_probability(self, key: GroupKey, budget: float) -> float:
        """Equation 8's (un-normalized) per-tuple selection probability.

        ``max_{T ⊆ G} budget / (m_T * n_{g(τ,T)})`` for a tuple in finest
        group ``key``, clamped to 1.  This is what the Eq. 8 Congress
        maintainer keeps as its acceptance probability.
        """
        best = 0.0
        for target in self._groupings:
            positions = self._projections[target]
            projected = tuple(key[i] for i in positions)
            m_t = len(self._counts[target])
            n_h = self._counts[target].get(projected, 0)
            if m_t == 0 or n_h == 0:
                continue
            best = max(best, budget / (m_t * n_h))
        return min(1.0, best)
