"""Incremental maintenance of House and Senate samples (Section 6).

*House* is a single size-``X`` reservoir over the whole stream; per-group
populations are tracked on the side so the result can be treated as a
(post-stratified) stratified sample by the shared estimator machinery.

*Senate* keeps one reservoir per non-empty group of target size ``X/m``.
When a tuple of a never-seen group arrives, ``m`` grows, per-group targets
drop to ``X/(m+1)``, and over-target reservoirs are shrunk by uniform random
eviction -- which preserves per-group uniformity (Theorem 6.1's observation
that uniformity survives random eviction without insertion).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..engine.schema import Schema
from ..sampling.groups import GroupKey
from ..sampling.reservoir import ReservoirSampler, SkipReservoirSampler
from .base import MaintainedSample, SampleMaintainer

__all__ = ["HouseMaintainer", "SenateMaintainer"]


class HouseMaintainer(SampleMaintainer):
    """Classic uniform reservoir of the whole relation."""

    def __init__(
        self,
        schema: Schema,
        grouping_columns: Sequence[str],
        capacity: int,
        rng: Optional[np.random.Generator] = None,
    ):
        super().__init__(schema, grouping_columns)
        if capacity < 0:
            raise ValueError(f"capacity must be >= 0, got {capacity}")
        self._rng = rng if rng is not None else np.random.default_rng()
        self._reservoir: SkipReservoirSampler = SkipReservoirSampler(
            capacity, self._rng
        )
        self._populations: Dict[GroupKey, int] = {}

    @property
    def seen(self) -> int:
        return self._reservoir.seen

    def insert(self, row: Sequence) -> None:
        key = self._key_of(row)
        self._populations[key] = self._populations.get(key, 0) + 1
        self._reservoir.offer(tuple(row))

    def snapshot(self) -> MaintainedSample:
        rows_by_group: Dict[GroupKey, List[Tuple]] = {}
        for row in self._reservoir.items():
            rows_by_group.setdefault(self._key_of(row), []).append(row)
        return MaintainedSample(
            schema=self.schema,
            grouping_columns=self.grouping_columns,
            rows_by_group=rows_by_group,
            populations=dict(self._populations),
        )


class SenateMaintainer(SampleMaintainer):
    """Per-group reservoirs, retargeted to ``X/m`` as groups appear."""

    def __init__(
        self,
        schema: Schema,
        grouping_columns: Sequence[str],
        capacity: int,
        rng: Optional[np.random.Generator] = None,
    ):
        super().__init__(schema, grouping_columns)
        if capacity < 0:
            raise ValueError(f"capacity must be >= 0, got {capacity}")
        self._capacity = capacity
        self._rng = rng if rng is not None else np.random.default_rng()
        self._reservoirs: Dict[GroupKey, ReservoirSampler] = {}
        self._populations: Dict[GroupKey, int] = {}

    @property
    def num_groups(self) -> int:
        return len(self._reservoirs)

    def _retarget(self) -> None:
        """Drop per-group targets to ``X // m`` after a new group appears.

        Only ever *shrinks* existing reservoirs (uniform random eviction
        preserves uniformity); growing a partially-drained reservoir would
        bias it toward future arrivals, so freed space is simply not
        reclaimed until groups churn -- the paper's lazy-eviction policy.
        """
        m = len(self._reservoirs)
        if m == 0:
            return
        target = self._capacity // m
        for sampler in self._reservoirs.values():
            if sampler.capacity > target:
                sampler.shrink_to(target)

    def insert(self, row: Sequence) -> None:
        key = self._key_of(row)
        self._populations[key] = self._populations.get(key, 0) + 1
        reservoir = self._reservoirs.get(key)
        if reservoir is None:
            target = self._capacity // (len(self._reservoirs) + 1)
            reservoir = ReservoirSampler(target, self._rng)
            self._reservoirs[key] = reservoir
            self._retarget()
        reservoir.offer(tuple(row))

    def snapshot(self) -> MaintainedSample:
        rows_by_group = {
            key: [tuple(row) for row in sampler.items()]
            for key, sampler in self._reservoirs.items()
        }
        return MaintainedSample(
            schema=self.schema,
            grouping_columns=self.grouping_columns,
            rows_by_group=rows_by_group,
            populations=dict(self._populations),
        )
