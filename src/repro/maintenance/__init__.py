"""One-pass construction and incremental maintenance (Section 6)."""

from .base import KeyExtractor, MaintainedSample, SampleMaintainer
from .basic_congress import BasicCongressMaintainer
from .congress import CongressMaintainer
from .datacube import CountDataCube
from .house_senate import HouseMaintainer, SenateMaintainer
from .onepass import (
    construct_from_cube,
    construct_one_pass,
    maintainer_for,
    subsample_to_budget,
)
from .topup import construct_congress_topup

__all__ = [
    "BasicCongressMaintainer",
    "CongressMaintainer",
    "CountDataCube",
    "HouseMaintainer",
    "KeyExtractor",
    "MaintainedSample",
    "SampleMaintainer",
    "SenateMaintainer",
    "construct_congress_topup",
    "construct_from_cube",
    "construct_one_pass",
    "maintainer_for",
    "subsample_to_budget",
]
