"""One-pass construction drivers (Section 6).

Two routes to a congressional sample without a precomputed data cube:

* run the corresponding incremental maintainer over the stream with
  ``Y = X``, then *subsample* the floating-size result down to the fixed
  budget ``X`` (``run the algorithm with Y = X, computing the scale down
  factor, and then subsampling the sample to achieve the desired size X``);
* or, when a :class:`~repro.maintenance.datacube.CountDataCube` *is*
  available, compute exact target sizes and reservoir-sample each group in
  one pass (:func:`construct_from_cube`).
"""

from __future__ import annotations

import time
from typing import Dict, Iterable, Optional, Sequence, Union

import numpy as np

from ..core.allocation import AllocationStrategy
from ..engine.schema import Schema
from ..engine.table import Table
from ..obs import Telemetry
from ..sampling.bernoulli import subsample_exact
from ..sampling.groups import GroupKey
from ..sampling.rounding import largest_remainder_round
from ..sampling.stratified import StratifiedSample
from .base import MaintainedSample, SampleMaintainer
from .basic_congress import BasicCongressMaintainer
from .congress import CongressMaintainer
from .datacube import CountDataCube
from .house_senate import HouseMaintainer, SenateMaintainer

__all__ = [
    "subsample_to_budget",
    "construct_one_pass",
    "construct_from_cube",
    "maintainer_for",
]

RowStream = Iterable[Sequence]


def subsample_to_budget(
    maintained: MaintainedSample,
    budget: int,
    rng: Optional[np.random.Generator] = None,
) -> MaintainedSample:
    """Uniformly subsample each group so the total sample size is ``budget``.

    Per-group targets are proportional to realized sizes (this applies the
    scale-down factor ``f`` of Equation 6 empirically), rounded by largest
    remainder so the final total is exact.  Subsampling a uniform sample
    uniformly yields a uniform sample, so stratum validity is preserved.
    """
    rng = rng if rng is not None else np.random.default_rng()
    sizes = maintained.sample_sizes()
    total = sum(sizes.values())
    if total <= budget:
        return maintained
    factor = budget / total
    fractional = {key: size * factor for key, size in sizes.items()}
    targets = largest_remainder_round(fractional, total=budget, caps=sizes)
    rows_by_group: Dict[GroupKey, list] = {}
    for key, rows in maintained.rows_by_group.items():
        kept = subsample_exact(rows, targets.get(key, 0), rng)
        if kept:
            rows_by_group[key] = kept
    return MaintainedSample(
        schema=maintained.schema,
        grouping_columns=maintained.grouping_columns,
        rows_by_group=rows_by_group,
        populations=dict(maintained.populations),
    )


def maintainer_for(
    strategy_name: str,
    schema: Schema,
    grouping_columns: Sequence[str],
    budget: int,
    rng: Optional[np.random.Generator] = None,
) -> SampleMaintainer:
    """Instantiate the Section 6 maintainer for an allocation strategy name."""
    name = strategy_name.lower()
    if name == "house":
        return HouseMaintainer(schema, grouping_columns, budget, rng)
    if name == "senate":
        return SenateMaintainer(schema, grouping_columns, budget, rng)
    if name == "basic_congress":
        return BasicCongressMaintainer(schema, grouping_columns, budget, rng)
    if name == "congress":
        return CongressMaintainer(schema, grouping_columns, budget, rng)
    raise ValueError(
        f"no maintainer for strategy {strategy_name!r}; choose from "
        "house, senate, basic_congress, congress"
    )


def construct_one_pass(
    strategy_name: str,
    source: Union[Table, RowStream],
    schema: Schema,
    grouping_columns: Sequence[str],
    budget: int,
    rng: Optional[np.random.Generator] = None,
    telemetry: Optional[Telemetry] = None,
) -> StratifiedSample:
    """Build a sample in one pass over ``source`` without a data cube.

    Runs the strategy's maintainer with ``Y = budget`` and subsamples the
    result to exactly ``budget`` tuples (when it overshoots).

    Args:
        telemetry: optional :class:`~repro.obs.Telemetry`; when enabled,
            the stream and subsample phases get spans and the construction
            is recorded under ``aqua_onepass_construct_seconds`` /
            ``aqua_onepass_rows_total``.
    """
    rng = rng if rng is not None else np.random.default_rng()
    telemetry = telemetry if telemetry is not None else Telemetry.disabled()
    tracer = telemetry.tracer
    start = time.perf_counter()
    maintainer = maintainer_for(strategy_name, schema, grouping_columns, budget, rng)
    with tracer.span("onepass_stream", strategy=strategy_name) as stream_span:
        if isinstance(source, Table):
            maintainer.insert_table(source)
        else:
            maintainer.insert_many(source)
        stream_span.set(rows=maintainer.inserts_seen)
    with tracer.span("onepass_subsample", strategy=strategy_name):
        maintained = maintainer.snapshot()
        maintained = subsample_to_budget(maintained, budget, rng)
        sample = maintained.to_stratified()
    metrics = telemetry.metrics
    if metrics.enabled:
        metrics.histogram(
            "aqua_onepass_construct_seconds",
            "Wall time of one-pass sample construction.",
            ("strategy",),
        ).observe(time.perf_counter() - start, strategy=strategy_name)
        metrics.counter(
            "aqua_onepass_rows_total",
            "Stream rows consumed by one-pass construction.",
            ("strategy",),
        ).inc(maintainer.inserts_seen, strategy=strategy_name)
    return sample


def construct_from_cube(
    strategy: AllocationStrategy,
    cube: CountDataCube,
    table: Table,
    budget: float,
    rng: Optional[np.random.Generator] = None,
) -> StratifiedSample:
    """Build a sample in one pass given a precomputed count data cube.

    With the cube the exact per-group targets are known up front, so a
    single pass of independent per-group reservoirs (here: vectorized
    choice without replacement) materializes the sample.
    """
    counts = cube.finest_counts()
    allocation = strategy.allocate(counts, cube.grouping_columns, budget)
    return StratifiedSample.build(
        table, cube.grouping_columns, allocation.rounded(), rng=rng
    )
