"""Typed error taxonomy for the Aqua middleware.

Every failure mode the middleware can detect maps to a distinct
:class:`AquaError` subclass, so callers (and the CLI shell) can react to
*what* went wrong instead of pattern-matching message strings or -- worse --
catching ``KeyError`` and masking real bugs.  The taxonomy lives at the
package root so low-level layers (e.g. :mod:`repro.rewrite`) can raise typed
errors without importing the :mod:`repro.aqua` package and creating an
import cycle.
"""

from __future__ import annotations

from typing import Optional

__all__ = [
    "AquaError",
    "TableNotRegisteredError",
    "SynopsisMissingError",
    "StaleSynopsisError",
    "SynopsisCorruptError",
    "GuardViolationError",
    "StreamError",
    "TransientError",
    "ServeError",
    "OverloadError",
    "RateLimitExceeded",
    "DeadlineExceeded",
    "CircuitOpenError",
]


class AquaError(RuntimeError):
    """Base class for all Aqua middleware failures."""


class TableNotRegisteredError(AquaError):
    """A query or admin call referenced a table Aqua does not know about."""


class SynopsisMissingError(AquaError):
    """The table is registered but no synopsis has been built for it."""


class StaleSynopsisError(AquaError):
    """The synopsis has drifted past the guard policy's staleness limit."""


class SynopsisCorruptError(AquaError):
    """Synopsis state failed validation (bad scale factors, indices, ...)."""


class GuardViolationError(AquaError):
    """An answer failed the guard policy and every fallback is disabled."""


class StreamError(AquaError):
    """A query cannot be answered progressively by ``sql_stream``.

    Raised for non-streamable shapes (nested FROM subqueries, no
    aggregates, joins) and invalid streaming knobs (``chunk_rows < 1``,
    non-positive ``until_rel_error``) -- always before the first chunk,
    so a caller never sees a half-emitted stream die on a bad argument.
    """


class TransientError(AquaError):
    """A fault expected to clear on retry (torn read, racing refresh, ...).

    The serving layer's retry policy treats this class (and the
    deterministic fault injector's error bursts, which raise it) as
    retryable; everything else fails fast.
    """


class ServeError(AquaError):
    """Base class for failures raised by the concurrent serving layer."""


class OverloadError(ServeError):
    """Admission control rejected the query: the queue is full.

    The 429 of the taxonomy -- the request was never executed, so the
    caller may safely retry after ``retry_after_seconds``.
    """

    def __init__(self, message: str, retry_after_seconds: float = 0.05):
        super().__init__(message)
        self.retry_after_seconds = retry_after_seconds


class RateLimitExceeded(ServeError):
    """The tenant's token bucket is empty; the query was not admitted."""

    def __init__(self, message: str, tenant: str = "", retry_after_seconds: float = 0.05):
        super().__init__(message)
        self.tenant = tenant
        self.retry_after_seconds = retry_after_seconds


class DeadlineExceeded(ServeError):
    """A per-query deadline expired; execution aborted cooperatively.

    ``stage`` names the pipeline stage or plan operator the query died in
    (``"queue"``, ``"validate"``, ``"op_groupby"``, ``"parallel_scan"``,
    ``"scan"``, ...), so callers can tell a query that never started from
    one killed mid-scan.
    """

    def __init__(
        self,
        message: str,
        stage: Optional[str] = None,
        elapsed_seconds: Optional[float] = None,
    ):
        super().__init__(message)
        self.stage = stage
        self.elapsed_seconds = elapsed_seconds


class CircuitOpenError(ServeError):
    """The table's circuit breaker is open and degradation is disabled."""
