"""Typed error taxonomy for the Aqua middleware.

Every failure mode the middleware can detect maps to a distinct
:class:`AquaError` subclass, so callers (and the CLI shell) can react to
*what* went wrong instead of pattern-matching message strings or -- worse --
catching ``KeyError`` and masking real bugs.  The taxonomy lives at the
package root so low-level layers (e.g. :mod:`repro.rewrite`) can raise typed
errors without importing the :mod:`repro.aqua` package and creating an
import cycle.
"""

from __future__ import annotations

__all__ = [
    "AquaError",
    "TableNotRegisteredError",
    "SynopsisMissingError",
    "StaleSynopsisError",
    "SynopsisCorruptError",
    "GuardViolationError",
]


class AquaError(RuntimeError):
    """Base class for all Aqua middleware failures."""


class TableNotRegisteredError(AquaError):
    """A query or admin call referenced a table Aqua does not know about."""


class SynopsisMissingError(AquaError):
    """The table is registered but no synopsis has been built for it."""


class StaleSynopsisError(AquaError):
    """The synopsis has drifted past the guard policy's staleness limit."""


class SynopsisCorruptError(AquaError):
    """Synopsis state failed validation (bad scale factors, indices, ...)."""


class GuardViolationError(AquaError):
    """An answer failed the guard policy and every fallback is disabled."""
