"""The seeded Zipf testbed the verification harness calibrates against.

One :class:`Testbed` owns a skewed ``lineitem`` relation (the paper's
Section 7.1.1 generator), the query classes of Table 2 (``Q_g2``,
``Q_g3``, one deterministic ``Q_g0`` range query) plus a COUNT/AVG
calibration query, and the exact per-group ground truth for each of them.
Everything is derived from a single seed, so a calibration run is fully
reproducible.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple


from ..engine.catalog import Catalog
from ..engine.executor import execute
from ..engine.table import Table
from ..sampling.groups import GroupKey, make_key
from ..synthetic.queries import QueryClass, qg0, qg2, qg3
from ..synthetic.tpcd import GROUPING_COLUMNS, LineitemConfig, generate_lineitem

__all__ = ["Testbed", "TestbedConfig", "qmix", "result_by_group"]

TABLE_NAME = "lineitem"


def qmix(table_name: str = TABLE_NAME) -> QueryClass:
    """COUNT/AVG calibration query over the ``Q_g2`` grouping.

    The paper's Table 2 queries are all SUMs; the unbiasedness contract of
    Section 5.1 also covers COUNT (exactly unbiased) and AVG
    (asymptotically unbiased), so the harness exercises them explicitly.
    """
    sql = (
        "SELECT l_returnflag, l_linestatus, "
        "count(*) AS cnt, avg(l_quantity) AS avg_qty "
        f"FROM {table_name} "
        "GROUP BY l_returnflag, l_linestatus"
    )
    return QueryClass("Qmix", sql)


@dataclass(frozen=True)
class TestbedConfig:
    """Size/skew knobs for the calibration relation.

    Defaults are the quick-mode testbed: small enough that hundreds of
    replications finish in seconds, large enough that every finest group
    receives multiple sample tuples under every allocation (so coverage is
    measured on the estimators, not on degenerate single-tuple strata).
    """

    __test__ = False  # not a pytest class, despite the name

    table_size: int = 4000
    num_groups: int = 27
    group_skew: float = 0.86
    aggregate_skew: float = 0.86
    seed: int = 0
    query_names: Tuple[str, ...] = ("Qg2", "Qg3", "Qg0", "Qmix")
    qg0_selectivity: float = 0.2

    def to_dict(self) -> dict:
        return {
            "table_size": self.table_size,
            "num_groups": self.num_groups,
            "group_skew": self.group_skew,
            "aggregate_skew": self.aggregate_skew,
            "seed": self.seed,
            "query_names": list(self.query_names),
            "qg0_selectivity": self.qg0_selectivity,
        }


def result_by_group(
    table: Table, group_by: Sequence[str], aliases: Sequence[str]
) -> Dict[str, Dict[GroupKey, float]]:
    """``alias -> group key -> value`` from an executed answer table."""
    if group_by:
        key_arrays = [table.column(name) for name in group_by]
        keys = [
            make_key(tuple(arr[i] for arr in key_arrays))
            for i in range(table.num_rows)
        ]
    else:
        keys = [() for __ in range(table.num_rows)]
    out: Dict[str, Dict[GroupKey, float]] = {}
    for alias in aliases:
        values = table.column(alias)
        out[alias] = {
            key: float(values[i]) for i, key in enumerate(keys)
        }
    return out


class Testbed:
    """Seeded relation + query classes + exact ground truth."""

    __test__ = False  # not a pytest class, despite the name

    def __init__(self, config: TestbedConfig):
        self.config = config
        self.table = generate_lineitem(
            LineitemConfig(
                table_size=config.table_size,
                num_groups=config.num_groups,
                group_skew=config.group_skew,
                aggregate_skew=config.aggregate_skew,
                seed=config.seed,
            )
        )
        self.grouping_columns: Tuple[str, ...] = GROUPING_COLUMNS
        self.catalog = Catalog()
        self.catalog.register(TABLE_NAME, self.table)
        self.queries: List[QueryClass] = [
            self._make_query(name) for name in config.query_names
        ]
        self._truth: Dict[str, Dict[str, Dict[GroupKey, float]]] = {}

    def _make_query(self, name: str) -> QueryClass:
        if name == "Qg2":
            return qg2()
        if name == "Qg3":
            return qg3()
        if name == "Qmix":
            return qmix()
        if name == "Qg0":
            # One deterministic range query: the middle
            # ``qg0_selectivity`` slice of the key space.
            count = max(1, int(round(self.config.qg0_selectivity
                                     * self.config.table_size)))
            start = max(1, (self.config.table_size - count) // 2)
            return qg0(start, count)
        raise ValueError(f"unknown testbed query class {name!r}")

    def truth(self, query_class: QueryClass) -> Dict[str, Dict[GroupKey, float]]:
        """Exact ``alias -> group -> value``, computed once and cached."""
        cached = self._truth.get(query_class.name)
        if cached is not None:
            return cached
        query = query_class.query
        exact = execute(query, self.catalog)
        truth = result_by_group(
            exact,
            list(query.group_by),
            [a.alias for a in query.aggregates()],
        )
        self._truth[query_class.name] = truth
        return truth
