"""Replication-based calibration of the portfolio budget contract.

The calibration campaign (:mod:`repro.verify.calibration`) checks the
*estimator* layer: bounds attached to raw congressional samples.  This
cell checks the *serving* contract one level up: when a query is answered
through :meth:`~repro.aqua.system.AquaSystem.answer` with
``max_rel_error=e``, the full pipeline -- portfolio member selection,
plan rewrite, guard escalation -- must deliver answers whose per-group
error actually stays within ``e`` at least as often as the system's
confidence level promises.

Per replication a fresh :class:`~repro.aqua.AquaSystem` is built over the
seeded Zipf testbed, a default three-member portfolio is constructed, and
every configured query class is answered under every error budget.  Two
things are scored:

* **promise honesty** -- the answer's promised relative error must never
  exceed the requested budget (this is structural: the budget tightens
  the guard policy, so a violation is a wiring defect, not noise);
* **coverage** -- the fraction of (replication, answer group, aggregate)
  trials whose observed relative error ``|estimate - truth|`` stayed
  within ``e * |estimate|`` must be at or above the nominal confidence,
  with the same Wilson tolerance band as the estimator campaign.  The
  bounds behind the promise are Chebyshev (conservative), so only
  under-coverage is a defect; groups the guard repaired or answered
  exactly count as (trivially covered) trials -- the contract is on the
  served answer, whatever provenance produced it.

Results are recorded alongside the estimator campaign in
``benchmarks/results/CALIBRATION.json`` via
:class:`~repro.verify.report.VerificationReport`.
"""

from __future__ import annotations

import time
from collections import Counter
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..aqua import AquaSystem
from .stats import CoverageCheck, check_coverage
from .testbed import TABLE_NAME, Testbed, TestbedConfig, result_by_group

__all__ = [
    "BudgetCell",
    "PortfolioCellConfig",
    "PortfolioCalibrationResult",
    "run_portfolio_calibration",
]

#: Tolerance for "promised <= budget" comparisons (float roundoff only --
#: the guard tightening makes the inequality structural).
_PROMISE_RTOL = 1e-9


@dataclass(frozen=True)
class PortfolioCellConfig:
    """One portfolio-contract campaign.

    Attributes:
        seed: master seed; replications draw from independent spawned
            streams.
        replications: independent portfolio builds per campaign.
        budgets: the ``max_rel_error`` grid every query is served under.
        space_budget: per-synopsis tuple budget handed to the system (the
            default portfolio ladder derives fine/mid/coarse sizes from
            it).
        confidence: the system confidence level; also the nominal level
            the coverage check tests against.
        query_names: testbed query classes to serve.
        testbed: Zipf relation knobs.
        band_confidence: two-sided confidence of the Wilson band.
    """

    seed: int = 2026
    replications: int = 10
    budgets: Tuple[float, ...] = (0.10, 0.30)
    space_budget: int = 600
    confidence: float = 0.95
    query_names: Tuple[str, ...] = ("Qg2", "Qg0")
    testbed: TestbedConfig = field(default_factory=TestbedConfig)
    band_confidence: float = 0.999

    @classmethod
    def quick(cls, seed: int = 2026) -> "PortfolioCellConfig":
        """The CI-sized campaign (a few seconds)."""
        return cls(seed=seed)

    @classmethod
    def full(cls, seed: int = 2026) -> "PortfolioCellConfig":
        """The nightly campaign: more replications, a larger portfolio."""
        return cls(seed=seed, replications=24, space_budget=1200)

    def to_dict(self) -> dict:
        return {
            "seed": self.seed,
            "replications": self.replications,
            "budgets": list(self.budgets),
            "space_budget": self.space_budget,
            "confidence": self.confidence,
            "query_names": list(self.query_names),
            "testbed": self.testbed.to_dict(),
            "band_confidence": self.band_confidence,
        }


@dataclass(frozen=True)
class BudgetCell:
    """Contract verdict for one query class x error budget.

    ``promise_violations`` counts answers whose promised relative error
    exceeded the requested budget -- always a defect.  ``missing`` counts
    truth groups absent from the served answer (the guard repairs empty
    strata, so this should be zero on the testbed).  ``chosen`` tallies
    which portfolio member served each replication.
    """

    query: str
    budget: float
    check: CoverageCheck
    chosen: Dict[str, int]
    promise_violations: int = 0
    missing: int = 0

    @property
    def failed(self) -> bool:
        return self.check.failed or self.promise_violations > 0

    def to_dict(self) -> dict:
        out = {
            "query": self.query,
            "budget": self.budget,
            "chosen": dict(self.chosen),
            "promise_violations": self.promise_violations,
            "missing": self.missing,
            "failed": self.failed,
        }
        out.update(self.check.to_dict())
        return out


@dataclass
class PortfolioCalibrationResult:
    """Everything one portfolio-contract campaign measured."""

    config: PortfolioCellConfig
    cells: List[BudgetCell]
    elapsed_seconds: float

    @property
    def flags(self) -> List[str]:
        out: List[str] = []
        for cell in self.cells:
            if cell.promise_violations:
                out.append(
                    f"portfolio {cell.query} @ budget {cell.budget}: "
                    f"{cell.promise_violations} answer(s) promised a "
                    f"relative error above the requested budget"
                )
            if cell.check.failed:
                out.append(
                    f"portfolio {cell.query} @ budget {cell.budget}: "
                    f"observed-error coverage {cell.check.coverage:.4f} "
                    f"below nominal {cell.check.nominal} (Wilson band "
                    f"[{cell.check.band_low:.4f}, "
                    f"{cell.check.band_high:.4f}], "
                    f"{cell.check.covered}/{cell.check.trials} trials)"
                )
        return out

    @property
    def passed(self) -> bool:
        return not self.flags

    def to_dict(self) -> dict:
        return {
            "config": self.config.to_dict(),
            "passed": self.passed,
            "flags": self.flags,
            "cells": [c.to_dict() for c in self.cells],
            "elapsed_seconds": self.elapsed_seconds,
        }


def run_portfolio_calibration(
    config: Optional[PortfolioCellConfig] = None,
    testbed: Optional[Testbed] = None,
) -> PortfolioCalibrationResult:
    """Run one portfolio-contract campaign (see the module docstring)."""
    config = config or PortfolioCellConfig.quick()
    start = time.perf_counter()
    if testbed is None:
        testbed = Testbed(
            TestbedConfig(
                **{
                    **config.testbed.to_dict(),
                    "query_names": tuple(config.query_names),
                }
            )
        )
    # Prefix match: instantiated classes carry their parameters in the
    # name (e.g. ``Qg0[1600,2400]`` from the ``"Qg0"`` config entry).
    queries = [
        qc
        for qc in testbed.queries
        if any(qc.name.startswith(n) for n in config.query_names)
    ]
    truths = {qc.name: testbed.truth(qc) for qc in queries}

    # (query, budget) -> [covered, trials, promise_violations, missing]
    tallies: Dict[Tuple[str, float], List[int]] = {}
    chosen: Dict[Tuple[str, float], Counter] = {}
    streams = np.random.default_rng(config.seed).spawn(config.replications)
    for stream in streams:
        system = AquaSystem(
            space_budget=config.space_budget,
            confidence=config.confidence,
            rng=stream,
            cache=False,
        )
        system.register_table(
            TABLE_NAME, testbed.table, testbed.grouping_columns
        )
        system.build_portfolio(TABLE_NAME)
        for qc in queries:
            for budget in config.budgets:
                answer = system.answer(qc.query, max_rel_error=budget)
                slot = tallies.setdefault((qc.name, budget), [0, 0, 0, 0])
                picks = chosen.setdefault((qc.name, budget), Counter())
                if answer.chosen_synopsis is not None:
                    picks[answer.chosen_synopsis] += 1
                promised = answer.promised_rel_error
                if promised is not None and promised > budget * (
                    1.0 + _PROMISE_RTOL
                ):
                    slot[2] += 1
                by_group = result_by_group(
                    answer.result,
                    list(qc.query.group_by),
                    [a.alias for a in qc.query.aggregates()],
                )
                for alias, truth in truths[qc.name].items():
                    values = by_group.get(alias, {})
                    for key, true_value in truth.items():
                        estimate = values.get(key)
                        if estimate is None:
                            slot[3] += 1
                            continue
                        slot[1] += 1
                        roundoff = 1e-9 * max(1.0, abs(true_value))
                        if abs(estimate - true_value) <= (
                            budget * abs(estimate) + roundoff
                        ):
                            slot[0] += 1

    cells = [
        BudgetCell(
            query=query,
            budget=budget,
            check=check_coverage(
                covered,
                trials,
                config.confidence,
                "chebyshev",
                config.band_confidence,
            ),
            chosen=dict(chosen[(query, budget)]),
            promise_violations=violations,
            missing=missing,
        )
        for (query, budget), (covered, trials, violations, missing) in sorted(
            tallies.items()
        )
    ]
    return PortfolioCalibrationResult(
        config=config,
        cells=cells,
        elapsed_seconds=time.perf_counter() - start,
    )
