"""Seeded statistical verification of the estimator/bound pipeline.

The subsystem behind ``python -m repro.verify`` and the ``statistical``
pytest marker:

* :mod:`~repro.verify.calibration` -- replication-based CI-coverage and
  unbiasedness calibration over the allocation x rewrite x bound grid;
* :mod:`~repro.verify.metamorphic` -- exact invariants (scale invariance,
  group permutation, subset-sum consistency, parallel == serial == cached);
* :mod:`~repro.verify.portfolio` -- replicated end-to-end checks that
  answers served under ``max_rel_error`` budgets honor the promised
  bound at the nominal coverage level;
* :mod:`~repro.verify.stats` -- Wilson tolerance bands and bias
  t-statistics that make the checks themselves statistically sound;
* :mod:`~repro.verify.testbed` -- the seeded Zipf relation and the
  paper's query classes used as ground truth;
* :mod:`~repro.verify.report` -- the JSON artifact
  (``benchmarks/results/CALIBRATION.json``) and pass/fail roll-up.
"""

from .calibration import (
    ALLOCATION_REGISTRY,
    BiasResult,
    CalibrationConfig,
    CalibrationResult,
    CalibrationRunner,
    CellResult,
    PairSummary,
    allocation_by_name,
    negative_control,
)
from .metamorphic import MetamorphicResult, run_metamorphic
from .portfolio import (
    BudgetCell,
    PortfolioCalibrationResult,
    PortfolioCellConfig,
    run_portfolio_calibration,
)
from .report import (
    DEFAULT_REPORT_PATH,
    VerificationReport,
    run_verification,
)
from .stats import (
    CoverageCheck,
    bias_t_statistic,
    check_coverage,
    wilson_interval,
)
from .testbed import Testbed, TestbedConfig, qmix

__all__ = [
    "ALLOCATION_REGISTRY",
    "BiasResult",
    "BudgetCell",
    "CalibrationConfig",
    "CalibrationResult",
    "CalibrationRunner",
    "CellResult",
    "CoverageCheck",
    "DEFAULT_REPORT_PATH",
    "MetamorphicResult",
    "PairSummary",
    "PortfolioCalibrationResult",
    "PortfolioCellConfig",
    "Testbed",
    "TestbedConfig",
    "VerificationReport",
    "allocation_by_name",
    "bias_t_statistic",
    "check_coverage",
    "negative_control",
    "qmix",
    "run_metamorphic",
    "run_portfolio_calibration",
    "run_verification",
    "wilson_interval",
]
