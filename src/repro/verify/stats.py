"""Statistical machinery for the verification harness.

The calibration check must itself be statistically sound: with ``R``
replications the empirical coverage of a 95% bound is a binomial
proportion, so "coverage equals the nominal level" can only be asserted up
to sampling noise.  We use the Wilson score interval of the *observed*
proportion at a high band confidence (99.9% by default): the check flags a
configuration only when the nominal level falls outside that interval, so
a correctly calibrated estimator is flagged with probability ~0.1% per
cell -- effectively flake-free on a fixed seed, and still sound if the
seed ever changes.

Verdict semantics per bound family:

* exact-level families (the standard-error/normal bound): the nominal
  level should lie *inside* the band -- significant over-coverage is as
  much a calibration defect (the variance estimate is inflated) as
  under-coverage;
* conservative families (Chebyshev, Hoeffding): coverage at or above the
  nominal level is the guarantee, so only "the Wilson upper bound is below
  nominal" is a defect; sitting above the band is the expected
  ``conservative`` verdict.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Tuple

from ..estimators.errors import normal_quantile

__all__ = [
    "CoverageCheck",
    "wilson_interval",
    "check_coverage",
    "bias_t_statistic",
]

# Families whose coverage should sit *at* the nominal level, not above it.
EXACT_LEVEL_BOUNDS = ("normal",)

VERDICT_OK = "ok"
VERDICT_CONSERVATIVE = "conservative"
VERDICT_UNDER = "under"


def wilson_interval(
    successes: int, trials: int, band_confidence: float = 0.999
) -> Tuple[float, float]:
    """Wilson score interval for a binomial proportion.

    Args:
        successes: number of covering trials ``k``.
        trials: total trials ``m``.
        band_confidence: two-sided confidence of the band.

    Returns:
        ``(low, high)`` with ``0 <= low <= high <= 1``; ``(0.0, 1.0)`` when
        there are no trials (no evidence either way).
    """
    if trials < 0 or successes < 0 or successes > trials:
        raise ValueError(
            f"need 0 <= successes <= trials, got {successes}/{trials}"
        )
    if trials == 0:
        return (0.0, 1.0)
    if not 0.0 < band_confidence < 1.0:
        raise ValueError(
            f"band confidence must be in (0, 1), got {band_confidence}"
        )
    z = normal_quantile(1.0 - (1.0 - band_confidence) / 2.0)
    p_hat = successes / trials
    z2 = z * z
    denom = 1.0 + z2 / trials
    centre = (p_hat + z2 / (2.0 * trials)) / denom
    spread = (
        z
        * math.sqrt(p_hat * (1.0 - p_hat) / trials + z2 / (4.0 * trials * trials))
        / denom
    )
    return (max(0.0, centre - spread), min(1.0, centre + spread))


@dataclass(frozen=True)
class CoverageCheck:
    """Empirical coverage of one configuration against its nominal level."""

    trials: int
    covered: int
    nominal: float
    band_low: float
    band_high: float
    verdict: str

    @property
    def coverage(self) -> float:
        return self.covered / self.trials if self.trials else float("nan")

    @property
    def failed(self) -> bool:
        return self.verdict == VERDICT_UNDER

    def to_dict(self) -> dict:
        return {
            "trials": self.trials,
            "covered": self.covered,
            "coverage": self.coverage,
            "nominal": self.nominal,
            "wilson": [self.band_low, self.band_high],
            "verdict": self.verdict,
        }


def check_coverage(
    covered: int,
    trials: int,
    nominal: float,
    bound: str,
    band_confidence: float = 0.999,
) -> CoverageCheck:
    """Classify empirical coverage against the nominal level.

    ``under`` is always a defect.  ``conservative`` (the whole Wilson band
    above nominal) is a defect only for exact-level families -- the
    caller decides that via :data:`EXACT_LEVEL_BOUNDS`; here it is just a
    distinct verdict so reports stay honest about over-coverage.
    """
    low, high = wilson_interval(covered, trials, band_confidence)
    if trials == 0:
        verdict = VERDICT_OK  # no evidence -- nothing to flag
    elif high < nominal:
        verdict = VERDICT_UNDER
    elif low > nominal:
        verdict = VERDICT_CONSERVATIVE
    else:
        verdict = VERDICT_OK
    return CoverageCheck(
        trials=trials,
        covered=covered,
        nominal=nominal,
        band_low=low,
        band_high=high,
        verdict=verdict,
    )


def bias_t_statistic(
    sum_error: float, sum_sq_error: float, replications: int
) -> float:
    """t-statistic of "mean replication error is zero".

    Given ``sum_r e_r`` and ``sum_r e_r^2`` over ``R`` independent
    replication errors ``e_r = estimate_r - truth``, returns
    ``mean(e) / (sd(e) / sqrt(R))``.  ``0.0`` when the errors are exactly
    constant-zero (an exact estimator), ``inf`` when they are constant and
    nonzero (a deterministic bias), ``nan`` with fewer than two
    replications.
    """
    if replications < 2:
        return float("nan")
    mean = sum_error / replications
    var = max(sum_sq_error - replications * mean * mean, 0.0) / (
        replications - 1
    )
    if var == 0.0:
        return 0.0 if mean == 0.0 else math.copysign(float("inf"), mean)
    return mean / math.sqrt(var / replications)
