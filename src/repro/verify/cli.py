"""Command-line entry point: ``python -m repro.verify [--quick|--full]``.

Runs the statistical verification suite -- replication calibration,
metamorphic invariants, negative control -- prints a summary, writes the
JSON artifact, and exits nonzero on any defect.  ``--quick`` is the CI
campaign (seconds); ``--full`` is the nightly-sized one (minutes).
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional, Sequence

from ..obs import Telemetry
from .report import DEFAULT_REPORT_PATH, run_verification

__all__ = ["main"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.verify",
        description="Statistical verification of the estimator/bound "
        "pipeline: CI coverage calibration, bias tests, metamorphic "
        "invariants, and a deliberately biased negative control.",
    )
    size = parser.add_mutually_exclusive_group()
    size.add_argument(
        "--quick",
        action="store_true",
        help="CI-sized campaign (default): full allocation x rewrite grid "
        "on the small Zipf testbed",
    )
    size.add_argument(
        "--full",
        action="store_true",
        help="nightly-sized campaign: more replications, larger relation",
    )
    parser.add_argument(
        "--seed", type=int, default=2026, help="master seed (default 2026)"
    )
    parser.add_argument(
        "--output",
        default=str(DEFAULT_REPORT_PATH),
        help=f"JSON report path (default {DEFAULT_REPORT_PATH}); "
        "'-' to skip writing",
    )
    parser.add_argument(
        "--no-control",
        action="store_true",
        help="skip the negative control campaign",
    )
    parser.add_argument(
        "--no-metamorphic",
        action="store_true",
        help="skip the metamorphic invariant sweep",
    )
    parser.add_argument(
        "--trace",
        action="store_true",
        help="enable telemetry on the calibration runner and print the "
        "metrics dump",
    )
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    telemetry = Telemetry.enabled() if args.trace else None
    report = run_verification(
        mode="full" if args.full else "quick",
        seed=args.seed,
        telemetry=telemetry,
        with_control=not args.no_control,
        with_metamorphic=not args.no_metamorphic,
    )
    print(report.summary())
    if args.output != "-":
        path = report.save(args.output)
        print(f"report written to {path}")
    if telemetry is not None:
        for name, data in sorted(telemetry.metrics.snapshot().items()):
            print(f"{name}: {data}")
    return 0 if report.passed else 1


if __name__ == "__main__":
    sys.exit(main())
