"""Assemble, summarize, and persist one verification run.

A :class:`VerificationReport` bundles the sub-results -- the replication
calibration campaign, the metamorphic sweep, the portfolio budget-contract
campaign, and the negative-control campaign (which must *fail*, proving
the harness has power) -- and writes the JSON artifact that CI and the
benchmarks directory track (``benchmarks/results/CALIBRATION.json``).
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass
from pathlib import Path
from typing import List, Optional, Union

from ..obs import Telemetry
from .calibration import (
    CalibrationConfig,
    CalibrationResult,
    CalibrationRunner,
    negative_control,
)
from .metamorphic import MetamorphicResult, run_metamorphic
from .portfolio import (
    PortfolioCalibrationResult,
    PortfolioCellConfig,
    run_portfolio_calibration,
)

__all__ = [
    "DEFAULT_REPORT_PATH",
    "VerificationReport",
    "run_verification",
]

DEFAULT_REPORT_PATH = Path("benchmarks") / "results" / "CALIBRATION.json"


@dataclass
class VerificationReport:
    """Everything ``python -m repro.verify`` measured, in one artifact."""

    mode: str
    seed: int
    calibration: CalibrationResult
    metamorphic: MetamorphicResult
    control: Optional[CalibrationResult]
    generated_at: float
    portfolio: Optional[PortfolioCalibrationResult] = None

    @property
    def control_flagged(self) -> Optional[bool]:
        """Did the negative control trip both detectors?  ``None`` when the
        control was skipped."""
        if self.control is None:
            return None
        flags = self.control.flags
        return any(
            f.startswith(("pair ", "cell ")) for f in flags
        ) and any(f.startswith("bias ") for f in flags)

    @property
    def failures(self) -> List[str]:
        out = list(self.calibration.flags)
        out.extend(self.metamorphic.violations)
        if self.portfolio is not None:
            out.extend(self.portfolio.flags)
        if self.control_flagged is False:
            out.append(
                "negative control: the deliberately biased estimator was "
                "NOT flagged by both the coverage and bias detectors -- "
                "the harness has no power"
            )
        return out

    @property
    def passed(self) -> bool:
        return not self.failures

    def to_dict(self) -> dict:
        return {
            "mode": self.mode,
            "seed": self.seed,
            "generated_at": self.generated_at,
            "passed": self.passed,
            "failures": self.failures,
            "calibration": self.calibration.to_dict(),
            "metamorphic": self.metamorphic.to_dict(),
            "portfolio": (
                None if self.portfolio is None else self.portfolio.to_dict()
            ),
            "negative_control": (
                None
                if self.control is None
                else {
                    "flagged": self.control_flagged,
                    "flags": self.control.flags,
                    "tamper_scale": self.control.config.tamper_scale,
                }
            ),
        }

    def save(self, path: Union[str, Path] = DEFAULT_REPORT_PATH) -> Path:
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(self.to_dict(), indent=2) + "\n")
        return path

    def summary(self) -> str:
        cells = self.calibration.cells
        lines = [
            f"verification {self.mode} (seed {self.seed}): "
            f"{'PASS' if self.passed else 'FAIL'}",
            f"  calibration: {len(self.calibration.pairs)} allocation x "
            f"rewrite pairs, {len(cells)} cells, "
            f"{self.calibration.config.replications} replications, "
            f"{self.calibration.elapsed_seconds:.1f}s",
        ]
        for pair in self.calibration.pairs:
            check = pair.check
            lines.append(
                f"    {pair.allocation} x {pair.rewrite}: "
                f"{pair.bound}-bound coverage {check.coverage:.4f} "
                f"(nominal {check.nominal}, band "
                f"[{check.band_low:.4f}, {check.band_high:.4f}]) "
                f"{check.verdict}"
            )
        lines.append(
            f"  metamorphic: {len(self.metamorphic.checks)} checks, "
            f"{len(self.metamorphic.violations)} violations"
        )
        if self.portfolio is not None:
            lines.append(
                f"  portfolio: {len(self.portfolio.cells)} budget cells, "
                f"{self.portfolio.config.replications} replications, "
                f"{self.portfolio.elapsed_seconds:.1f}s"
            )
            for cell in self.portfolio.cells:
                lines.append(
                    f"    {cell.query} @ budget {cell.budget}: coverage "
                    f"{cell.check.coverage:.4f} (nominal "
                    f"{cell.check.nominal}) {cell.check.verdict}, "
                    f"{cell.promise_violations} promise violation(s), "
                    f"chose {dict(cell.chosen)}"
                )
        if self.control is not None:
            lines.append(
                "  negative control: biased estimator "
                + (
                    "flagged (harness has power)"
                    if self.control_flagged
                    else "NOT FLAGGED"
                )
            )
        for failure in self.failures:
            lines.append(f"  FAIL: {failure}")
        return "\n".join(lines)


def run_verification(
    mode: str = "quick",
    seed: int = 2026,
    telemetry: Union[Telemetry, bool, None] = None,
    with_control: bool = True,
    with_metamorphic: bool = True,
    with_portfolio: bool = True,
) -> VerificationReport:
    """Run the full verification suite and bundle the results.

    Args:
        mode: ``"quick"`` (the CI campaign) or ``"full"`` (nightly-sized).
        seed: master seed for every sub-run.
        telemetry: optional :class:`~repro.obs.Telemetry` for the
            calibration runner's spans and metrics.
        with_control: also run the deliberately biased negative control
            (and fail the report if it is *not* flagged).
        with_metamorphic: also run the metamorphic sweep.
        with_portfolio: also run the portfolio budget-contract campaign.
    """
    if mode == "quick":
        config = CalibrationConfig.quick(seed)
        portfolio_config = PortfolioCellConfig.quick(seed)
    elif mode == "full":
        config = CalibrationConfig.full(seed)
        portfolio_config = PortfolioCellConfig.full(seed)
    else:
        raise ValueError(f"mode must be quick or full, got {mode!r}")
    calibration = CalibrationRunner(config, telemetry=telemetry).run()
    metamorphic = (
        run_metamorphic(seed)
        if with_metamorphic
        else MetamorphicResult(seed=seed)
    )
    portfolio = (
        run_portfolio_calibration(portfolio_config)
        if with_portfolio
        else None
    )
    control = negative_control(seed) if with_control else None
    return VerificationReport(
        mode=mode,
        seed=seed,
        calibration=calibration,
        metamorphic=metamorphic,
        control=control,
        generated_at=time.time(),
        portfolio=portfolio,
    )
