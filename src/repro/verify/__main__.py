"""``python -m repro.verify`` -- see :mod:`repro.verify.cli`."""

import sys

from .cli import main

sys.exit(main())
