"""Metamorphic invariants of the answer pipeline.

Calibration (:mod:`repro.verify.calibration`) measures *statistical*
properties over replications.  The checks here are exact, deterministic
relations that must hold on a single seeded sample -- violations are
always defects, never noise:

* **Scale invariance** -- multiplying an aggregate column by a constant
  scales every per-group SUM estimate and its standard error by the same
  constant, so relative errors are unchanged.
* **Group permutation invariance** -- permuting the order of the GROUP BY
  columns only transposes the group keys, and relabelling the group
  values only renames the groups; estimates follow the renaming exactly.
* **Subset-sum consistency** -- under a congressional sample, the
  per-group SUM estimates add up to the no-GROUP-BY SUM estimate of the
  same query (both are the same sum over scaled sample tuples).
* **Execution equivalence** -- partition-parallel execution, serial
  execution, and a cache hit all return the identical answer table.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..aqua.system import AquaSystem, ParallelConfig
from ..core import Congress, build_sample
from ..engine.table import Table
from ..estimators.point import estimate
from ..sampling.groups import GroupKey
from ..sampling.stratified import StratifiedSample, Stratum
from ..synthetic.queries import qg2
from .testbed import TABLE_NAME, Testbed, TestbedConfig

__all__ = ["MetamorphicResult", "run_metamorphic"]

_RTOL = 1e-9
_BUDGET = 600


@dataclass
class MetamorphicResult:
    """Outcome of one metamorphic sweep: which checks ran, what broke."""

    seed: int
    checks: List[str] = field(default_factory=list)
    violations: List[str] = field(default_factory=list)

    @property
    def passed(self) -> bool:
        return not self.violations

    def to_dict(self) -> dict:
        return {
            "seed": self.seed,
            "checks": list(self.checks),
            "violations": list(self.violations),
            "passed": self.passed,
        }


def _close(a: float, b: float) -> bool:
    return math.isclose(a, b, rel_tol=_RTOL, abs_tol=1e-9)


def _congress_sample(testbed: Testbed, seed: int) -> StratifiedSample:
    return build_sample(
        Congress(),
        testbed.table,
        testbed.grouping_columns,
        _BUDGET,
        rng=np.random.default_rng(seed),
    )


_SUM_ALIAS = {"l_quantity": "sum_qty", "l_extendedprice": "sum_price"}


def _sum_estimates(
    sample: StratifiedSample,
    testbed: Testbed,
    column: str,
    group_by: Sequence[str],
):
    query = qg2().query
    expr = next(
        a.expr for a in query.aggregates() if a.alias == _SUM_ALIAS[column]
    )
    return estimate(sample, "sum", expr, group_by=group_by)


def check_scale_invariance(
    testbed: Testbed, seed: int, scale: float = 8.0
) -> List[str]:
    """Scaling ``l_quantity`` by a constant scales estimates and standard
    errors by the same constant, leaving relative errors unchanged."""
    out: List[str] = []
    sample = _congress_sample(testbed, seed)
    base = _sum_estimates(
        sample, testbed, "l_quantity", testbed.grouping_columns[:2]
    )
    columns = testbed.table.columns()
    columns["l_quantity"] = columns["l_quantity"] * scale
    scaled_table = Table(testbed.table.schema, columns)
    # Same strata (row indices are label-independent), scaled values.
    scaled_sample = StratifiedSample(
        scaled_table,
        testbed.grouping_columns,
        {key: sample.strata[key] for key in sample.strata},
    )
    scaled = _sum_estimates(
        scaled_sample, testbed, "l_quantity", testbed.grouping_columns[:2]
    )
    if set(base) != set(scaled):
        return [
            "scale_invariance: scaling the aggregate column changed the "
            f"group set ({len(base)} vs {len(scaled)} groups)"
        ]
    for key, left in base.items():
        right = scaled[key]
        if not _close(left.value * scale, right.value):
            out.append(
                f"scale_invariance: group {key} estimate "
                f"{left.value!r} * {scale} != {right.value!r}"
            )
        if not _close(left.std_error * scale, right.std_error):
            out.append(
                f"scale_invariance: group {key} std error "
                f"{left.std_error!r} * {scale} != {right.std_error!r}"
            )
    return out


def check_group_permutation(testbed: Testbed, seed: int) -> List[str]:
    """Permuting GROUP BY column order transposes keys; permuting group
    labels renames groups.  Estimates must follow exactly."""
    out: List[str] = []
    sample = _congress_sample(testbed, seed)
    cols = testbed.grouping_columns[:2]
    forward = _sum_estimates(sample, testbed, "l_quantity", cols)
    swapped = _sum_estimates(
        sample, testbed, "l_quantity", (cols[1], cols[0])
    )
    for key, left in forward.items():
        right = swapped.get((key[1], key[0]))
        if right is None or not _close(left.value, right.value):
            out.append(
                f"group_permutation: GROUP BY {cols} group {key} = "
                f"{left.value!r} but swapped order gives "
                f"{right.value if right else None!r}"
            )

    # Label permutation: relabel l_returnflag by an order-reversing map.
    flags = testbed.table.column(cols[0])
    low, high = int(flags.min()), int(flags.max())
    relabel: Callable[[int], int] = lambda v: low + high - v
    columns = testbed.table.columns()
    columns[cols[0]] = (low + high) - columns[cols[0]]
    relabeled_table = Table(testbed.table.schema, columns)
    position = testbed.grouping_columns.index(cols[0])

    def permuted_key(key: GroupKey) -> GroupKey:
        return tuple(
            relabel(part) if i == position else part
            for i, part in enumerate(key)
        )

    relabeled_sample = StratifiedSample(
        relabeled_table,
        testbed.grouping_columns,
        {
            permuted_key(key): Stratum(
                permuted_key(key), stratum.population, stratum.row_indices
            )
            for key, stratum in sample.strata.items()
        },
    )
    relabeled = _sum_estimates(
        relabeled_sample, testbed, "l_quantity", cols
    )
    for key, left in forward.items():
        image = (relabel(key[0]), key[1])
        right = relabeled.get(image)
        if right is None or not _close(left.value, right.value):
            out.append(
                f"group_permutation: relabelled group {image} should equal "
                f"group {key} = {left.value!r}, got "
                f"{right.value if right else None!r}"
            )
    return out


def check_subset_sum(testbed: Testbed, seed: int) -> List[str]:
    """Per-group SUM estimates add up to the no-GROUP-BY estimate -- both
    are the same scaled sum over the congressional sample."""
    out: List[str] = []
    sample = _congress_sample(testbed, seed)
    for column in ("l_quantity", "l_extendedprice"):
        grouped = _sum_estimates(
            sample, testbed, column, testbed.grouping_columns[:2]
        )
        total = _sum_estimates(sample, testbed, column, ())
        grouped_total = sum(e.value for e in grouped.values())
        ungrouped = total[()].value
        if not math.isclose(grouped_total, ungrouped, rel_tol=_RTOL):
            out.append(
                f"subset_sum: SUM({column}) per-group estimates add to "
                f"{grouped_total!r} but the no-GROUP-BY estimate is "
                f"{ungrouped!r}"
            )
    return out


def _answer_columns(answer) -> Dict[str, np.ndarray]:
    return answer.result.columns()


def _compare_answers(label: str, left, right) -> List[str]:
    out: List[str] = []
    lcols, rcols = _answer_columns(left), _answer_columns(right)
    if set(lcols) != set(rcols):
        return [
            f"{label}: answer columns differ: "
            f"{sorted(lcols)} vs {sorted(rcols)}"
        ]
    for name in sorted(lcols):
        a, b = lcols[name], rcols[name]
        if len(a) != len(b):
            out.append(
                f"{label}: column {name} has {len(a)} vs {len(b)} rows"
            )
        elif not (
            np.array_equal(a, b)
            or (
                np.issubdtype(a.dtype, np.floating)
                and np.allclose(a, b, rtol=_RTOL, atol=1e-9, equal_nan=True)
            )
        ):
            out.append(f"{label}: column {name} differs between answers")
    return out


def check_execution_equivalence(
    testbed: Testbed, seed: int
) -> List[str]:
    """Serial, partition-parallel, and cached execution return the same
    answer table for the same synopsis."""
    out: List[str] = []
    sql = qg2().sql

    def system(parallel) -> AquaSystem:
        sys_ = AquaSystem(
            _BUDGET,
            allocation_strategy=Congress(),
            rng=np.random.default_rng(seed),
            parallel=parallel,
            cache=True,
        )
        sys_.register_table(
            TABLE_NAME, testbed.table, testbed.grouping_columns
        )
        return sys_

    serial = system(False)
    parallel = system(
        ParallelConfig(max_workers=2, min_partition_rows=0)
    )
    first = serial.answer(sql)
    out.extend(
        _compare_answers(
            "parallel_vs_serial", first, parallel.answer(sql)
        )
    )
    cached = serial.answer(sql)
    stats = serial.answer_cache.stats
    if stats.hits < 1:
        out.append(
            "parallel_serial_cached: repeated answer was not served from "
            f"the cache (stats: {stats!r})"
        )
    out.extend(_compare_answers("cached_vs_fresh", first, cached))
    return out


_CHECKS: Tuple[Tuple[str, Callable[[Testbed, int], List[str]]], ...] = (
    ("scale_invariance", check_scale_invariance),
    ("group_permutation", check_group_permutation),
    ("subset_sum", check_subset_sum),
    ("execution_equivalence", check_execution_equivalence),
)


def run_metamorphic(
    seed: int = 2026,
    testbed: Optional[Testbed] = None,
) -> MetamorphicResult:
    """Run every metamorphic check on one seeded testbed."""
    if testbed is None:
        testbed = Testbed(TestbedConfig())
    result = MetamorphicResult(seed=seed)
    for name, check in _CHECKS:
        result.checks.append(name)
        result.violations.extend(check(testbed, seed))
    return result
