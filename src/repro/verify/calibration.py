"""Replication-based calibration of the estimator/bound pipeline.

The :class:`CalibrationRunner` draws ``R`` independent congressional (or
House/Senate/Basic-Congress) samples of the seeded Zipf testbed, answers
every configured query class through every rewrite strategy, and checks,
per allocation × rewrite × bound family × query class × aggregate:

* **coverage** -- the fraction of (replication, answer group) trials whose
  error bound covered the exact answer, against the nominal confidence
  level with a Wilson-interval tolerance band (:mod:`repro.verify.stats`);
* **unbiasedness** -- the per-group mean replication error of SUM/COUNT
  estimates, as a t-statistic (exactly unbiased estimators must not drift);
  AVG (a ratio estimator, only asymptotically unbiased) gets a relative
  mean-bias tolerance instead;
* **rewrite agreement** -- every rewrite's executed answer must match the
  direct estimator to floating-point tolerance on every replication.

A deliberately biased estimator can be injected with ``tamper_scale`` (the
harness's negative control): scaling every estimate by 1.1 must trip both
the coverage and the bias detectors, proving the harness has power.

Calibration runs are traced and measured like queries: the runner takes a
:class:`~repro.obs.Telemetry` bundle and emits ``verify_*`` spans/metrics.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from ..core import BasicCongress, Congress, House, Senate, build_sample
from ..engine.aggregates import grouped_reduce
from ..estimators.errors import (
    chebyshev_halfwidth,
    hoeffding_halfwidth_stratified_sum,
    normal_halfwidth,
)
from ..estimators.point import GroupEstimate, estimate
from ..obs import Telemetry
from ..rewrite import strategy_by_name
from ..sampling.groups import GroupKey, finest_group_ids, project_key
from ..synthetic.queries import QueryClass
from .stats import (
    EXACT_LEVEL_BOUNDS,
    VERDICT_OK,
    CoverageCheck,
    bias_t_statistic,
    check_coverage,
)
from .testbed import TABLE_NAME, Testbed, TestbedConfig, result_by_group

__all__ = [
    "ALLOCATION_REGISTRY",
    "BiasResult",
    "CalibrationConfig",
    "CalibrationResult",
    "CalibrationRunner",
    "CellResult",
    "PairSummary",
    "allocation_by_name",
]

ALLOCATION_REGISTRY = {
    "house": House,
    "senate": Senate,
    "basic_congress": BasicCongress,
    "congress": Congress,
}

_REWRITE_AGREEMENT_RTOL = 1e-9


def allocation_by_name(name: str):
    """Instantiate an allocation strategy from its paper name."""
    try:
        return ALLOCATION_REGISTRY[name]()
    except KeyError:
        raise ValueError(
            f"unknown allocation strategy {name!r}; "
            f"choose from {sorted(ALLOCATION_REGISTRY)}"
        ) from None


@dataclass(frozen=True)
class CalibrationConfig:
    """One calibration campaign: the full configuration grid plus seeds.

    Attributes:
        seed: master seed; every replication draws from an independent
            spawned child stream, so runs are reproducible and replications
            are statistically independent.
        replications: ``R``, independent samples per allocation.
        budget: synopsis space budget in tuples (the paper's ``X``).
        confidence: nominal level of the checked bounds (0.95 -- the
            acceptance level the ISSUE fixes, not Aqua's default 0.90).
        allocations / rewrites / bounds: the grid axes.
        testbed: the Zipf relation + query classes.
        band_confidence: two-sided confidence of the Wilson tolerance band.
        bias_t_threshold: |t| above which a SUM/COUNT group is flagged as
            biased (4.0 = ~6e-5 two-sided false-flag rate per group).
        avg_bias_tolerance: relative mean-bias tolerance for AVG groups.
        min_bias_replications: groups estimated in fewer replications are
            not bias-tested (no power, all noise).
        normal_min_support: minimum qualifying sample tuples an answer
            group needs for its *normal* (CLT-based) bound to be coverage-
            tested.  The normal family is only valid asymptotically; groups
            below this support are exactly the ones the serve-time guard
            repairs in production, so the harness records them as
            ``low_support`` rather than letting textbook small-sample
            under-coverage mask true calibration defects.  Chebyshev and
            Hoeffding are valid at any sample size and are always tested.
        tamper_scale: multiply every point estimate by this factor
            *after* bounds are computed -- the deliberate-bias negative
            control.  1.0 = honest estimator.
    """

    seed: int = 2026
    replications: int = 30
    budget: int = 600
    confidence: float = 0.95
    allocations: Tuple[str, ...] = (
        "house", "senate", "basic_congress", "congress",
    )
    rewrites: Tuple[str, ...] = (
        "integrated", "nested_integrated", "normalized", "key_normalized",
    )
    bounds: Tuple[str, ...] = ("normal", "chebyshev", "hoeffding")
    testbed: TestbedConfig = field(default_factory=TestbedConfig)
    band_confidence: float = 0.999
    bias_t_threshold: float = 4.0
    avg_bias_tolerance: float = 0.02
    min_bias_replications: int = 8
    normal_min_support: int = 30
    tamper_scale: float = 1.0

    @classmethod
    def quick(cls, seed: int = 2026) -> "CalibrationConfig":
        """The CI-sized campaign (~1 minute): full grid, small testbed."""
        return cls(seed=seed)

    @classmethod
    def full(cls, seed: int = 2026) -> "CalibrationConfig":
        """The nightly campaign: more replications on a larger relation."""
        return cls(
            seed=seed,
            replications=80,
            budget=3000,
            testbed=TestbedConfig(table_size=20_000, num_groups=64),
        )

    def to_dict(self) -> dict:
        return {
            "seed": self.seed,
            "replications": self.replications,
            "budget": self.budget,
            "confidence": self.confidence,
            "allocations": list(self.allocations),
            "rewrites": list(self.rewrites),
            "bounds": list(self.bounds),
            "testbed": self.testbed.to_dict(),
            "band_confidence": self.band_confidence,
            "bias_t_threshold": self.bias_t_threshold,
            "avg_bias_tolerance": self.avg_bias_tolerance,
            "min_bias_replications": self.min_bias_replications,
            "normal_min_support": self.normal_min_support,
            "tamper_scale": self.tamper_scale,
        }


@dataclass(frozen=True)
class CellResult:
    """Coverage of one allocation × rewrite × bound × query × aggregate."""

    allocation: str
    rewrite: str
    bound: str
    query: str
    aggregate: str
    check: CoverageCheck
    missing: int = 0
    unbounded: int = 0
    low_support: int = 0
    exact: int = 0

    @property
    def failed(self) -> bool:
        if self.check.failed:
            return True
        # Exact-level bound families must sit inside the band, not above.
        return (
            self.bound in EXACT_LEVEL_BOUNDS
            and self.check.verdict != VERDICT_OK
        )

    def to_dict(self) -> dict:
        out = {
            "allocation": self.allocation,
            "rewrite": self.rewrite,
            "bound": self.bound,
            "query": self.query,
            "aggregate": self.aggregate,
            "missing": self.missing,
            "unbounded": self.unbounded,
            "low_support": self.low_support,
            "exact": self.exact,
            "failed": self.failed,
        }
        out.update(self.check.to_dict())
        return out


@dataclass(frozen=True)
class PairSummary:
    """Pooled exact-level coverage for one allocation × rewrite pair.

    This is the acceptance criterion's unit: all normal-bound trials of the
    pair, pooled across query classes and aggregates, must lie inside the
    Wilson tolerance band.
    """

    allocation: str
    rewrite: str
    bound: str
    check: CoverageCheck

    @property
    def failed(self) -> bool:
        return self.check.verdict != VERDICT_OK

    def to_dict(self) -> dict:
        out = {
            "allocation": self.allocation,
            "rewrite": self.rewrite,
            "bound": self.bound,
            "failed": self.failed,
        }
        out.update(self.check.to_dict())
        return out


@dataclass(frozen=True)
class BiasResult:
    """Unbiasedness verdict for one allocation × query × aggregate."""

    allocation: str
    query: str
    aggregate: str
    func: str
    groups: int
    max_abs_t: float
    worst_group: Optional[GroupKey]
    mean_relative_bias: float
    rmse: float
    flagged_groups: Tuple[GroupKey, ...] = ()

    @property
    def failed(self) -> bool:
        return bool(self.flagged_groups)

    def to_dict(self) -> dict:
        return {
            "allocation": self.allocation,
            "query": self.query,
            "aggregate": self.aggregate,
            "func": self.func,
            "groups": self.groups,
            "max_abs_t": self.max_abs_t,
            "worst_group": list(self.worst_group)
            if self.worst_group is not None
            else None,
            "mean_relative_bias": self.mean_relative_bias,
            "rmse": self.rmse,
            "flagged_groups": [list(k) for k in self.flagged_groups],
            "failed": self.failed,
        }


@dataclass
class CalibrationResult:
    """Everything one calibration campaign measured."""

    config: CalibrationConfig
    cells: List[CellResult]
    pairs: List[PairSummary]
    bias: List[BiasResult]
    rewrite_mismatches: List[str]
    elapsed_seconds: float

    @property
    def flags(self) -> List[str]:
        """Human-readable defect descriptions (empty = calibrated)."""
        out: List[str] = []
        for pair in self.pairs:
            if pair.failed:
                out.append(
                    f"pair {pair.allocation}×{pair.rewrite}: pooled "
                    f"{pair.bound}-bound coverage {pair.check.coverage:.4f} "
                    f"outside Wilson band "
                    f"[{pair.check.band_low:.4f}, {pair.check.band_high:.4f}] "
                    f"around nominal {pair.check.nominal}"
                )
        for cell in self.cells:
            if cell.failed:
                out.append(
                    f"cell {cell.allocation}×{cell.rewrite}×{cell.bound} "
                    f"{cell.query}/{cell.aggregate}: coverage "
                    f"{cell.check.coverage:.4f} verdict {cell.check.verdict} "
                    f"(nominal {cell.check.nominal}, "
                    f"{cell.check.covered}/{cell.check.trials} trials)"
                )
        for result in self.bias:
            if result.failed:
                out.append(
                    f"bias {result.allocation} {result.query}/"
                    f"{result.aggregate} ({result.func}): "
                    f"{len(result.flagged_groups)} group(s) flagged, "
                    f"max |t| = {result.max_abs_t:.2f}, mean relative bias "
                    f"{result.mean_relative_bias:.4%}"
                )
        out.extend(self.rewrite_mismatches)
        return out

    @property
    def passed(self) -> bool:
        return not self.flags

    def to_dict(self) -> dict:
        return {
            "config": self.config.to_dict(),
            "passed": self.passed,
            "flags": self.flags,
            "pairs": [p.to_dict() for p in self.pairs],
            "cells": [c.to_dict() for c in self.cells],
            "bias": [b.to_dict() for b in self.bias],
            "rewrite_mismatches": list(self.rewrite_mismatches),
            "elapsed_seconds": self.elapsed_seconds,
        }


class _Accumulator:
    """Mutable per-cell and per-group tallies during the replication loop."""

    def __init__(self) -> None:
        # (alloc, rewrite, bound, query, alias) -> [covered, trials,
        #                           missing, unbounded, low_support, exact]
        self.coverage: Dict[Tuple, List[int]] = {}
        # (alloc, query, alias, group) -> [sum_err, sum_sq_err, n, truth]
        self.bias: Dict[Tuple, List[float]] = {}
        self.mismatches: List[str] = []

    def cell(self, key: Tuple) -> List[int]:
        return self.coverage.setdefault(key, [0, 0, 0, 0, 0, 0])


class CalibrationRunner:
    """Run one calibration campaign over the configured grid."""

    def __init__(
        self,
        config: Optional[CalibrationConfig] = None,
        telemetry: Union[Telemetry, bool, None] = None,
    ):
        self.config = config or CalibrationConfig.quick()
        if telemetry is True:
            self.telemetry = Telemetry.enabled()
        elif isinstance(telemetry, Telemetry):
            self.telemetry = telemetry
        else:
            self.telemetry = Telemetry.disabled()

    # -- bound computation ---------------------------------------------------

    @staticmethod
    def _estimate_column(aggregate) -> Optional[object]:
        return None if aggregate.func == "count" else aggregate.expr

    def _halfwidth(
        self,
        bound: str,
        group_estimate: GroupEstimate,
        hoeffding: Optional[Dict[GroupKey, float]],
        key: GroupKey,
    ) -> float:
        if bound == "normal":
            if not group_estimate.variance >= 0:
                return float("nan")
            return normal_halfwidth(
                group_estimate.std_error, self.config.confidence
            )
        if bound == "chebyshev":
            if not group_estimate.variance >= 0:
                return float("nan")
            return chebyshev_halfwidth(
                group_estimate.std_error, self.config.confidence
            )
        if bound == "hoeffding":
            if hoeffding is None:
                return float("nan")
            return hoeffding.get(key, float("nan"))
        raise ValueError(f"unknown bound family {bound!r}")

    def _hoeffding_supported(self, query, aggregate, grouping) -> bool:
        return aggregate.func in ("sum", "count") and set(
            query.group_by
        ) <= set(grouping)

    def _stratum_ranges(
        self, testbed: Testbed, aggregate
    ) -> Tuple[np.ndarray, List[GroupKey]]:
        """Zero-extended per-finest-stratum value ranges (see the system's
        Hoeffding path: the WHERE predicate zeroes non-qualifying tuples,
        so each term ranges over ``[min(low, 0), max(high, 0)]``)."""
        base = testbed.table
        if aggregate.func == "count":
            values = np.ones(base.num_rows)
        else:
            values = np.asarray(
                aggregate.expr.evaluate(base), dtype=np.float64
            )
        ids, keys = finest_group_ids(base, testbed.grouping_columns)
        lows = np.minimum(grouped_reduce("min", values, ids, len(keys)), 0.0)
        highs = np.maximum(grouped_reduce("max", values, ids, len(keys)), 0.0)
        return highs - lows, keys

    def _hoeffding_halfwidths(
        self,
        sample,
        ranges: np.ndarray,
        finest_keys: List[GroupKey],
        grouping: Sequence[str],
        group_by: Sequence[str],
    ) -> Dict[GroupKey, float]:
        per_answer: Dict[GroupKey, List[int]] = {}
        for index, key in enumerate(finest_keys):
            answer = project_key(key, grouping, group_by)
            per_answer.setdefault(answer, []).append(index)
        out: Dict[GroupKey, float] = {}
        for answer, indices in per_answer.items():
            r, n, m = [], [], []
            for index in indices:
                stratum = sample.strata.get(finest_keys[index])
                if stratum is None or stratum.sample_size == 0:
                    continue
                r.append(float(ranges[index]))
                n.append(float(stratum.population))
                m.append(int(stratum.sample_size))
            if m:
                out[answer] = hoeffding_halfwidth_stratified_sum(
                    r, n, m, self.config.confidence
                )
        return out

    # -- the replication loop ------------------------------------------------

    def run(self, testbed: Optional[Testbed] = None) -> CalibrationResult:
        config = self.config
        tracer = self.telemetry.tracer
        metrics = self.telemetry.metrics
        start = time.perf_counter()
        with tracer.span("calibration", replications=config.replications):
            with tracer.span("testbed"):
                if testbed is None:
                    testbed = Testbed(config.testbed)
                truths = {
                    qc.name: testbed.truth(qc) for qc in testbed.queries
                }
            acc = _Accumulator()
            rng = np.random.default_rng(config.seed)
            streams = rng.spawn(len(config.allocations) * config.replications)
            for a, alloc_name in enumerate(config.allocations):
                with tracer.span("allocation", strategy=alloc_name):
                    for r in range(config.replications):
                        self._one_replication(
                            testbed,
                            truths,
                            alloc_name,
                            streams[a * config.replications + r],
                            acc,
                        )
                if metrics.enabled:
                    metrics.counter(
                        "verify_replications_total",
                        "Calibration replications executed, per allocation.",
                        ("allocation",),
                    ).inc(config.replications, allocation=alloc_name)
            result = self._summarize(
                testbed, acc, time.perf_counter() - start
            )
        if metrics.enabled:
            for cell in result.cells:
                metrics.counter(
                    "verify_cells_total",
                    "Calibration cells checked, by coverage verdict.",
                    ("verdict",),
                ).inc(verdict=cell.check.verdict)
            metrics.counter(
                "verify_flags_total",
                "Defects flagged by the calibration harness.",
            ).inc(len(result.flags))
            metrics.histogram(
                "verify_calibration_seconds",
                "Wall time of one calibration campaign.",
            ).observe(result.elapsed_seconds)
        return result

    def _one_replication(
        self,
        testbed: Testbed,
        truths: Dict[str, Dict[str, Dict[GroupKey, float]]],
        alloc_name: str,
        rng: np.random.Generator,
        acc: _Accumulator,
    ) -> None:
        config = self.config
        sample = build_sample(
            allocation_by_name(alloc_name),
            testbed.table,
            testbed.grouping_columns,
            config.budget,
            rng=rng,
        )
        # Direct estimator pass: values, variances, Hoeffding inputs --
        # shared by every rewrite (the bound attachment path of the system).
        estimates: Dict[Tuple[str, str], Dict[GroupKey, GroupEstimate]] = {}
        hoeffding: Dict[Tuple[str, str], Optional[Dict[GroupKey, float]]] = {}
        for qc in testbed.queries:
            query = qc.query
            for aggregate in query.aggregates():
                cell = (qc.name, aggregate.alias)
                estimates[cell] = estimate(
                    sample,
                    aggregate.func,
                    self._estimate_column(aggregate),
                    predicate=query.where,
                    group_by=query.group_by,
                )
                if "hoeffding" in config.bounds and self._hoeffding_supported(
                    query, aggregate, testbed.grouping_columns
                ):
                    ranges, finest_keys = self._stratum_ranges(
                        testbed, aggregate
                    )
                    hoeffding[cell] = self._hoeffding_halfwidths(
                        sample,
                        ranges,
                        finest_keys,
                        testbed.grouping_columns,
                        query.group_by,
                    )
                else:
                    hoeffding[cell] = None

        for rewrite_name in config.rewrites:
            strategy = strategy_by_name(rewrite_name)
            synopsis = strategy.install(
                sample, TABLE_NAME, testbed.catalog, replace=True
            )
            for qc in testbed.queries:
                query = qc.query
                executed = strategy.plan(query, synopsis).execute(
                    testbed.catalog
                )
                by_group = result_by_group(
                    executed,
                    list(query.group_by),
                    [a.alias for a in query.aggregates()],
                )
                self._score_query(
                    testbed, truths, acc, alloc_name, rewrite_name, qc,
                    by_group, estimates, hoeffding,
                )

        # Bias accumulators are rewrite-independent (agreement is asserted
        # above); accumulate once per replication from the estimator values.
        for qc in testbed.queries:
            for aggregate in qc.query.aggregates():
                cell = (qc.name, aggregate.alias)
                truth = truths[qc.name][aggregate.alias]
                for key, group_estimate in estimates[cell].items():
                    true_value = truth.get(key)
                    if true_value is None:
                        continue
                    error = (
                        group_estimate.value * config.tamper_scale
                        - true_value
                    )
                    slot = acc.bias.setdefault(
                        (alloc_name, qc.name, aggregate.alias, key),
                        [0.0, 0.0, 0, true_value],
                    )
                    slot[0] += error
                    slot[1] += error * error
                    slot[2] += 1

    def _score_query(
        self,
        testbed: Testbed,
        truths,
        acc: _Accumulator,
        alloc_name: str,
        rewrite_name: str,
        qc: QueryClass,
        by_group: Dict[str, Dict[GroupKey, float]],
        estimates,
        hoeffding,
    ) -> None:
        config = self.config
        for aggregate in qc.query.aggregates():
            alias = aggregate.alias
            cell = (qc.name, alias)
            truth = truths[qc.name][alias]
            direct = estimates[cell]
            values = by_group.get(alias, {})
            # Rewrite agreement: the executed plan must reproduce the
            # direct estimator exactly (modulo float roundoff).
            for key, value in values.items():
                expected = direct.get(key)
                if expected is not None and not math.isclose(
                    value,
                    expected.value,
                    rel_tol=_REWRITE_AGREEMENT_RTOL,
                    abs_tol=1e-9,
                ):
                    acc.mismatches.append(
                        f"rewrite {rewrite_name} disagrees with the direct "
                        f"estimator on {qc.name}/{alias} group {key}: "
                        f"{value!r} vs {expected.value!r} "
                        f"({alloc_name} allocation)"
                    )
            for bound in config.bounds:
                if bound == "hoeffding" and hoeffding[cell] is None:
                    continue
                tallies = acc.cell(
                    (alloc_name, rewrite_name, bound, qc.name, alias)
                )
                for key, true_value in truth.items():
                    group_estimate = direct.get(key)
                    if group_estimate is None or key not in values:
                        tallies[2] += 1  # missing group
                        continue
                    if (
                        bound in EXACT_LEVEL_BOUNDS
                        and group_estimate.sample_tuples
                        < config.normal_min_support
                    ):
                        # CLT-based bounds are not promised below this
                        # support (the serve-time guard repairs such
                        # groups); record rather than coverage-test.
                        tallies[4] += 1
                        continue
                    halfwidth = self._halfwidth(
                        bound, group_estimate, hoeffding[cell], key
                    )
                    if not math.isfinite(halfwidth):
                        tallies[3] += 1  # unusable bound
                        continue
                    tampered = values[key] * config.tamper_scale
                    roundoff = 1e-9 * max(1.0, abs(true_value))
                    if halfwidth == 0.0 and abs(tampered - true_value) <= (
                        roundoff
                    ):
                        # A zero halfwidth claims the estimate is exact
                        # (e.g. COUNT with no predicate: every stratum
                        # contributes exactly N_g).  The claim holds to
                        # float precision, but a deterministic quantity
                        # says nothing about *statistical* calibration,
                        # so it is not a coverage trial.  A zero
                        # halfwidth with real error falls through and
                        # fails coverage -- that is the overconfidence
                        # defect this harness exists to catch.
                        tallies[5] += 1
                        continue
                    tallies[1] += 1
                    # The roundoff allowance keeps statistical bounds from
                    # failing on ~1e-13 float noise in the rewrites'
                    # sum-of-scale-factors arithmetic.
                    if abs(tampered - true_value) <= halfwidth + roundoff:
                        tallies[0] += 1

    # -- summarization -------------------------------------------------------

    def _summarize(
        self, testbed: Testbed, acc: _Accumulator, elapsed: float
    ) -> CalibrationResult:
        config = self.config
        cells = [
            CellResult(
                allocation=alloc,
                rewrite=rewrite,
                bound=bound,
                query=query,
                aggregate=alias,
                check=check_coverage(
                    covered, trials, config.confidence, bound,
                    config.band_confidence,
                ),
                missing=missing,
                unbounded=unbounded,
                low_support=low_support,
                exact=exact,
            )
            for (alloc, rewrite, bound, query, alias), (
                covered, trials, missing, unbounded, low_support, exact,
            ) in sorted(acc.coverage.items())
        ]

        pooled: Dict[Tuple[str, str], List[int]] = {}
        for cell in cells:
            if cell.bound not in EXACT_LEVEL_BOUNDS:
                continue
            slot = pooled.setdefault((cell.allocation, cell.rewrite), [0, 0])
            slot[0] += cell.check.covered
            slot[1] += cell.check.trials
        pairs = [
            PairSummary(
                allocation=alloc,
                rewrite=rewrite,
                bound=EXACT_LEVEL_BOUNDS[0],
                check=check_coverage(
                    covered, trials, config.confidence,
                    EXACT_LEVEL_BOUNDS[0], config.band_confidence,
                ),
            )
            for (alloc, rewrite), (covered, trials) in sorted(pooled.items())
        ]

        func_of = {
            (qc.name, a.alias): a.func
            for qc in testbed.queries
            for a in qc.query.aggregates()
        }
        grouped: Dict[Tuple[str, str, str], List[Tuple[GroupKey, List[float]]]] = {}
        for (alloc, query, alias, key), slot in acc.bias.items():
            grouped.setdefault((alloc, query, alias), []).append((key, slot))
        bias_results: List[BiasResult] = []
        for (alloc, query, alias), entries in sorted(grouped.items()):
            func = func_of[(query, alias)]
            max_abs_t, worst = 0.0, None
            rel_biases: List[float] = []
            sq_errors: List[float] = []
            flagged: List[GroupKey] = []
            for key, (sum_err, sum_sq, n, true_value) in entries:
                if n < config.min_bias_replications:
                    continue
                mean_err = sum_err / n
                sq_errors.append(sum_sq / n)
                if true_value != 0:
                    rel_biases.append(mean_err / abs(true_value))
                roundoff = 1e-9 * max(1.0, abs(true_value))
                if func in ("sum", "count"):
                    if abs(mean_err) <= roundoff:
                        # Exact to float precision (deterministic
                        # estimates, e.g. unfiltered COUNT, reproduce the
                        # same ~1e-13 arithmetic error every replication,
                        # which a t-statistic would read as an infinitely
                        # significant bias).
                        continue
                    t = bias_t_statistic(sum_err, sum_sq, n)
                    if math.isfinite(t) and abs(t) > max_abs_t:
                        max_abs_t, worst = abs(t), key
                    elif math.isinf(t):
                        max_abs_t, worst = float("inf"), key
                    if not (abs(t) <= config.bias_t_threshold):
                        flagged.append(key)
                else:
                    # avg: a ratio estimator, only asymptotically
                    # unbiased, so a tolerance check -- widened by the
                    # replication noise of the mean error itself, or
                    # small low-support groups would flag on sampling
                    # noise rather than bias.
                    var = (
                        max(sum_sq - n * mean_err * mean_err, 0.0) / (n - 1)
                        if n > 1
                        else 0.0
                    )
                    noise = config.bias_t_threshold * math.sqrt(var / n)
                    if true_value != 0 and abs(mean_err) > (
                        config.avg_bias_tolerance * abs(true_value) + noise
                    ):
                        flagged.append(key)
            bias_results.append(
                BiasResult(
                    allocation=alloc,
                    query=query,
                    aggregate=alias,
                    func=func,
                    groups=len(entries),
                    max_abs_t=max_abs_t,
                    worst_group=worst,
                    mean_relative_bias=(
                        float(np.mean(rel_biases)) if rel_biases else 0.0
                    ),
                    rmse=(
                        float(math.sqrt(np.mean(sq_errors)))
                        if sq_errors
                        else 0.0
                    ),
                    flagged_groups=tuple(flagged),
                )
            )
        # Cap mismatch spam: one line per distinct (rewrite, query, alias).
        seen, mismatches = set(), []
        for message in acc.mismatches:
            head = message.split(" group ")[0]
            if head not in seen:
                seen.add(head)
                mismatches.append(message)
        return CalibrationResult(
            config=config,
            cells=cells,
            pairs=pairs,
            bias=bias_results,
            rewrite_mismatches=mismatches,
            elapsed_seconds=elapsed,
        )


def negative_control(
    seed: int = 2026, tamper_scale: float = 1.1
) -> CalibrationResult:
    """Prove the harness has power: a deliberately biased estimator
    (every estimate scaled by ``tamper_scale``) must be flagged.

    Runs a deliberately small single-configuration campaign; the result's
    ``passed`` must be ``False`` with both coverage and bias flags.
    """
    config = CalibrationConfig(
        seed=seed,
        replications=16,
        budget=600,
        allocations=("congress",),
        rewrites=("integrated",),
        bounds=("normal",),
        testbed=TestbedConfig(query_names=("Qg2",)),
        tamper_scale=tamper_scale,
    )
    return CalibrationRunner(config).run()
