"""Unbiased estimators over stratified samples and probabilistic bounds."""

from .errors import (
    DEFAULT_CONFIDENCE,
    ErrorBound,
    chebyshev_from_variance,
    chebyshev_halfwidth,
    hoeffding_halfwidth_mean,
    hoeffding_halfwidth_stratified_sum,
    hoeffding_halfwidth_sum,
    normal_halfwidth,
    normal_quantile,
    standard_error,
)
from .point import GroupEstimate, estimate, estimate_single, group_support

__all__ = [
    "DEFAULT_CONFIDENCE",
    "ErrorBound",
    "GroupEstimate",
    "chebyshev_from_variance",
    "chebyshev_halfwidth",
    "estimate",
    "estimate_single",
    "hoeffding_halfwidth_mean",
    "group_support",
    "hoeffding_halfwidth_stratified_sum",
    "hoeffding_halfwidth_sum",
    "normal_halfwidth",
    "normal_quantile",
    "standard_error",
]
