"""Unbiased point estimation from stratified (biased) samples.

Section 5.1 of the paper: a congressional sample is a union of per-group
uniform samples with different rates, so each sampled tuple carries a
*ScaleFactor* -- the inverse of its stratum's sampling rate.  Then

* ``SUM``:   sum of ``ScaleFactor * value`` over qualifying sample tuples;
* ``COUNT``: sum of ``ScaleFactor`` over qualifying sample tuples;
* ``AVG``:   scaled SUM / scaled COUNT (a ratio estimator).

These are the classic stratified expansion estimators [Coc77]; SUM and COUNT
are exactly unbiased, AVG is asymptotically unbiased.

This module computes the estimates directly from a
:class:`~repro.sampling.stratified.StratifiedSample` (no SQL round trip) and
also returns per-answer-group *variance estimates*, from which
:mod:`repro.estimators.errors` derives confidence bounds.  The SQL rewriting
strategies (:mod:`repro.rewrite`) must agree with these numbers -- that
equivalence is asserted in the integration tests.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence, Tuple, Union

import numpy as np

from ..engine.expressions import Expression
from ..engine.predicates import Predicate
from ..sampling.groups import GroupKey, make_key
from ..sampling.stratified import StratifiedSample

__all__ = ["GroupEstimate", "estimate", "estimate_single", "group_support"]


@dataclass(frozen=True)
class GroupEstimate:
    """Estimate for one answer group of a group-by query.

    Attributes:
        key: the answer-group key (over the query's group-by columns).
        value: the point estimate.
        variance: estimated variance of the point estimate (NaN when it
            cannot be estimated, e.g. singleton strata).
        sample_tuples: number of sample tuples that contributed.
    """

    key: GroupKey
    value: float
    variance: float
    sample_tuples: int

    @property
    def std_error(self) -> float:
        return float(np.sqrt(self.variance)) if self.variance >= 0 else float("nan")


def estimate(
    sample: StratifiedSample,
    func: str,
    column: Optional[Union[str, Expression]],
    predicate: Optional[Predicate] = None,
    group_by: Sequence[str] = (),
) -> Dict[GroupKey, GroupEstimate]:
    """Estimate ``func(column)`` per answer group.

    Args:
        sample: the stratified sample.
        func: ``"sum"``, ``"count"``, or ``"avg"``.
        column: aggregate column name or arbitrary scalar
            :class:`~repro.engine.expressions.Expression` (ignored for
            count; pass ``None``).
        predicate: optional WHERE predicate, evaluated on sample tuples.
        group_by: answer grouping columns ``T'`` (may be any subset of the
            base table's columns, though congressional guarantees only hold
            for subsets of the stratification columns).

    Returns:
        Mapping from answer-group key to :class:`GroupEstimate`.  Groups
        with no qualifying sample tuples are absent (the sample cannot know
        about them) -- the paper's first user requirement is handled by the
        allocation guaranteeing minimum per-group sample sizes.
    """
    func = func.lower()
    if func not in ("sum", "count", "avg"):
        raise ValueError(f"unsupported estimator {func!r}")
    if func != "count" and column is None:
        raise ValueError(f"{func} requires an aggregate column")

    strata = [s for s in sample.strata.values() if s.sample_size > 0]
    if not strata:
        return {}

    base = sample.base_table
    group_cols = list(group_by)

    # Assemble per-sampled-row arrays: value, scale factor, stratum id.
    indices = np.concatenate([s.row_indices for s in strata])
    sf = np.concatenate(
        [np.full(s.sample_size, s.scale_factor) for s in strata]
    )
    stratum_ids = np.concatenate(
        [np.full(s.sample_size, i, dtype=np.int64) for i, s in enumerate(strata)]
    )
    rows = base.take(indices)

    qualifies = (
        predicate.evaluate(rows)
        if predicate is not None
        else np.ones(rows.num_rows, dtype=bool)
    )
    if column is None:
        values = np.ones(rows.num_rows)
    elif isinstance(column, Expression):
        values = np.asarray(column.evaluate(rows), dtype=np.float64)
    else:
        values = np.asarray(rows.column(column), dtype=np.float64)

    # Answer-group id per sampled row.
    if group_cols:
        from ..engine.groupby import group_ids_for

        answer_ids, raw_keys, num_answers = group_ids_for(rows, group_cols)
        answer_keys = [make_key(k) for k in raw_keys]
    else:
        answer_ids = np.zeros(rows.num_rows, dtype=np.int64)
        answer_keys = [()]
        num_answers = 1

    populations = np.array([s.population for s in strata], dtype=np.float64)
    sizes = np.array([s.sample_size for s in strata], dtype=np.float64)

    out: Dict[GroupKey, GroupEstimate] = {}
    for aid in range(num_answers):
        in_answer = answer_ids == aid
        mask = in_answer & qualifies
        tuples = int(mask.sum())
        if tuples == 0:
            continue
        if func == "sum":
            value, variance = _expansion(
                values, mask, sf, stratum_ids, populations, sizes
            )
        elif func == "count":
            value, variance = _expansion(
                np.ones_like(values), mask, sf, stratum_ids, populations, sizes
            )
        else:  # avg -- ratio of scaled sum to scaled count
            num, num_var = _expansion(
                values, mask, sf, stratum_ids, populations, sizes
            )
            den, den_var = _expansion(
                np.ones_like(values), mask, sf, stratum_ids, populations, sizes
            )
            if den == 0:
                continue
            value = num / den
            # First-order (delta-method) variance for the ratio estimator,
            # ignoring the covariance term (conservative simplification).
            variance = (num_var + value * value * den_var) / (den * den)
        out[answer_keys[aid]] = GroupEstimate(
            key=answer_keys[aid],
            value=float(value),
            variance=float(variance),
            sample_tuples=tuples,
        )
    return out


def estimate_single(
    sample: StratifiedSample,
    func: str,
    column: Optional[Union[str, Expression]],
    predicate: Optional[Predicate] = None,
) -> Optional[GroupEstimate]:
    """Estimate a no-group-by aggregate; ``None`` if nothing qualifies."""
    result = estimate(sample, func, column, predicate=predicate, group_by=())
    return result.get(())


def group_support(
    sample: StratifiedSample,
    predicate: Optional[Predicate] = None,
    group_by: Sequence[str] = (),
) -> Dict[GroupKey, int]:
    """Qualifying sample tuples per answer group.

    The serve-time guard uses this to decide whether an answer group has
    enough sample support for its estimate to be trusted (the paper's
    small-group problem, observed at answer time).  Groups with zero
    qualifying tuples are absent, mirroring :func:`estimate`.
    """
    strata = [s for s in sample.strata.values() if s.sample_size > 0]
    if not strata:
        return {}

    base = sample.base_table
    indices = np.concatenate([s.row_indices for s in strata])
    rows = base.take(indices)
    qualifies = (
        predicate.evaluate(rows)
        if predicate is not None
        else np.ones(rows.num_rows, dtype=bool)
    )

    group_cols = list(group_by)
    if group_cols:
        from ..engine.groupby import group_ids_for

        answer_ids, raw_keys, num_answers = group_ids_for(rows, group_cols)
        answer_keys = [make_key(k) for k in raw_keys]
    else:
        answer_ids = np.zeros(rows.num_rows, dtype=np.int64)
        answer_keys = [()]
        num_answers = 1

    counts = np.bincount(
        answer_ids[qualifies], minlength=num_answers
    )
    return {
        answer_keys[aid]: int(counts[aid])
        for aid in range(num_answers)
        if counts[aid] > 0
    }


def _expansion(
    values: np.ndarray,
    mask: np.ndarray,
    sf: np.ndarray,
    stratum_ids: np.ndarray,
    populations: np.ndarray,
    sizes: np.ndarray,
) -> Tuple[float, float]:
    """Stratified expansion estimator and its variance estimate.

    Works on the *zero-extended* values ``y' = y * mask`` so that the
    predicate/answer-group restriction is handled inside each stratum: the
    estimator is ``sum_g (N_g/n_g) * sum_{i in sample_g} y'_i`` and its
    estimated variance is ``sum_g N_g^2 (1 - n_g/N_g) s'^2_g / n_g`` with
    ``s'^2_g`` the within-stratum sample variance of ``y'`` [Coc77, ch. 5].
    Singleton strata contribute zero estimated variance (their variance is
    not estimable from one observation; with full enumeration the true
    variance is 0 anyway because the FPC vanishes).
    """
    num_strata = len(populations)
    masked = np.where(mask, values, 0.0)

    total = float(np.sum(masked * sf))

    sums = np.bincount(stratum_ids, weights=masked, minlength=num_strata)
    sumsq = np.bincount(
        stratum_ids, weights=masked * masked, minlength=num_strata
    )
    with np.errstate(divide="ignore", invalid="ignore"):
        means = sums / sizes
        sample_var = np.where(
            sizes > 1,
            np.maximum(sumsq - sizes * means * means, 0.0)
            / np.maximum(sizes - 1.0, 1.0),
            0.0,
        )
        fpc = 1.0 - sizes / populations
        per_stratum = populations * populations * fpc * sample_var / sizes
    variance = float(np.sum(per_stratum))
    return total, variance
