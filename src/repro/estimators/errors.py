"""Probabilistic error bounds for approximate answers.

Aqua supplements every approximate answer with an error bound at a chosen
confidence level (Section 2: "probabilistic error/confidence bounds on the
answer, based on the Hoeffding and Chebyshev formulas").  Three bound
families are provided:

* **Standard error** of the sample mean under uniform sampling without
  replacement (Equation 2), with the finite-population correction.
* **Hoeffding** bounds: distribution-free, need only the value range.
* **Chebyshev** bounds: need a variance estimate, valid for any estimator
  with finite variance -- this is what we attach to stratified estimates.

All half-width helpers return the bound ``e`` such that the true value lies
within ``estimate ± e`` with at least the requested confidence.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

__all__ = [
    "ErrorBound",
    "standard_error",
    "normal_quantile",
    "normal_halfwidth",
    "hoeffding_halfwidth_mean",
    "hoeffding_halfwidth_sum",
    "hoeffding_halfwidth_stratified_sum",
    "chebyshev_halfwidth",
    "chebyshev_from_variance",
    "relative_halfwidth",
]

DEFAULT_CONFIDENCE = 0.90  # Aqua's example confidence level (Figure 4)


@dataclass(frozen=True)
class ErrorBound:
    """A symmetric error bound at a confidence level."""

    halfwidth: float
    confidence: float
    method: str

    def interval(self, estimate: float) -> tuple:
        return (estimate - self.halfwidth, estimate + self.halfwidth)


def _check_confidence(confidence: float) -> None:
    if not 0.0 < confidence < 1.0:
        raise ValueError(f"confidence must be in (0, 1), got {confidence}")


def standard_error(
    population_std: float, sample_size: int, population_size: int
) -> float:
    """Equation 2: ``S/sqrt(n) * sqrt(1 - n/N)``.

    Args:
        population_std: ``S``, the (population) standard deviation.
        sample_size: ``n``.
        population_size: ``N``.
    """
    if sample_size <= 0:
        return float("inf")
    if population_size <= 0 or sample_size > population_size:
        raise ValueError(
            f"need 0 < n <= N, got n={sample_size} N={population_size}"
        )
    fpc = 1.0 - sample_size / population_size
    return population_std / math.sqrt(sample_size) * math.sqrt(max(fpc, 0.0))


def normal_quantile(p: float) -> float:
    """The standard normal quantile function ``Phi^{-1}(p)``.

    Acklam's rational approximation (relative error below ``1.15e-9``
    everywhere), so the standard-error bound family needs no scipy.
    """
    if not 0.0 < p < 1.0:
        raise ValueError(f"p must be in (0, 1), got {p}")
    # Coefficients for the central and tail regions.
    a = (-3.969683028665376e+01, 2.209460984245205e+02,
         -2.759285104469687e+02, 1.383577518672690e+02,
         -3.066479806614716e+01, 2.506628277459239e+00)
    b = (-5.447609879822406e+01, 1.615858368580409e+02,
         -1.556989798598866e+02, 6.680131188771972e+01,
         -1.328068155288572e+01)
    c = (-7.784894002430293e-03, -3.223964580411365e-01,
         -2.400758277161838e+00, -2.549732539343734e+00,
         4.374664141464968e+00, 2.938163982698783e+00)
    d = (7.784695709041462e-03, 3.224671290700398e-01,
         2.445134137142996e+00, 3.754408661907416e+00)
    p_low, p_high = 0.02425, 1 - 0.02425
    if p < p_low:
        q = math.sqrt(-2.0 * math.log(p))
        return (((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q
                + c[5]) / ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1)
    if p > p_high:
        q = math.sqrt(-2.0 * math.log(1.0 - p))
        return -(((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q
                 + c[5]) / ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1)
    q = p - 0.5
    r = q * q
    return (((((a[0] * r + a[1]) * r + a[2]) * r + a[3]) * r + a[4]) * r
            + a[5]) * q / (((((b[0] * r + b[1]) * r + b[2]) * r + b[3]) * r
                            + b[4]) * r + 1)


def normal_halfwidth(
    std_error: float, confidence: float = DEFAULT_CONFIDENCE
) -> float:
    """Standard-error (normal-approximation) half-width: ``z * SE``.

    The CLT-based bound family: at confidence ``1 - delta`` the half-width
    is ``Phi^{-1}(1 - delta/2) * SE``.  Unlike Chebyshev this is *exact* at
    the nominal level for (asymptotically) normal estimators rather than
    conservative, which is what makes it the right family for the
    calibration harness in :mod:`repro.verify`: empirical coverage of a 95%
    normal bound should sit *at* 95%, inside a statistical tolerance band,
    not merely above it.
    """
    _check_confidence(confidence)
    if std_error < 0:
        raise ValueError(f"std error must be >= 0, got {std_error}")
    delta = 1.0 - confidence
    return normal_quantile(1.0 - delta / 2.0) * std_error


def hoeffding_halfwidth_mean(
    value_range: float, sample_size: int, confidence: float = DEFAULT_CONFIDENCE
) -> float:
    """Hoeffding bound on the error of a sample mean of bounded values.

    For n iid observations in an interval of width ``value_range``::

        P(|mean_est - mean| >= e) <= 2 exp(-2 n e^2 / range^2)

    giving ``e = range * sqrt(ln(2/delta) / (2n))`` at confidence
    ``1 - delta``.
    """
    _check_confidence(confidence)
    if sample_size <= 0:
        return float("inf")
    if value_range < 0:
        raise ValueError(f"value range must be >= 0, got {value_range}")
    delta = 1.0 - confidence
    return value_range * math.sqrt(math.log(2.0 / delta) / (2.0 * sample_size))


def hoeffding_halfwidth_sum(
    value_range: float,
    sample_size: int,
    population_size: int,
    confidence: float = DEFAULT_CONFIDENCE,
) -> float:
    """Hoeffding bound for an expansion SUM estimate from a uniform sample.

    The SUM estimator is ``N * mean_est``, so the mean bound scales by
    ``N``.  This is the ``sum_error`` of the paper's Figure 2 rewrite.
    """
    if population_size < 0:
        raise ValueError(f"population size must be >= 0, got {population_size}")
    return population_size * hoeffding_halfwidth_mean(
        value_range, sample_size, confidence
    )


def hoeffding_halfwidth_stratified_sum(
    ranges: "list[float]",
    populations: "list[float]",
    sizes: "list[int]",
    confidence: float = DEFAULT_CONFIDENCE,
) -> float:
    """Hoeffding bound for a *stratified* expansion SUM estimate.

    The estimator ``sum_g (N_g / n_g) * sum_i y_{g,i}`` is a sum of
    ``sum_g n_g`` independent bounded terms; term ``(g, i)`` ranges over an
    interval of width ``(N_g / n_g) * range_g``.  Hoeffding's inequality
    then gives a half-width of::

        sqrt( ln(2/delta) / 2 * sum_g n_g * (N_g/n_g * range_g)^2 )
      = sqrt( ln(2/delta) / 2 * sum_g N_g^2 range_g^2 / n_g )

    With a single stratum this reduces to
    :func:`hoeffding_halfwidth_sum`.  This is the distribution-free
    alternative to the Chebyshev bound used by default; it needs only the
    per-stratum value ranges, which Aqua can precompute with the synopsis.

    Args:
        ranges: per-stratum value range (max - min).
        populations: per-stratum population ``N_g``.
        sizes: per-stratum sample size ``n_g`` (zero-size strata are
            ignored -- they contribute nothing to the estimator either).
        confidence: confidence level.
    """
    _check_confidence(confidence)
    if not (len(ranges) == len(populations) == len(sizes)):
        raise ValueError("ranges/populations/sizes must align")
    delta = 1.0 - confidence
    total = 0.0
    for value_range, population, size in zip(ranges, populations, sizes):
        if size == 0:
            continue
        if value_range < 0 or population < 0 or size < 0:
            raise ValueError("inputs must be non-negative")
        total += population * population * value_range * value_range / size
    return math.sqrt(math.log(2.0 / delta) / 2.0 * total)


def chebyshev_halfwidth(
    std_error: float, confidence: float = DEFAULT_CONFIDENCE
) -> float:
    """Chebyshev: ``P(|X - mu| >= k sigma) <= 1/k^2``.

    At confidence ``1 - delta`` the half-width is ``sigma / sqrt(delta)``.
    Valid for any finite-variance estimator, hence usable with the
    stratified variance estimates of :mod:`repro.estimators.point`.
    """
    _check_confidence(confidence)
    if std_error < 0:
        raise ValueError(f"std error must be >= 0, got {std_error}")
    delta = 1.0 - confidence
    return std_error / math.sqrt(delta)


def relative_halfwidth(halfwidth: float, estimate: float) -> float:
    """Half-width as a fraction of the estimate's magnitude.

    Used by the serve-time guard to decide whether a bound is tight enough
    to be useful.  ``NaN`` half-widths pass through as ``NaN`` (the guard
    treats them separately); a zero estimate with a nonzero half-width
    yields ``inf`` (the bound says nothing relative to the value), while a
    zero half-width is ``0.0`` regardless of the estimate.
    """
    if math.isnan(halfwidth):
        return float("nan")
    if halfwidth == 0.0:
        return 0.0
    if estimate == 0.0:
        return float("inf")
    return abs(halfwidth) / abs(estimate)


def chebyshev_from_variance(
    variance: float, confidence: float = DEFAULT_CONFIDENCE
) -> ErrorBound:
    """Convenience wrapper: variance -> :class:`ErrorBound`."""
    if variance < 0 or math.isnan(variance):
        return ErrorBound(float("nan"), confidence, "chebyshev")
    return ErrorBound(
        chebyshev_halfwidth(math.sqrt(variance), confidence),
        confidence,
        "chebyshev",
    )
