"""Probabilistic error bounds for approximate answers.

Aqua supplements every approximate answer with an error bound at a chosen
confidence level (Section 2: "probabilistic error/confidence bounds on the
answer, based on the Hoeffding and Chebyshev formulas").  Three bound
families are provided:

* **Standard error** of the sample mean under uniform sampling without
  replacement (Equation 2), with the finite-population correction.
* **Hoeffding** bounds: distribution-free, need only the value range.
* **Chebyshev** bounds: need a variance estimate, valid for any estimator
  with finite variance -- this is what we attach to stratified estimates.

All half-width helpers return the bound ``e`` such that the true value lies
within ``estimate ± e`` with at least the requested confidence.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

__all__ = [
    "ErrorBound",
    "standard_error",
    "hoeffding_halfwidth_mean",
    "hoeffding_halfwidth_sum",
    "hoeffding_halfwidth_stratified_sum",
    "chebyshev_halfwidth",
    "chebyshev_from_variance",
    "relative_halfwidth",
]

DEFAULT_CONFIDENCE = 0.90  # Aqua's example confidence level (Figure 4)


@dataclass(frozen=True)
class ErrorBound:
    """A symmetric error bound at a confidence level."""

    halfwidth: float
    confidence: float
    method: str

    def interval(self, estimate: float) -> tuple:
        return (estimate - self.halfwidth, estimate + self.halfwidth)


def _check_confidence(confidence: float) -> None:
    if not 0.0 < confidence < 1.0:
        raise ValueError(f"confidence must be in (0, 1), got {confidence}")


def standard_error(
    population_std: float, sample_size: int, population_size: int
) -> float:
    """Equation 2: ``S/sqrt(n) * sqrt(1 - n/N)``.

    Args:
        population_std: ``S``, the (population) standard deviation.
        sample_size: ``n``.
        population_size: ``N``.
    """
    if sample_size <= 0:
        return float("inf")
    if population_size <= 0 or sample_size > population_size:
        raise ValueError(
            f"need 0 < n <= N, got n={sample_size} N={population_size}"
        )
    fpc = 1.0 - sample_size / population_size
    return population_std / math.sqrt(sample_size) * math.sqrt(max(fpc, 0.0))


def hoeffding_halfwidth_mean(
    value_range: float, sample_size: int, confidence: float = DEFAULT_CONFIDENCE
) -> float:
    """Hoeffding bound on the error of a sample mean of bounded values.

    For n iid observations in an interval of width ``value_range``::

        P(|mean_est - mean| >= e) <= 2 exp(-2 n e^2 / range^2)

    giving ``e = range * sqrt(ln(2/delta) / (2n))`` at confidence
    ``1 - delta``.
    """
    _check_confidence(confidence)
    if sample_size <= 0:
        return float("inf")
    if value_range < 0:
        raise ValueError(f"value range must be >= 0, got {value_range}")
    delta = 1.0 - confidence
    return value_range * math.sqrt(math.log(2.0 / delta) / (2.0 * sample_size))


def hoeffding_halfwidth_sum(
    value_range: float,
    sample_size: int,
    population_size: int,
    confidence: float = DEFAULT_CONFIDENCE,
) -> float:
    """Hoeffding bound for an expansion SUM estimate from a uniform sample.

    The SUM estimator is ``N * mean_est``, so the mean bound scales by
    ``N``.  This is the ``sum_error`` of the paper's Figure 2 rewrite.
    """
    if population_size < 0:
        raise ValueError(f"population size must be >= 0, got {population_size}")
    return population_size * hoeffding_halfwidth_mean(
        value_range, sample_size, confidence
    )


def hoeffding_halfwidth_stratified_sum(
    ranges: "list[float]",
    populations: "list[float]",
    sizes: "list[int]",
    confidence: float = DEFAULT_CONFIDENCE,
) -> float:
    """Hoeffding bound for a *stratified* expansion SUM estimate.

    The estimator ``sum_g (N_g / n_g) * sum_i y_{g,i}`` is a sum of
    ``sum_g n_g`` independent bounded terms; term ``(g, i)`` ranges over an
    interval of width ``(N_g / n_g) * range_g``.  Hoeffding's inequality
    then gives a half-width of::

        sqrt( ln(2/delta) / 2 * sum_g n_g * (N_g/n_g * range_g)^2 )
      = sqrt( ln(2/delta) / 2 * sum_g N_g^2 range_g^2 / n_g )

    With a single stratum this reduces to
    :func:`hoeffding_halfwidth_sum`.  This is the distribution-free
    alternative to the Chebyshev bound used by default; it needs only the
    per-stratum value ranges, which Aqua can precompute with the synopsis.

    Args:
        ranges: per-stratum value range (max - min).
        populations: per-stratum population ``N_g``.
        sizes: per-stratum sample size ``n_g`` (zero-size strata are
            ignored -- they contribute nothing to the estimator either).
        confidence: confidence level.
    """
    _check_confidence(confidence)
    if not (len(ranges) == len(populations) == len(sizes)):
        raise ValueError("ranges/populations/sizes must align")
    delta = 1.0 - confidence
    total = 0.0
    for value_range, population, size in zip(ranges, populations, sizes):
        if size == 0:
            continue
        if value_range < 0 or population < 0 or size < 0:
            raise ValueError("inputs must be non-negative")
        total += population * population * value_range * value_range / size
    return math.sqrt(math.log(2.0 / delta) / 2.0 * total)


def chebyshev_halfwidth(
    std_error: float, confidence: float = DEFAULT_CONFIDENCE
) -> float:
    """Chebyshev: ``P(|X - mu| >= k sigma) <= 1/k^2``.

    At confidence ``1 - delta`` the half-width is ``sigma / sqrt(delta)``.
    Valid for any finite-variance estimator, hence usable with the
    stratified variance estimates of :mod:`repro.estimators.point`.
    """
    _check_confidence(confidence)
    if std_error < 0:
        raise ValueError(f"std error must be >= 0, got {std_error}")
    delta = 1.0 - confidence
    return std_error / math.sqrt(delta)


def relative_halfwidth(halfwidth: float, estimate: float) -> float:
    """Half-width as a fraction of the estimate's magnitude.

    Used by the serve-time guard to decide whether a bound is tight enough
    to be useful.  ``NaN`` half-widths pass through as ``NaN`` (the guard
    treats them separately); a zero estimate with a nonzero half-width
    yields ``inf`` (the bound says nothing relative to the value), while a
    zero half-width is ``0.0`` regardless of the estimate.
    """
    if math.isnan(halfwidth):
        return float("nan")
    if halfwidth == 0.0:
        return 0.0
    if estimate == 0.0:
        return float("inf")
    return abs(halfwidth) / abs(estimate)


def chebyshev_from_variance(
    variance: float, confidence: float = DEFAULT_CONFIDENCE
) -> ErrorBound:
    """Convenience wrapper: variance -> :class:`ErrorBound`."""
    if variance < 0 or math.isnan(variance):
        return ErrorBound(float("nan"), confidence, "chebyshev")
    return ErrorBound(
        chebyshev_halfwidth(math.sqrt(variance), confidence),
        confidence,
        "chebyshev",
    )
