"""Experiment runners: one per table/figure of Section 7 (plus Section 4.6).

See DESIGN.md's per-experiment index.  Each runner returns a result object
with a ``format()`` method producing the paper-style text table; the
``benchmarks/`` directory wires these into pytest-benchmark.
"""

from .drift import DriftResult, run_drift
from .expt1 import Expt1Result, run_expt1
from .expt2 import DEFAULT_SAMPLE_FRACTIONS as EXPT2_FRACTIONS
from .expt2 import Expt2Result, run_expt2
from .expt3 import Expt3Result, run_expt3
from .expt4 import DEFAULT_GROUP_COUNTS, Expt4Result, run_expt4
from .fig5 import FIG5_BUDGET, FIG5_COUNTS, Fig5Result, run_fig5
from .harness import Testbed, default_table_size, standard_strategies, time_plan
from .profile import GroupSizeProfile, run_group_size_profile
from .report import format_mapping_table, format_table
from .scaledown_expt import ScaleDownResult, run_scaledown

__all__ = [
    "DEFAULT_GROUP_COUNTS",
    "DriftResult",
    "GroupSizeProfile",
    "EXPT2_FRACTIONS",
    "Expt1Result",
    "Expt2Result",
    "Expt3Result",
    "Expt4Result",
    "FIG5_BUDGET",
    "FIG5_COUNTS",
    "Fig5Result",
    "ScaleDownResult",
    "Testbed",
    "default_table_size",
    "format_mapping_table",
    "format_table",
    "run_drift",
    "run_expt1",
    "run_expt2",
    "run_expt3",
    "run_expt4",
    "run_fig5",
    "run_group_size_profile",
    "run_scaledown",
    "standard_strategies",
    "time_plan",
]
