"""Experiment 2: sample size vs. accuracy on ``Q_g2`` (Figure 17).

Fix the group-size skew at z = 0.86 and sweep the sample percentage; errors
should fall with sample size for every scheme, with House flattening early
(extra space goes to big groups that are already well answered) and Congress
dropping rapidly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence, Tuple

from ..synthetic.queries import qg2
from ..synthetic.tpcd import LineitemConfig
from .harness import Testbed, default_table_size
from .report import format_mapping_table

__all__ = ["Expt2Result", "run_expt2", "DEFAULT_SAMPLE_FRACTIONS"]

DEFAULT_SAMPLE_FRACTIONS: Tuple[float, ...] = (
    0.01, 0.03, 0.07, 0.15, 0.30, 0.50, 0.75,
)


@dataclass(frozen=True)
class Expt2Result:
    """Errors per sample fraction per strategy (percent)."""

    errors: Dict[str, Dict[str, float]]  # "SP=x%" -> strategy -> error%
    table_size: int
    group_skew: float

    def format(self) -> str:
        return format_mapping_table(
            "sample",
            self.errors,
            title=(
                f"Expt 2 (Figure 17): Qg2 avg % error vs sample size, "
                f"T={self.table_size}, z={self.group_skew}"
            ),
        )


def run_expt2(
    table_size: Optional[int] = None,
    sample_fractions: Sequence[float] = DEFAULT_SAMPLE_FRACTIONS,
    num_groups: int = 1000,
    group_skew: float = 0.86,
    seed: int = 0,
) -> Expt2Result:
    """Run Experiment 2 and return the error sweep."""
    table_size = table_size or default_table_size()
    config = LineitemConfig(
        table_size=table_size,
        num_groups=num_groups,
        group_skew=group_skew,
        seed=seed,
    )
    query = qg2()
    errors: Dict[str, Dict[str, float]] = {}
    for fraction in sample_fractions:
        bed = Testbed.create(config, fraction)
        label = f"SP={fraction:.0%}"
        errors[label] = {
            strategy: bed.query_error(strategy, query)
            for strategy in bed.samples
        }
    return Expt2Result(
        errors=errors, table_size=table_size, group_skew=group_skew
    )
