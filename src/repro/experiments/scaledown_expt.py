"""Scale-down factor experiment (the Section 4.6 analysis).

Sweeps the pathological distribution of Equation 7 over (n, m) and reports
Congress's scale-down factor ``f`` against the paper's closed-form bound and
the asymptotic worst case ``2^-n``; also confirms ``f = 1`` on uniform
cross-product data.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from ..core.scaledown import (
    pathological_counts,
    pathological_factor_bound,
    scale_down_factor,
    scale_down_lower_bound,
    uniform_cross_product_counts,
)
from .report import format_table

__all__ = ["ScaleDownResult", "run_scaledown"]


@dataclass(frozen=True)
class ScaleDownResult:
    """Rows of (n, m, f, bound, 2^-n) plus the uniform-case factors."""

    rows: List[Tuple[int, int, float, float, float]]
    uniform_factors: Dict[int, float]

    def format(self) -> str:
        table = format_table(
            ["n=|G|", "m", "f (measured)", "paper bound", "2^-n"],
            [list(row) for row in self.rows],
            precision=4,
            title="Scale-down factor under the Eq. 7 pathological distribution",
        )
        uniform = ", ".join(
            f"n={n}: f={factor:.4f}"
            for n, factor in sorted(self.uniform_factors.items())
        )
        return table + f"\nUniform cross-product data -> {uniform}"


def run_scaledown(
    configurations: Sequence[Tuple[int, int]] = (
        (1, 4), (1, 16), (2, 4), (2, 8), (2, 16), (3, 4), (3, 6),
    ),
) -> ScaleDownResult:
    """Measure ``f`` for each (n, m) pathological configuration."""
    rows: List[Tuple[int, int, float, float, float]] = []
    for n, m in configurations:
        counts = pathological_counts(n, m)
        grouping = tuple(f"A{i}" for i in range(n))
        factor = scale_down_factor(counts, grouping)
        rows.append(
            (
                n,
                m,
                factor,
                pathological_factor_bound(n, m),
                scale_down_lower_bound(n),
            )
        )
    uniform_factors: Dict[int, float] = {}
    for n in (1, 2, 3):
        counts = uniform_cross_product_counts([3] * n)
        grouping = tuple(f"A{i}" for i in range(n))
        uniform_factors[n] = scale_down_factor(counts, grouping)
    return ScaleDownResult(rows=rows, uniform_factors=uniform_factors)
