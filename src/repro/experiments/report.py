"""Plain-text table rendering for experiment output.

The benchmarks print paper-style tables (rows of Figures 14-18 / Table 3);
this module keeps the formatting in one place.
"""

from __future__ import annotations

from typing import List, Mapping, Optional, Sequence, Union

__all__ = ["format_table", "format_mapping_table"]

Cell = Union[str, int, float]


def _format_cell(value: Cell, precision: int) -> str:
    if isinstance(value, float):
        if value != value:  # NaN
            return "nan"
        return f"{value:.{precision}f}"
    return str(value)


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[Cell]],
    precision: int = 2,
    title: Optional[str] = None,
) -> str:
    """Render an aligned ASCII table."""
    rendered = [[_format_cell(cell, precision) for cell in row] for row in rows]
    widths = [
        max(len(str(headers[i])), *(len(row[i]) for row in rendered))
        if rendered
        else len(str(headers[i]))
        for i in range(len(headers))
    ]
    lines: List[str] = []
    if title:
        lines.append(title)
    header_line = "  ".join(str(h).ljust(widths[i]) for i, h in enumerate(headers))
    lines.append(header_line)
    lines.append("  ".join("-" * w for w in widths))
    for row in rendered:
        lines.append("  ".join(row[i].ljust(widths[i]) for i in range(len(row))))
    return "\n".join(lines)


def format_mapping_table(
    row_label: str,
    data: Mapping[str, Mapping[str, Cell]],
    precision: int = 2,
    title: Optional[str] = None,
) -> str:
    """Render nested mapping {row: {column: value}} as a table."""
    rows_keys = list(data)
    column_keys: List[str] = []
    for row in data.values():
        for key in row:
            if key not in column_keys:
                column_keys.append(key)
    headers = [row_label] + column_keys
    rows = [
        [row_key] + [data[row_key].get(col, "") for col in column_keys]
        for row_key in rows_keys
    ]
    return format_table(headers, rows, precision=precision, title=title)
