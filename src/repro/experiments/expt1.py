"""Experiment 1: accuracy per query class (Figures 14, 15, 16).

Fix the sample percentage at 7%, skew the group sizes hard (z = 1.5), and
measure the average percentage error of House / Senate / Basic Congress /
Congress on three query classes:

* ``Q_g0`` -- 20 no-group-by range queries of ~7% selectivity (Figure 14);
* ``Q_g3`` -- group-by on all three columns (Figure 15);
* ``Q_g2`` -- group-by on two columns (Figure 16).

Expected shape (paper): Senate worst on Q_g0 and House best; House worst on
Q_g3 and Senate best; both poor on Q_g2 where Congress wins; Congress close
to best everywhere.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

import numpy as np

from ..synthetic.queries import qg0_set, qg2, qg3
from ..synthetic.tpcd import LineitemConfig
from .harness import Testbed, default_table_size
from .report import format_mapping_table

__all__ = ["Expt1Result", "run_expt1"]


@dataclass(frozen=True)
class Expt1Result:
    """Errors per query class per allocation strategy (percent)."""

    errors: Dict[str, Dict[str, float]]  # query class -> strategy -> error%
    table_size: int
    sample_fraction: float
    group_skew: float

    def format(self) -> str:
        return format_mapping_table(
            "query",
            self.errors,
            title=(
                f"Expt 1 (Figures 14-16): avg % error, T={self.table_size}, "
                f"SP={self.sample_fraction:.0%}, z={self.group_skew}"
            ),
        )


def run_expt1(
    table_size: Optional[int] = None,
    sample_fraction: float = 0.07,
    num_groups: int = 1000,
    group_skew: float = 1.5,
    seed: int = 0,
) -> Expt1Result:
    """Run Experiment 1 and return per-class, per-strategy errors."""
    table_size = table_size or default_table_size()
    config = LineitemConfig(
        table_size=table_size,
        num_groups=num_groups,
        group_skew=group_skew,
        seed=seed,
    )
    bed = Testbed.create(config, sample_fraction)
    rng = np.random.default_rng(seed + 17)
    qg0_queries = qg0_set(table_size, num_queries=20, selectivity=0.07, rng=rng)

    errors: Dict[str, Dict[str, float]] = {"Qg0": {}, "Qg2": {}, "Qg3": {}}
    for strategy in bed.samples:
        qg0_errors = [bed.query_error(strategy, q) for q in qg0_queries]
        errors["Qg0"][strategy] = float(np.mean(qg0_errors))
        errors["Qg2"][strategy] = bed.query_error(strategy, qg2())
        errors["Qg3"][strategy] = bed.query_error(strategy, qg3())
    return Expt1Result(
        errors=errors,
        table_size=table_size,
        sample_fraction=sample_fraction,
        group_skew=group_skew,
    )
