"""Run all paper experiments and print their tables.

Usage::

    python -m repro.experiments            # scaled-down defaults
    REPRO_SCALE=1.0 python -m repro.experiments   # paper-scale (1M tuples)
    python -m repro.experiments fig5 expt1 # run a subset
"""

from __future__ import annotations

import sys
import time

from .drift import run_drift
from .expt1 import run_expt1
from .expt2 import run_expt2
from .expt3 import run_expt3
from .expt4 import run_expt4
from .fig5 import run_fig5
from .profile import run_group_size_profile
from .scaledown_expt import run_scaledown

RUNNERS = {
    "fig5": run_fig5,
    "expt1": run_expt1,
    "expt2": run_expt2,
    "expt3": run_expt3,
    "expt4": run_expt4,
    "scaledown": run_scaledown,
    "profile": run_group_size_profile,
    "drift": run_drift,
}


def main(argv) -> int:
    names = argv[1:] or list(RUNNERS)
    unknown = [name for name in names if name not in RUNNERS]
    if unknown:
        print(f"unknown experiments: {unknown}; available: {sorted(RUNNERS)}")
        return 2
    for name in names:
        start = time.perf_counter()
        result = RUNNERS[name]()
        elapsed = time.perf_counter() - start
        print()
        print(result.format())
        print(f"[{name} completed in {elapsed:.1f}s]")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
