"""Experiment 3: rewrite-strategy execution time vs. sample size (Table 3).

Fix the group count at 1000 and vary the sample percentage (the paper uses
1%, 5%, 10%); time each of the four rewriting strategies running ``Q_g2``.
Expected shape: Integrated-family beats Normalized-family, and the
Normalized times grow much faster with sample size (the join dominates).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence, Tuple

from ..core.congress import Congress
from ..rewrite import ALL_STRATEGIES
from ..synthetic.queries import qg2
from ..synthetic.tpcd import LineitemConfig
from .harness import Testbed, default_table_size, time_plan
from .report import format_mapping_table

__all__ = ["Expt3Result", "run_expt3", "DEFAULT_SAMPLE_FRACTIONS"]

DEFAULT_SAMPLE_FRACTIONS: Tuple[float, ...] = (0.01, 0.05, 0.10)


@dataclass(frozen=True)
class Expt3Result:
    """Seconds per rewrite strategy per sample percentage."""

    seconds: Dict[str, Dict[str, float]]  # strategy -> "SP=x%" -> seconds
    exact_seconds: float
    table_size: int

    def format(self) -> str:
        table = format_mapping_table(
            "technique",
            self.seconds,
            precision=4,
            title=(
                f"Expt 3 (Table 3): Qg2 execution seconds vs sample size, "
                f"T={self.table_size}, NG=1000"
            ),
        )
        return table + f"\n(exact query on base table: {self.exact_seconds:.4f}s)"


def run_expt3(
    table_size: Optional[int] = None,
    sample_fractions: Sequence[float] = DEFAULT_SAMPLE_FRACTIONS,
    num_groups: int = 1000,
    group_skew: float = 0.86,
    seed: int = 0,
    repeats: int = 5,
) -> Expt3Result:
    """Run Experiment 3 and return the timing table."""
    table_size = table_size or default_table_size()
    config = LineitemConfig(
        table_size=table_size,
        num_groups=num_groups,
        group_skew=group_skew,
        seed=seed,
    )
    query = qg2()
    seconds: Dict[str, Dict[str, float]] = {
        cls.name: {} for cls in ALL_STRATEGIES
    }
    exact_seconds = 0.0
    for fraction in sample_fractions:
        # Timing depends on sample size, not allocation; one sample suffices.
        bed = Testbed.create(config, fraction, strategies={"congress": Congress()})
        label = f"SP={fraction:.0%}"
        for cls in ALL_STRATEGIES:
            rewrite = cls()
            synopsis = bed.install("congress", rewrite)
            plan = rewrite.plan(query.query, synopsis)
            seconds[cls.name][label] = time_plan(
                lambda: plan.execute(bed.catalog), repeats=repeats
            )
        exact_seconds = time_plan(lambda: bed.exact(query), repeats=repeats)
    return Expt3Result(
        seconds=seconds, exact_seconds=exact_seconds, table_size=table_size
    )
