"""Figure 5: the worked allocation example.

Reproduces the paper's table of expected sample sizes for the four
strategies on the four-group relation (3000/3000/1500/2500 tuples, X=100),
including the intermediate ``s_{g,T}`` columns.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from ..core.basic_congress import BasicCongress
from ..core.congress import Congress
from ..core.house import House
from ..core.senate import Senate
from ..sampling.groups import GroupKey
from .report import format_table

__all__ = ["FIG5_COUNTS", "FIG5_BUDGET", "Fig5Result", "run_fig5"]

FIG5_COUNTS: Dict[GroupKey, int] = {
    ("a1", "b1"): 3000,
    ("a1", "b2"): 3000,
    ("a1", "b3"): 1500,
    ("a2", "b3"): 2500,
}
FIG5_GROUPING = ("A", "B")
FIG5_BUDGET = 100.0


@dataclass(frozen=True)
class Fig5Result:
    """All columns of Figure 5, keyed by finest group."""

    columns: Dict[str, Dict[GroupKey, float]]

    def format(self) -> str:
        groups = sorted(FIG5_COUNTS)
        headers = ["A", "B"] + list(self.columns)
        rows: List[List] = []
        for group in groups:
            row: List = list(group)
            for name in self.columns:
                row.append(self.columns[name].get(group, float("nan")))
            rows.append(row)
        return format_table(
            headers, rows, precision=1,
            title="Figure 5: expected sample sizes, X=100",
        )


def run_fig5() -> Fig5Result:
    """Compute every column of Figure 5 from the paper's formulas."""
    counts, grouping, budget = FIG5_COUNTS, FIG5_GROUPING, FIG5_BUDGET
    house = House().allocate(counts, grouping, budget)
    senate = Senate().allocate(counts, grouping, budget)
    basic = BasicCongress().allocate(counts, grouping, budget)
    congress = Congress()
    shares = congress.share_table(counts, grouping, budget)
    full = congress.allocate(counts, grouping, budget)
    columns: Dict[str, Dict[GroupKey, float]] = {
        "house(s_g,0)": house.fractional,
        "senate(s_g,AB)": senate.fractional,
        "basic_pre": basic.pre_scaling,
        "basic": basic.fractional,
        "s_g,A": shares[("A",)],
        "s_g,B": shares[("B",)],
        "congress_pre": full.pre_scaling,
        "congress": full.fractional,
    }
    return Fig5Result(columns=columns)
