"""Shared experiment machinery (Section 7.1's testbed).

Builds the skewed ``lineitem`` table, the four allocation strategies'
samples, executes queries through a chosen rewrite strategy, and scores
answers with the paper's error metric ("the average of the percentage
errors for all the groups").

Scaling: the paper runs at T = 1M tuples.  The default here is 200K so the
full suite finishes quickly; set the environment variable ``REPRO_SCALE=1.0``
(multiplier on 1M) or pass ``table_size`` explicitly to reproduce at paper
scale.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Mapping, Optional

import numpy as np

from ..core.allocation import AllocationStrategy, allocate_from_table
from ..core.basic_congress import BasicCongress
from ..core.congress import Congress
from ..core.house import House
from ..core.senate import Senate
from ..engine.catalog import Catalog
from ..engine.executor import execute
from ..engine.table import Table
from ..metrics.groupby_error import GroupByError, groupby_error
from ..obs import Telemetry
from ..rewrite.base import RewriteStrategy
from ..rewrite.integrated import Integrated
from ..sampling.stratified import StratifiedSample
from ..synthetic.queries import QueryClass
from ..synthetic.tpcd import GROUPING_COLUMNS, LineitemConfig, generate_lineitem

__all__ = [
    "default_table_size",
    "standard_strategies",
    "Testbed",
    "time_plan",
]

PAPER_TABLE_SIZE = 1_000_000
DEFAULT_SCALE = 0.2


def default_table_size() -> int:
    """Experiment table size: ``REPRO_SCALE`` (default 0.2) times 1M."""
    scale = float(os.environ.get("REPRO_SCALE", DEFAULT_SCALE))
    if scale <= 0:
        raise ValueError(f"REPRO_SCALE must be > 0, got {scale}")
    return max(1000, int(PAPER_TABLE_SIZE * scale))


def standard_strategies() -> Dict[str, AllocationStrategy]:
    """The four allocation schemes of Section 7, under their paper names.

    Senate is configured for the grouping
    ``{l_returnflag, l_linestatus, l_shipdate}`` exactly as Section 7.1.1
    specifies -- which is the full grouping set, so the default target
    applies.
    """
    return {
        "house": House(),
        "senate": Senate(),
        "basic_congress": BasicCongress(),
        "congress": Congress(),
    }


@dataclass
class Testbed:
    """A generated lineitem table plus per-strategy samples.

    (``__test__`` is disabled so pytest does not mistake this for a test
    class when experiment code is imported from the test suite.)

    Attributes:
        config: the data generation parameters used.
        table: the base relation (registered as ``lineitem``).
        catalog: catalog holding the base table (samples are installed on
            demand by :meth:`install`).
        samples: per-strategy stratified samples.
        telemetry: optional tracing/metrics bundle; when enabled, sample
            builds and every exact/approximate execution are traced and
            recorded (``testbed_build_seconds``, ``testbed_query_seconds``,
            ``testbed_query_error_pct``).
    """

    __test__ = False  # not a pytest test class

    config: LineitemConfig
    table: Table
    catalog: Catalog
    samples: Dict[str, StratifiedSample] = field(default_factory=dict)
    telemetry: Telemetry = field(default_factory=Telemetry.disabled)

    @classmethod
    def create(
        cls,
        config: LineitemConfig,
        sample_fraction: float,
        strategies: Optional[Mapping[str, AllocationStrategy]] = None,
        rng: Optional[np.random.Generator] = None,
        telemetry: Optional[Telemetry] = None,
    ) -> "Testbed":
        """Generate data and draw one sample per allocation strategy."""
        if not 0 < sample_fraction <= 1:
            raise ValueError(
                f"sample_fraction must be in (0, 1], got {sample_fraction}"
            )
        rng = rng if rng is not None else np.random.default_rng(config.seed + 1)
        telemetry = (
            telemetry if telemetry is not None else Telemetry.disabled()
        )
        with telemetry.tracer.span("testbed_generate"):
            table = generate_lineitem(config)
        catalog = Catalog()
        catalog.register("lineitem", table)
        budget = int(round(sample_fraction * table.num_rows))
        build_seconds = telemetry.metrics.histogram(
            "testbed_build_seconds",
            "Wall time to allocate and draw one strategy's sample.",
            ("strategy",),
        )
        samples: Dict[str, StratifiedSample] = {}
        for name, strategy in (strategies or standard_strategies()).items():
            start = time.perf_counter()
            with telemetry.tracer.span("testbed_build", strategy=name):
                allocation = allocate_from_table(
                    strategy, table, list(GROUPING_COLUMNS), budget
                )
                samples[name] = StratifiedSample.build(
                    table, GROUPING_COLUMNS, allocation.rounded(), rng=rng
                )
            build_seconds.observe(
                time.perf_counter() - start, strategy=name
            )
        return cls(
            config=config,
            table=table,
            catalog=catalog,
            samples=samples,
            telemetry=telemetry,
        )

    def _observe_query(self, kind: str, strategy: str, seconds: float) -> None:
        self.telemetry.metrics.histogram(
            "testbed_query_seconds",
            "Per-query execution latency on the experiments testbed.",
            ("strategy", "kind"),
        ).observe(seconds, strategy=strategy, kind=kind)

    def exact(self, query: QueryClass) -> Table:
        start = time.perf_counter()
        with self.telemetry.tracer.span("testbed_exact"):
            result = execute(query.query, self.catalog)
        self._observe_query("exact", "none", time.perf_counter() - start)
        return result

    def approximate(
        self,
        strategy_name: str,
        query: QueryClass,
        rewrite: Optional[RewriteStrategy] = None,
    ) -> Table:
        """Answer ``query`` from the named strategy's sample."""
        rewrite = rewrite or Integrated()
        sample = self.samples[strategy_name]
        start = time.perf_counter()
        with self.telemetry.tracer.span(
            "testbed_approximate", strategy=strategy_name
        ):
            synopsis = rewrite.install(
                sample, "lineitem", self.catalog, replace=True
            )
            plan = rewrite.plan(query.query, synopsis)
            result = plan.execute(
                self.catalog, tracer=self.telemetry.tracer
            )
        self._observe_query(
            "approx", strategy_name, time.perf_counter() - start
        )
        return result

    def query_error(
        self,
        strategy_name: str,
        query: QueryClass,
        rewrite: Optional[RewriteStrategy] = None,
    ) -> float:
        """The paper's error measure for one query and one sample.

        Average percentage error over all groups (and over the query's
        aggregate columns when it has several, as ``Q_g2`` does).
        """
        exact = self.exact(query)
        approx = self.approximate(strategy_name, query, rewrite)
        key_columns = list(query.query.group_by)
        value_columns = [agg.alias for agg in query.query.aggregates()]
        errors: List[GroupByError] = [
            groupby_error(exact, approx, key_columns, value_column)
            for value_column in value_columns
        ]
        error = float(np.mean([e.eps_l1 for e in errors]))
        self.telemetry.metrics.histogram(
            "testbed_query_error_pct",
            "The paper's mean percentage error per query.",
            ("strategy",),
            buckets=(0.5, 1, 2.5, 5, 10, 25, 50, 100, 250),
        ).observe(error, strategy=strategy_name)
        return error

    def install(
        self, strategy_name: str, rewrite: RewriteStrategy
    ):
        """Install a sample under a rewrite strategy; returns the synopsis."""
        sample = self.samples[strategy_name]
        return rewrite.install(sample, "lineitem", self.catalog, replace=True)


def time_plan(
    run: Callable[[], Table],
    repeats: int = 5,
    discard_first: bool = True,
) -> float:
    """Paper's timing protocol: run 5 times, average the last 4."""
    timings: List[float] = []
    for __ in range(repeats):
        start = time.perf_counter()
        run()
        timings.append(time.perf_counter() - start)
    if discard_first and len(timings) > 1:
        timings = timings[1:]
    return float(np.mean(timings))
