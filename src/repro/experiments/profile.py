"""Group-size error profile: the paper's motivation, quantified.

Section 1.1: with a uniform sample, "accuracy is highly dependent on the
number of sample tuples that belong to that group", so small groups get
poor answers.  This experiment buckets the finest groups of a skewed
relation by population size and reports each allocation strategy's mean
per-group error per bucket for the finest-grouping query ``Q_g3``.

Expected shape: House's error explodes as groups shrink (its per-group
sample count is proportional to size); Senate/Congress stay flat.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..metrics.groupby_error import groupby_error
from ..sampling.groups import group_counts
from ..synthetic.queries import qg3
from ..synthetic.tpcd import GROUPING_COLUMNS, LineitemConfig
from .harness import Testbed, default_table_size
from .report import format_mapping_table

__all__ = ["GroupSizeProfile", "run_group_size_profile"]


@dataclass(frozen=True)
class GroupSizeProfile:
    """Mean per-group error per group-size bucket, per strategy."""

    buckets: Tuple[Tuple[int, int], ...]  # (lo, hi) population bounds
    errors: Dict[str, Dict[str, float]]   # bucket label -> strategy -> error%
    table_size: int

    def format(self) -> str:
        return format_mapping_table(
            "group size",
            self.errors,
            title=(
                "Group-size error profile (Qg3 per-group % error by "
                f"population bucket, T={self.table_size})"
            ),
        )


def _bucket_label(lo: int, hi: int) -> str:
    return f"[{lo},{hi})"


def run_group_size_profile(
    table_size: Optional[int] = None,
    sample_fraction: float = 0.07,
    num_groups: int = 1000,
    group_skew: float = 1.5,
    num_buckets: int = 4,
    seed: int = 0,
) -> GroupSizeProfile:
    """Run the profile experiment.

    Groups are split into ``num_buckets`` quantile buckets by population;
    per-group Qg3 errors are averaged within each bucket.
    """
    table_size = table_size or default_table_size()
    config = LineitemConfig(
        table_size=table_size,
        num_groups=num_groups,
        group_skew=group_skew,
        seed=seed,
    )
    bed = Testbed.create(config, sample_fraction)
    query = qg3()
    exact = bed.exact(query)
    key_columns = list(query.query.group_by)

    populations = group_counts(bed.table, GROUPING_COLUMNS)
    sizes = np.array(sorted(populations.values()))
    quantiles = np.quantile(
        sizes, np.linspace(0, 1, num_buckets + 1)
    ).astype(int)
    quantiles[-1] += 1  # right-open top bucket includes the maximum

    buckets = [
        (int(quantiles[i]), int(quantiles[i + 1]))
        for i in range(num_buckets)
    ]

    errors: Dict[str, Dict[str, float]] = {
        _bucket_label(lo, hi): {} for lo, hi in buckets
    }
    for strategy in bed.samples:
        approx = bed.approximate(strategy, query)
        per_group = groupby_error(
            exact, approx, key_columns, "sum_qty"
        ).per_group
        bucket_values: Dict[Tuple[int, int], List[float]] = {
            bucket: [] for bucket in buckets
        }
        for key, error in per_group.items():
            population = populations[key]
            for lo, hi in buckets:
                if lo <= population < hi:
                    bucket_values[(lo, hi)].append(error)
                    break
        for bucket, values in bucket_values.items():
            label = _bucket_label(*bucket)
            errors[label][strategy] = (
                float(np.mean(values)) if values else float("nan")
            )
    return GroupSizeProfile(
        buckets=tuple(buckets), errors=errors, table_size=table_size
    )
