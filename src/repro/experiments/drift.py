"""Distribution drift: why incremental maintenance matters (Section 6).

The paper motivates maintenance with warehouses whose data "changes the
database significantly" over time.  This experiment streams a relation
whose group mix *shifts* mid-stream (a new dominant group emerges) and
compares three synopses at the end of the stream:

* **stale** -- built from the first half and never touched;
* **maintained** -- the Section 6 Congress maintainer fed every insert;
* **rebuilt** -- a from-scratch congressional sample of the final relation
  (the oracle; requires a full rescan the maintainer avoids).

Expected shape: stale misses the new group entirely and mis-scales the
old ones; maintained tracks rebuilt closely.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

import numpy as np

from ..core.congress import Congress
from ..core.allocation import allocate_from_table
from ..engine.catalog import Catalog
from ..engine.executor import execute
from ..engine.schema import Column, ColumnType, Schema
from ..engine.sql import parse_query
from ..engine.table import Table
from ..maintenance.congress import CongressMaintainer
from ..maintenance.onepass import subsample_to_budget
from ..metrics.groupby_error import groupby_error
from ..rewrite.integrated import Integrated
from ..sampling.stratified import StratifiedSample
from .report import format_mapping_table

__all__ = ["DriftResult", "run_drift"]

_SCHEMA = Schema(
    [
        Column("region", ColumnType.STR, "grouping"),
        Column("product", ColumnType.STR, "grouping"),
        Column("amount", ColumnType.FLOAT, "aggregate"),
    ]
)

_QUERY = (
    "SELECT region, sum(amount) AS total FROM sales "
    "GROUP BY region ORDER BY region"
)


@dataclass(frozen=True)
class DriftResult:
    """Qg-style errors for the three synopses after the drift."""

    errors: Dict[str, Dict[str, float]]  # synopsis -> metric -> value
    stream_size: int

    def format(self) -> str:
        return format_mapping_table(
            "synopsis",
            self.errors,
            title=(
                "Drift experiment: region-total errors after a mid-stream "
                f"distribution shift ({self.stream_size} inserts)"
            ),
        )


def _phase(rng, size, weights):
    regions = np.array(["north", "south", "east", "west"])
    picks = rng.choice(regions, size=size, p=weights)
    products = rng.choice(np.array(["w", "g", "z"]), size=size)
    amounts = rng.gamma(2.0, 50.0, size=size)
    return list(zip(picks.tolist(), products.tolist(), amounts.tolist()))


def run_drift(
    stream_size: int = 60_000,
    budget: int = 1500,
    seed: int = 0,
) -> DriftResult:
    """Run the drift experiment and return per-synopsis errors."""
    rng = np.random.default_rng(seed)
    half = stream_size // 2
    # Phase 1: 'west' does not exist.
    first = _phase(rng, half, [0.6, 0.3, 0.1, 0.0])
    # Phase 2: 'west' bursts to 40% of inserts; 'north' fades.
    second = _phase(rng, stream_size - half, [0.2, 0.25, 0.15, 0.4])

    first_table = Table.from_rows(_SCHEMA, first)
    full_table = Table.from_rows(_SCHEMA, first + second)

    grouping = ["region", "product"]

    # Stale: built on phase 1 only; population metadata is also stale.
    stale_alloc = allocate_from_table(Congress(), first_table, grouping, budget)
    stale = StratifiedSample.build(
        first_table, grouping, stale_alloc.rounded(), rng=rng
    )

    # Maintained: Eq. 8 maintainer over the whole stream.
    maintainer = CongressMaintainer(_SCHEMA, grouping, budget, rng)
    maintainer.insert_many(first)
    maintainer.insert_many(second)
    maintained = subsample_to_budget(
        maintainer.snapshot(), budget, rng
    ).to_stratified()

    # Rebuilt: the oracle -- full rescan of the final relation.
    rebuilt_alloc = allocate_from_table(Congress(), full_table, grouping, budget)
    rebuilt = StratifiedSample.build(
        full_table, grouping, rebuilt_alloc.rounded(), rng=rng
    )

    catalog = Catalog()
    catalog.register("sales", full_table)
    query = parse_query(_QUERY)
    exact = execute(query, catalog)

    def score(sample: StratifiedSample, base_name: str, base: Table):
        catalog.register(base_name, base, replace=True)
        rewrite = Integrated()
        synopsis = rewrite.install(sample, base_name, catalog, replace=True)
        plan = rewrite.plan(query.with_from(base_name), synopsis)
        approx = plan.execute(catalog)
        error = groupby_error(exact, approx, ["region"], "total")
        return {
            "eps_l1": error.eps_l1,
            "eps_inf": error.eps_inf,
            "missing_groups": float(len(error.missing_groups)),
        }

    errors = {
        "stale": score(stale, "sales_stale", first_table),
        "maintained": score(maintained, "sales_maint", maintained.base_table),
        "rebuilt": score(rebuilt, "sales", full_table),
    }
    return DriftResult(errors=errors, stream_size=stream_size)
