"""Experiment 4: rewrite-strategy execution time vs. group count (Figure 18).

Fix the sample percentage at 7% and sweep the number of groups; time each
rewriting strategy on ``Q_g2``.  Expected shape: the Integrated family is
fastest and nearly flat in the group count; the Normalized family pays for
the join; Nested-integrated beats Integrated at low group counts (fewer
multiplications) but degrades as the per-group overhead of the nested query
grows -- the crossover visible at the right edge of Figure 18.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence, Tuple

from ..core.congress import Congress
from ..rewrite import ALL_STRATEGIES
from ..synthetic.queries import qg2
from ..synthetic.tpcd import LineitemConfig
from .harness import Testbed, default_table_size, time_plan
from .report import format_mapping_table

__all__ = ["Expt4Result", "run_expt4", "DEFAULT_GROUP_COUNTS"]

DEFAULT_GROUP_COUNTS: Tuple[int, ...] = (10, 100, 1000, 8000, 27000)


@dataclass(frozen=True)
class Expt4Result:
    """Seconds per rewrite strategy per group count."""

    seconds: Dict[str, Dict[str, float]]  # strategy -> "NG=n" -> seconds
    table_size: int
    sample_fraction: float

    def format(self) -> str:
        return format_mapping_table(
            "technique",
            self.seconds,
            precision=4,
            title=(
                f"Expt 4 (Figure 18): Qg2 execution seconds vs group count, "
                f"T={self.table_size}, SP={self.sample_fraction:.0%}"
            ),
        )


def run_expt4(
    table_size: Optional[int] = None,
    group_counts: Sequence[int] = DEFAULT_GROUP_COUNTS,
    sample_fraction: float = 0.07,
    group_skew: float = 0.86,
    seed: int = 0,
    repeats: int = 5,
) -> Expt4Result:
    """Run Experiment 4 and return the timing sweep."""
    table_size = table_size or default_table_size()
    query = qg2()
    seconds: Dict[str, Dict[str, float]] = {
        cls.name: {} for cls in ALL_STRATEGIES
    }
    for num_groups in group_counts:
        if num_groups > table_size:
            continue
        config = LineitemConfig(
            table_size=table_size,
            num_groups=num_groups,
            group_skew=group_skew,
            seed=seed,
        )
        bed = Testbed.create(
            config, sample_fraction, strategies={"congress": Congress()}
        )
        label = f"NG={num_groups}"
        for cls in ALL_STRATEGIES:
            rewrite = cls()
            synopsis = bed.install("congress", rewrite)
            plan = rewrite.plan(query.query, synopsis)
            seconds[cls.name][label] = time_plan(
                lambda: plan.execute(bed.catalog), repeats=repeats
            )
    return Expt4Result(
        seconds=seconds,
        table_size=table_size,
        sample_fraction=sample_fraction,
    )
